// On-disk layout of the pre-transposed sequence database (the "swdb"
// store) — DESIGN.md decision 14.
//
// The motivating measurement (BENCH_lane_width.json): at 256/512-bit
// lanes the W2B transpose of the database side costs 20-40% of screening
// wall time, and the database side is *static* across millions of
// queries. The store therefore holds the database sequences already in
// bit-plane (bit-sliced) layout so serving pays W2B only for the query.
//
// Layout (single file, little-endian host words):
//
//   FileHeader        64 bytes; magic/version/endian tag, the lane limb
//                     width the planes were sliced for, plane count
//                     (epsilon: 2 for DNA, 5 for protein), entry
//                     count/length, shard count, an FNV fingerprint of
//                     the raw sequence codes, and a header checksum.
//   ShardEntry[]      one per shard, then a u64 FNV over the whole table.
//   payload...        each shard's bit-plane rows, 64-byte aligned.
//
// One shard = one 64-lane limb block: the bit-plane rows of entries
// [first_entry, first_entry + 64). Shard s row layout is planar —
// plane 0's rows for positions 0..length-1, then plane 1's, ... — so a
// plane is one contiguous span the reader can hand out zero-copy.
//
// Because the wide lane words decompose into independent 64-bit limb
// blocks (bit k of a wide word is bit k%64 of limb k/64 — the
// bitsim::PayloadTranspose contract), a W-bit serve gathers limb t of its
// group from shard base/64 + t. The same shards therefore serve every
// lane width bit-identically; limb_bits tags the granularity and is
// rejected if a future format ever changes it.
//
// Integrity model: the header and shard table carry their own checksums
// and are validated at open (typed kDbCorrupt / kDbMismatch — version,
// endianness, limb width, shape, content fingerprint). Shard payloads are
// checksummed individually and verified lazily on first touch, so one
// rotted shard degrades exactly one shard's latency (quarantine +
// re-ingest from the raw sequences) instead of failing the whole scan.
#pragma once

#include <cstddef>
#include <cstdint>

namespace swbpbc::db {

inline constexpr std::uint64_t kDbMagic = 0x31424454'50425753ull;  // "SWBPTDB1"
inline constexpr std::uint32_t kDbVersion = 1;
// Written as the literal 0x01020304; reads as 0x04030201 on a
// different-endian host, turning byte order into a typed mismatch.
inline constexpr std::uint32_t kDbEndianTag = 0x01020304u;
// Shards are sliced at the 64-bit limb granularity all lane widths
// decompose into.
inline constexpr std::uint32_t kDbLimbBits = 64;
inline constexpr std::size_t kDbLanesPerShard = 64;
// Payload offsets are cache-line aligned.
inline constexpr std::uint64_t kDbPayloadAlign = 64;

struct FileHeader {
  std::uint64_t magic = kDbMagic;
  std::uint32_t version = kDbVersion;
  std::uint32_t endian = kDbEndianTag;
  std::uint32_t limb_bits = kDbLimbBits;
  std::uint32_t plane_bits = 0;    // epsilon: bit planes per character
  std::uint64_t entry_count = 0;   // sequences stored
  std::uint64_t entry_length = 0;  // uniform sequence length
  std::uint64_t shard_count = 0;   // ceil(entry_count / 64)
  std::uint64_t content_fnv = 0;   // FNV-1a over the raw sequence codes
  std::uint64_t header_fnv = 0;    // FNV-1a over the preceding 56 bytes
};
static_assert(sizeof(FileHeader) == 64);

struct ShardEntry {
  std::uint64_t offset = 0;         // payload start, from file begin
  std::uint64_t payload_bytes = 0;  // plane_bits * entry_length * 8
  std::uint64_t payload_fnv = 0;    // FNV-1a over the payload bytes
  std::uint64_t first_entry = 0;    // first sequence index in this shard
  std::uint32_t lanes_used = 0;     // <= 64; tail lanes read as code 0
  std::uint32_t reserved = 0;
};
static_assert(sizeof(ShardEntry) == 40);

/// Number of 64-lane shards covering `entry_count` sequences.
[[nodiscard]] constexpr std::uint64_t shard_count_for(
    std::uint64_t entry_count) {
  return (entry_count + kDbLanesPerShard - 1) / kDbLanesPerShard;
}

}  // namespace swbpbc::db
