#include "db/builder.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

#include "db/format.hpp"
#include "encoding/generic_batch.hpp"
#include "util/checksum.hpp"
#include "util/io.hpp"

namespace swbpbc::db {

namespace {

constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

}  // namespace

std::uint64_t content_fingerprint(
    std::span<const encoding::GenericSequence> seqs) {
  std::uint64_t h = util::kFnvOffset;
  for (const encoding::GenericSequence& s : seqs)
    h = util::fnv1a_bytes(s.data(), s.size(), h);
  return h;
}

std::uint64_t content_fingerprint(std::span<const encoding::Sequence> seqs) {
  // encoding::Base values ARE the 2-bit codes, so hashing the Base bytes
  // matches the generic-code hash of the converted batch bit-for-bit.
  std::uint64_t h = util::kFnvOffset;
  for (const encoding::Sequence& s : seqs)
    h = util::fnv1a_bytes(s.data(), s.size(), h);
  return h;
}

util::Status build_generic_database(
    std::span<const encoding::GenericSequence> seqs, unsigned plane_bits,
    const std::string& path, const BuildOptions& options) {
  if (plane_bits == 0 || plane_bits > 8)
    return util::Status::invalid_input(
        "database plane_bits must be in [1, 8], got " +
        std::to_string(plane_bits));
  const std::size_t count = seqs.size();
  const std::size_t length = count == 0 ? 0 : seqs.front().size();
  if (count != 0 && length == 0)
    return util::Status::invalid_input(
        "database sequences must be non-empty");
  for (std::size_t k = 0; k < count; ++k) {
    if (seqs[k].size() != length)
      return util::Status::invalid_input(
          "non-uniform database: seqs[" + std::to_string(k) +
          "] has length " + std::to_string(seqs[k].size()) +
          ", batch requires " + std::to_string(length));
    for (std::uint8_t c : seqs[k]) {
      if ((c >> plane_bits) != 0)
        return util::Status::invalid_input(
            "seqs[" + std::to_string(k) + "] holds code " +
            std::to_string(c) + ", which does not fit in " +
            std::to_string(plane_bits) + " bit planes");
    }
  }

  // The same W2B the in-memory path runs, at the 64-lane limb block
  // granularity every lane width decomposes into.
  encoding::TransposedGenericBatch<std::uint64_t> batch;
  if (count != 0)
    batch = encoding::transpose_generic<std::uint64_t>(seqs, plane_bits,
                                                       options.method);

  const std::uint64_t shards = shard_count_for(count);
  const std::uint64_t table_bytes = shards * sizeof(ShardEntry) + 8;
  const std::uint64_t payload_bytes =
      static_cast<std::uint64_t>(plane_bits) * length * sizeof(std::uint64_t);
  std::vector<ShardEntry> table(shards);
  std::uint64_t off =
      align_up(sizeof(FileHeader) + table_bytes, kDbPayloadAlign);
  for (std::uint64_t s = 0; s < shards; ++s) {
    table[s].offset = off;
    table[s].payload_bytes = payload_bytes;
    table[s].first_entry = s * kDbLanesPerShard;
    table[s].lanes_used = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kDbLanesPerShard,
                                count - s * kDbLanesPerShard));
    off = align_up(off + payload_bytes, kDbPayloadAlign);
  }
  std::vector<std::uint8_t> file(off, 0);

  // Planar payload per shard: plane 0's rows for all positions, then
  // plane 1's, ... so a plane is one contiguous zero-copy span.
  for (std::uint64_t s = 0; s < shards; ++s) {
    std::uint8_t* dst = file.data() + table[s].offset;
    const auto& group = batch.groups[s];
    for (unsigned p = 0; p < plane_bits; ++p) {
      for (std::size_t i = 0; i < length; ++i) {
        const std::uint64_t row = group.plane(i, p);
        std::memcpy(dst + (static_cast<std::size_t>(p) * length + i) *
                              sizeof(row),
                    &row, sizeof(row));
      }
    }
    table[s].payload_fnv =
        util::fnv1a_bytes(dst, static_cast<std::size_t>(payload_bytes));
  }

  FileHeader header;
  header.plane_bits = plane_bits;
  header.entry_count = count;
  header.entry_length = length;
  header.shard_count = shards;
  header.content_fnv = content_fingerprint(seqs);
  header.header_fnv =
      util::fnv1a_bytes(&header, sizeof(header) - sizeof(std::uint64_t));
  std::memcpy(file.data(), &header, sizeof(header));
  if (shards != 0)
    std::memcpy(file.data() + sizeof(FileHeader), table.data(),
                shards * sizeof(ShardEntry));
  const std::uint64_t table_fnv = util::fnv1a_bytes(
      file.data() + sizeof(FileHeader),
      static_cast<std::size_t>(shards * sizeof(ShardEntry)));
  std::memcpy(file.data() + sizeof(FileHeader) + shards * sizeof(ShardEntry),
              &table_fnv, sizeof(table_fnv));

  // Atomic durable publish: temp file + fsync + rename + parent fsync.
  const std::string tmp = path + ".tmp";
  auto fd = util::open_for_write(tmp);
  if (!fd.has_value()) return fd.status();
  if (util::Status s = util::write_full(fd->get(), file.data(), file.size());
      !s.ok())
    return s;
  if (util::Status s = util::fsync_and_rename(fd->get(), tmp, path); !s.ok())
    return s;
  return fd->close();
}

util::Status build_database(std::span<const encoding::Sequence> seqs,
                            const std::string& path,
                            const BuildOptions& options) {
  std::vector<encoding::GenericSequence> generic;
  generic.reserve(seqs.size());
  for (const encoding::Sequence& s : seqs) {
    encoding::GenericSequence g(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) g[i] = encoding::code(s[i]);
    generic.push_back(std::move(g));
  }
  return build_generic_database(generic, encoding::kBitsPerBase, path,
                                options);
}

util::Status corrupt_shard_for_testing(const std::string& path,
                                       std::size_t shard,
                                       std::size_t byte_offset,
                                       unsigned bit) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f)
    return util::Status::db_corrupt("cannot open database '" + path + "'");
  FileHeader header{};
  f.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!f || header.magic != kDbMagic)
    return util::Status::db_corrupt("'" + path +
                                    "' is not a database store (bad magic)");
  if (shard >= header.shard_count)
    return util::Status::invalid_input(
        "shard " + std::to_string(shard) + " out of range (database has " +
        std::to_string(header.shard_count) + ")");
  ShardEntry entry{};
  f.seekg(static_cast<std::streamoff>(sizeof(FileHeader) +
                                      shard * sizeof(ShardEntry)));
  f.read(reinterpret_cast<char*>(&entry), sizeof(entry));
  if (!f)
    return util::Status::db_corrupt("cannot read shard table of '" + path +
                                    "'");
  if (byte_offset >= entry.payload_bytes)
    return util::Status::invalid_input(
        "byte offset " + std::to_string(byte_offset) +
        " out of range (shard payload is " +
        std::to_string(entry.payload_bytes) + " bytes)");
  const std::streamoff pos =
      static_cast<std::streamoff>(entry.offset + byte_offset);
  char byte = 0;
  f.seekg(pos);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ static_cast<char>(1u << (bit % 8)));
  f.seekp(pos);
  f.write(&byte, 1);
  f.flush();
  if (!f)
    return util::Status::db_corrupt("cannot rewrite byte of '" + path + "'");
  return {};
}

}  // namespace swbpbc::db
