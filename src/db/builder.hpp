// Builds the pre-transposed database store (db/format.hpp).
//
// The builder runs the same W2B transpose the in-memory screening path
// runs (bitsim::PayloadTranspose at the 64-lane limb granularity), packs
// the resulting bit-plane rows into per-shard planar payloads, and
// publishes the file atomically: everything is written to `path`.tmp,
// fsynced, renamed over `path`, and the parent directory fsynced
// (util::fsync_and_rename) — a crash mid-build leaves the previous
// database (or nothing), never a torn file.
//
// Because the builder and the serve-time fallback share one transpose,
// scores computed from the store are bit-identical to the no-database
// path by construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "encoding/alphabet.hpp"
#include "encoding/batch.hpp"
#include "encoding/dna.hpp"
#include "util/status.hpp"

namespace swbpbc::db {

struct BuildOptions {
  // W2B implementation used to slice the payloads (kNaive is the
  // cross-check reference; both produce identical planes).
  encoding::TransposeMethod method = encoding::TransposeMethod::kPlanned;
};

/// FNV-1a fingerprint of raw sequence codes, entry order — the value the
/// file header's content_fnv carries and serve-time verification compares
/// against the in-memory batch.
[[nodiscard]] std::uint64_t content_fingerprint(
    std::span<const encoding::GenericSequence> seqs);
[[nodiscard]] std::uint64_t content_fingerprint(
    std::span<const encoding::Sequence> seqs);

/// Builds a database of epsilon-bit sequences at `path` (atomically; see
/// file comment). All sequences must share one length and every code must
/// fit in `plane_bits` bits; violations are typed kInvalidInput. An empty
/// batch builds a valid empty database.
util::Status build_generic_database(
    std::span<const encoding::GenericSequence> seqs, unsigned plane_bits,
    const std::string& path, const BuildOptions& options = {});

/// DNA front end: 2 bit planes, codes from encoding::code().
util::Status build_database(std::span<const encoding::Sequence> seqs,
                            const std::string& path,
                            const BuildOptions& options = {});

/// Test/drill helper: flips bit `bit` of byte `byte_offset` inside shard
/// `shard`'s payload of an existing database file, in place — simulated
/// on-disk bit rot (the mmap fault injector damages only the mapping;
/// this damages the file). kInvalidInput when the shard/offset is out of
/// range, kDbCorrupt when the file cannot be parsed enough to locate it.
util::Status corrupt_shard_for_testing(const std::string& path,
                                       std::size_t shard,
                                       std::size_t byte_offset, unsigned bit);

}  // namespace swbpbc::db
