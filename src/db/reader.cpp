#include "db/reader.hpp"

#include <cstring>
#include <utility>

#include "util/checksum.hpp"
#include "util/io.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define SWBPBC_DB_HAVE_MMAP 1
#include <sys/mman.h>
#else
#define SWBPBC_DB_HAVE_MMAP 0
#endif

namespace swbpbc::db {

namespace {

util::Status corrupt(const std::string& path, const std::string& what) {
  return util::Status::db_corrupt("database '" + path + "' " + what);
}

util::Status mismatch(const std::string& path, const std::string& what) {
  return util::Status::db_mismatch("database '" + path + "' " + what);
}

}  // namespace

Reader::Reader(Reader&& other) noexcept
    : path_(std::move(other.path_)),
      map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      heap_(std::move(other.heap_)),
      header_(other.header_),
      table_(std::move(other.table_)),
      effective_bytes_(std::move(other.effective_bytes_)),
      state_(std::move(other.state_)) {}

Reader& Reader::operator=(Reader&& other) noexcept {
  if (this != &other) {
#if SWBPBC_DB_HAVE_MMAP
    if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
    path_ = std::move(other.path_);
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    heap_ = std::move(other.heap_);
    header_ = other.header_;
    table_ = std::move(other.table_);
    effective_bytes_ = std::move(other.effective_bytes_);
    state_ = std::move(other.state_);
  }
  return *this;
}

Reader::~Reader() {
#if SWBPBC_DB_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
}

const std::uint8_t* Reader::base() const {
  return map_ != nullptr ? static_cast<const std::uint8_t*>(map_)
                         : heap_.data();
}

util::Expected<Reader> Reader::open(const std::string& path,
                                    const ReaderOptions& options) {
  Reader r;
  r.path_ = path;

  auto fd = util::open_for_read(path);
  if (!fd.has_value())
    return corrupt(path, "cannot be opened: " + fd.status().message());
  const auto size = util::file_size(fd->get());
  if (!size.has_value()) return corrupt(path, size.status().message());
  const std::size_t bytes = static_cast<std::size_t>(*size);
  if (bytes < sizeof(FileHeader))
    return corrupt(path, "is truncated inside the header");

#if SWBPBC_DB_HAVE_MMAP
  // PRIVATE mapping: writable only so the fault injector can damage the
  // image copy-on-write; the file itself is never modified.
  const int prot = PROT_READ | (options.fault != nullptr ? PROT_WRITE : 0);
  void* map = ::mmap(nullptr, bytes, prot, MAP_PRIVATE, fd->get(), 0);
  if (map == MAP_FAILED) return corrupt(path, "cannot be memory-mapped");
  r.map_ = map;
  r.map_size_ = bytes;
#else
  r.heap_.resize(bytes);
  const auto got = util::read_full(fd->get(), r.heap_.data(), bytes);
  if (!got.has_value() || *got != bytes)
    return corrupt(path, "cannot be read into memory");
#endif
  fd->close().ok();  // mapping/heap image outlives the descriptor

  auto* image = const_cast<std::uint8_t*>(r.base());

  // Fault injection happens before any validation, so header damage
  // exercises the open-time rejection paths exactly like real corruption.
  std::uint64_t campaign = 0;
  if (options.fault != nullptr) {
    campaign = options.fault->begin_run();
    const HeaderFault hf =
        options.fault->header_fault(campaign, sizeof(FileHeader));
    if (hf.flip && hf.offset < bytes)
      image[hf.offset] =
          static_cast<std::uint8_t>(image[hf.offset] ^ (1u << hf.bit));
  }

  std::memcpy(&r.header_, image, sizeof(FileHeader));
  const FileHeader& h = r.header_;
  if (h.magic != kDbMagic)
    return corrupt(path, "is not a database store (bad magic)");
  const std::uint64_t header_fnv =
      util::fnv1a_bytes(image, sizeof(FileHeader) - sizeof(std::uint64_t));
  if (header_fnv != h.header_fnv)
    return corrupt(path, "header fails its checksum");
  if (h.version != kDbVersion)
    return mismatch(path, "has format version " + std::to_string(h.version) +
                              ", this build reads version " +
                              std::to_string(kDbVersion));
  if (h.endian != kDbEndianTag)
    return mismatch(path, "was written on a different-endian host");
  if (h.limb_bits != kDbLimbBits)
    return mismatch(path, "was sliced at " + std::to_string(h.limb_bits) +
                              "-bit limbs, this build serves " +
                              std::to_string(kDbLimbBits) + "-bit limbs");
  if (h.plane_bits == 0 || h.plane_bits > 8)
    return corrupt(path, "declares an implausible plane count (" +
                             std::to_string(h.plane_bits) + ")");
  if (h.shard_count != shard_count_for(h.entry_count))
    return corrupt(path, "shard count disagrees with its entry count");
  if (h.entry_count != 0 && h.entry_length == 0)
    return corrupt(path, "declares zero-length entries");

  const std::uint64_t table_end = sizeof(FileHeader) +
                                  h.shard_count * sizeof(ShardEntry) +
                                  sizeof(std::uint64_t);
  if (table_end > bytes)
    return corrupt(path, "is truncated inside the shard table");
  const std::uint8_t* table_bytes = image + sizeof(FileHeader);
  const std::size_t table_size =
      static_cast<std::size_t>(h.shard_count) * sizeof(ShardEntry);
  std::uint64_t table_fnv = 0;
  std::memcpy(&table_fnv, table_bytes + table_size, sizeof(table_fnv));
  if (table_fnv != util::fnv1a_bytes(table_bytes, table_size))
    return corrupt(path, "shard table fails its checksum");

  r.table_.resize(static_cast<std::size_t>(h.shard_count));
  if (table_size != 0)
    std::memcpy(r.table_.data(), table_bytes, table_size);

  const std::uint64_t expected_payload =
      static_cast<std::uint64_t>(h.plane_bits) * h.entry_length *
      sizeof(std::uint64_t);
  r.effective_bytes_.resize(r.table_.size());
  for (std::size_t s = 0; s < r.table_.size(); ++s) {
    const ShardEntry& e = r.table_[s];
    // The table checksum passed, so inconsistent entries mean a builder
    // bug or a forged file — reject rather than serve.
    if (e.payload_bytes != expected_payload ||
        e.first_entry != s * kDbLanesPerShard || e.lanes_used == 0 ||
        e.lanes_used > kDbLanesPerShard || e.offset < table_end ||
        e.offset % sizeof(std::uint64_t) != 0)
      return corrupt(path, "shard " + std::to_string(s) +
                               " has an inconsistent table entry");
    // Physical truncation (torn copy) is a per-shard defect, not a
    // whole-file one: the shard fails its first touch and gets
    // quarantined, everything the file still holds keeps serving.
    r.effective_bytes_[s] =
        e.offset >= bytes ? 0
                          : std::min<std::uint64_t>(e.payload_bytes,
                                                    bytes - e.offset);
    if (options.fault != nullptr) {
      const ShardFault sf = options.fault->shard_fault(
          campaign, s, static_cast<std::size_t>(e.payload_bytes));
      if (sf.flip) {
        const std::uint64_t at = e.offset + sf.flip_offset;
        if (at < bytes)
          image[at] = static_cast<std::uint8_t>(image[at] ^ (1u << sf.flip_bit));
      }
      if (sf.truncate)
        r.effective_bytes_[s] =
            std::min<std::uint64_t>(r.effective_bytes_[s], sf.keep_bytes);
    }
  }

  r.state_ = std::make_unique<State>();
  r.state_->shard_state =
      std::make_unique<std::atomic<std::uint8_t>[]>(r.table_.size());
  for (std::size_t s = 0; s < r.table_.size(); ++s)
    r.state_->shard_state[s].store(0, std::memory_order_relaxed);
  return r;
}

util::Expected<ShardView> Reader::shard(std::size_t index) {
  if (index >= table_.size())
    return util::Status::invalid_input(
        "shard " + std::to_string(index) + " out of range (database has " +
        std::to_string(table_.size()) + ")");
  const ShardEntry& e = table_[index];
  std::uint8_t state = state_->shard_state[index].load(std::memory_order_acquire);
  if (state == 0) {
    // First touch: verify. Concurrent first touches may both hash; they
    // reach the same verdict, and the counters count transitions (CAS
    // winner), not hashes.
    util::WallTimer timer;
    std::uint8_t verdict = 2;
    if (effective_bytes_[index] == e.payload_bytes) {
      const std::uint64_t fnv = util::fnv1a_bytes(
          base() + e.offset, static_cast<std::size_t>(e.payload_bytes));
      if (fnv == e.payload_fnv) verdict = 1;
    }
    std::uint8_t expected = 0;
    if (state_->shard_state[index].compare_exchange_strong(
            expected, verdict, std::memory_order_acq_rel)) {
      state_->verify_ns.fetch_add(
          static_cast<std::uint64_t>(timer.elapsed_ms() * 1e6),
          std::memory_order_relaxed);
      (verdict == 1 ? state_->shards_verified : state_->shards_corrupt)
          .fetch_add(1, std::memory_order_relaxed);
      state = verdict;
    } else {
      state = expected;
    }
  }
  if (state != 1) {
    if (effective_bytes_[index] != e.payload_bytes)
      return corrupt(path_, "shard " + std::to_string(index) +
                                " is truncated (" +
                                std::to_string(effective_bytes_[index]) +
                                " of " + std::to_string(e.payload_bytes) +
                                " bytes)");
    return corrupt(path_, "shard " + std::to_string(index) +
                              " fails its checksum");
  }
  ShardView view;
  view.data = reinterpret_cast<const std::uint64_t*>(base() + e.offset);
  view.length = static_cast<std::size_t>(header_.entry_length);
  view.plane_bits = header_.plane_bits;
  view.first_entry = static_cast<std::size_t>(e.first_entry);
  view.lanes_used = e.lanes_used;
  return view;
}

bool Reader::shard_quarantined(std::size_t index) const {
  if (index >= table_.size()) return false;
  return state_->shard_state[index].load(std::memory_order_acquire) == 2;
}

ReaderStats Reader::stats() const {
  ReaderStats st;
  st.shards_verified = state_->shards_verified.load(std::memory_order_relaxed);
  st.shards_corrupt = state_->shards_corrupt.load(std::memory_order_relaxed);
  st.verify_ms =
      static_cast<double>(state_->verify_ns.load(std::memory_order_relaxed)) /
      1e6;
  return st;
}

}  // namespace swbpbc::db
