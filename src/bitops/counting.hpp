// CountingWord — a drop-in lane-word that counts bitwise operations.
//
// The paper's Lemmas 2-5 and Theorem 6 state exact operation counts for the
// bit-sliced arithmetic functions. Instead of re-deriving those counts on
// paper, the test suite instantiates the very same templates with
// CountingWord<uint32_t> and asserts the measured counts; see
// tests/bitops/opcount_test.cpp.
#pragma once

#include <bit>
#include <concepts>
#include <cstdint>

#include "bitsim/wide_word.hpp"

namespace swbpbc::bitops {

/// Lane-population count, generic over builtin and wide lane words. One
/// set bit = one surviving instance, so screening code that counts
/// threshold_mask survivors must come through here instead of assuming a
/// builtin-sized word (std::popcount does not accept wide_word).
template <std::unsigned_integral W>
[[nodiscard]] constexpr unsigned popcount(W w) {
  return static_cast<unsigned>(std::popcount(w));
}
template <unsigned Bits, bool Simd>
[[nodiscard]] inline unsigned popcount(const bitsim::wide_word<Bits, Simd>& w) {
  unsigned n = 0;
  for (unsigned t = 0; t < bitsim::wide_word<Bits, Simd>::kLimbs; ++t)
    n += static_cast<unsigned>(std::popcount(w.limb(t)));
  return n;
}

/// Wraps an unsigned integer and counts every &, |, ^, ~ applied to it.
/// Shifts are intentionally not provided: the Section IV.A arithmetic is
/// pure AND/OR/XOR/NOT and must stay that way.
template <std::unsigned_integral Base>
class CountingWord {
 public:
  CountingWord() = default;
  constexpr explicit CountingWord(Base v) : v_(v) {}

  [[nodiscard]] constexpr Base value() const { return v_; }

  /// Operations applied since the last reset (per thread).
  static std::uint64_t ops() { return ops_; }
  static void reset_ops() { ops_ = 0; }

  friend CountingWord operator&(CountingWord a, CountingWord b) {
    ++ops_;
    return CountingWord(static_cast<Base>(a.v_ & b.v_));
  }
  friend CountingWord operator|(CountingWord a, CountingWord b) {
    ++ops_;
    return CountingWord(static_cast<Base>(a.v_ | b.v_));
  }
  friend CountingWord operator^(CountingWord a, CountingWord b) {
    ++ops_;
    return CountingWord(static_cast<Base>(a.v_ ^ b.v_));
  }
  friend CountingWord operator~(CountingWord a) {
    ++ops_;
    return CountingWord(static_cast<Base>(~a.v_));
  }
  CountingWord& operator&=(CountingWord o) { return *this = *this & o; }
  CountingWord& operator|=(CountingWord o) { return *this = *this | o; }
  CountingWord& operator^=(CountingWord o) { return *this = *this ^ o; }

  friend bool operator==(CountingWord a, CountingWord b) {
    return a.v_ == b.v_;
  }

 private:
  Base v_{};
  static inline thread_local std::uint64_t ops_ = 0;
};

}  // namespace swbpbc::bitops
