// Bit-sliced arithmetic for the BPBC Smith-Waterman cell (paper, §IV.A).
//
// Every function below is a literal transcription of the paper's
// pseudo-code, templated on the lane word so that the identical code runs
// with uint32_t/uint64_t lanes in production and with CountingWord in the
// op-count tests. The `ops_*` constexpr functions give the paper's stated
// operation counts (Lemmas 2-5, Theorem 6); tests assert the measured
// counts against them.
//
// Conventions: all values are unsigned s-bit numbers in slice layout
// (slices.hpp); `a.size() == b.size() == q.size() == s`. Output spans may
// alias input spans unless noted.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "bitops/slices.hpp"

namespace swbpbc::bitops {

/// Paper's `greaterthan(A, B)`: per-lane mask that is 1 where A >= B and 0
/// where A < B (the paper specifies 1 for A > B, 0 for A < B, and leaves
/// ties unspecified; this implementation yields 1 on ties). `p` below is
/// the running borrow of A - B.
template <SliceWord W>
W ge_mask(std::span<const W> a, std::span<const W> b) {
  const std::size_t s = a.size();
  assert(b.size() == s && s > 0);
  W p = ~a[0] & b[0];
  for (std::size_t i = 1; i < s; ++i) {
    p = (b[i] & p) | (~a[i] & (b[i] ^ p));
  }
  return ~p;
}

/// Paper's `max_B(A, B)`: per-lane maximum. Lemma 2: 9s-2 operations.
template <SliceWord W>
void max_b(std::span<const W> a, std::span<const W> b, std::span<W> q) {
  const std::size_t s = a.size();
  assert(b.size() == s && q.size() == s);
  const W p = ge_mask(a, b);
  for (std::size_t i = 0; i < s; ++i) {
    q[i] = (a[i] & p) | (b[i] & ~p);
  }
}

/// Paper's `add_B(A, B)`: per-lane sum, modulo 2^s (callers must size s so
/// that no lane overflows; see sw/params.hpp).
///
/// Erratum: the paper initializes the carry as `p <- q0 <- a0 xor b0`,
/// which is not the carry out of bit 0 (consider a0 = 1, b0 = 0: the
/// carry must be 0, not 1). The correct initialization is `p = a0 and
/// b0`, costing one extra operation: 6s - 4 instead of Lemma 3's 6s - 5.
/// `q` must not alias `b`; aliasing `a` is allowed.
template <SliceWord W>
void add_b(std::span<const W> a, std::span<const W> b, std::span<W> q) {
  const std::size_t s = a.size();
  assert(b.size() == s && q.size() == s);
  W p = a[0] & b[0];
  q[0] = a[0] ^ b[0];
  for (std::size_t i = 1; i < s; ++i) {
    const W ai = a[i];
    const W bi = b[i];
    q[i] = ai ^ bi ^ p;
    p = (ai & (bi ^ p)) | (bi & p);
  }
}

/// Paper's `SSub_B(A, B)`: per-lane saturating subtraction max(A - B, 0).
/// Lemma 4: 9s-4 operations. `q` must not alias `b`; aliasing `a` is
/// allowed.
template <SliceWord W>
void ssub_b(std::span<const W> a, std::span<const W> b, std::span<W> q) {
  const std::size_t s = a.size();
  assert(b.size() == s && q.size() == s);
  q[0] = a[0] ^ b[0];
  W p = ~a[0] & b[0];
  for (std::size_t i = 1; i < s; ++i) {
    const W ai = a[i];
    const W bi = b[i];
    q[i] = ai ^ bi ^ p;
    p = (~ai & (bi ^ p)) | (bi & p);
  }
  // Lanes that borrowed out went negative: clamp them to zero.
  for (std::size_t i = 0; i < s; ++i) {
    q[i] = q[i] & ~p;
  }
}

/// Mismatch flag `e` of the paper's `matching_B`: per-lane 1 iff x != y,
/// where x and y are epsilon-bit characters in slice layout
/// (for DNA, epsilon = 2 and the slices are the L and H planes).
template <SliceWord W>
W mismatch_mask(std::span<const W> x, std::span<const W> y) {
  assert(x.size() == y.size() && !x.empty());
  W e = x[0] ^ y[0];
  for (std::size_t i = 1; i < x.size(); ++i) {
    e = e | (x[i] ^ y[i]);
  }
  return e;
}

/// Paper's `matching_B(C, x, y)` with the character comparison factored
/// out: returns Q = C + c1 on lanes where e == 0 (match) and
/// Q = max(C - c2, 0) on lanes where e == 1 (mismatch).
/// Lemma 5 bounds the full matching_B (including the e computation) by
/// 21s-9 operations. Scratch spans `r` and `t` must be distinct from all
/// other arguments.
template <SliceWord W>
void matching_b(std::span<const W> c, W e, std::span<const W> c1,
                std::span<const W> c2, std::span<W> q, std::span<W> r,
                std::span<W> t) {
  const std::size_t s = c.size();
  assert(c1.size() == s && c2.size() == s && q.size() == s &&
         r.size() == s && t.size() == s);
  add_b(c, c1, r);
  ssub_b(c, c2, t);
  for (std::size_t i = 0; i < s; ++i) {
    q[i] = (r[i] & ~e) | (t[i] & e);
  }
}

/// The full BPBC Smith-Waterman cell (paper's `SW(A, B, C, x, y)`):
///
///   SW = max(0, A - gap, B - gap, C + w(x, y))
///
/// with A = d[i-1][j] (up), B = d[i][j-1] (left), C = d[i-1][j-1] (diag)
/// and w = +c1 on match / -c2 saturating on mismatch. All of max_B, SSub_B
/// and matching_B return non-negative values, so the outer max-with-0 is
/// implicit. Theorem 6 bounds this at 48s-18 operations (excluding the
/// character comparison, which callers hoist per column).
///
/// `out` receives the result; scratch spans t/u/r must be distinct from
/// each other and from the inputs. `out` may alias `a`, `b` or `c`.
template <SliceWord W>
void sw_cell(std::span<const W> a, std::span<const W> b,
             std::span<const W> c, W e, std::span<const W> gap,
             std::span<const W> c1, std::span<const W> c2, std::span<W> out,
             std::span<W> t, std::span<W> u, std::span<W> r) {
  max_b(a, b, t);                                      // T = max(A, B)
  ssub_b(std::span<const W>(t), gap, u);               // U = max(T - gap, 0)
  matching_b(c, e, c1, c2, t, r, out);                 // T = C + w(x, y)
  max_b(std::span<const W>(t), std::span<const W>(u), out);
}

// ---------------------------------------------------------------------------
// Operation-count formulas (verified against CountingWord in the tests).

/// Lemma "greaterthan": 3 + 5(s-1) = 5s - 2 (includes the final negation).
constexpr std::uint64_t ops_greaterthan(std::uint64_t s) { return 5 * s - 2; }

/// Lemma 2: max_B performs 9s - 2 operations.
constexpr std::uint64_t ops_max(std::uint64_t s) { return 9 * s - 2; }

/// Lemma 3 states 6s - 5; our corrected carry initialization (see add_b's
/// erratum note) costs 6s - 4.
constexpr std::uint64_t ops_add(std::uint64_t s) { return 6 * s - 4; }

/// Lemma 4: SSub_B performs 9s - 4 operations.
constexpr std::uint64_t ops_ssub(std::uint64_t s) { return 9 * s - 4; }

/// Exact count of our matching_b + mismatch_mask for epsilon-bit chars:
/// add (6s-4) + ssub (9s-4) + select (4s) + compare (2*epsilon - 1).
/// Lemma 5's upper bound is 21s - 9 (it bounds the compare by 2s).
constexpr std::uint64_t ops_matching(std::uint64_t s, std::uint64_t eps) {
  return ops_add(s) + ops_ssub(s) + 4 * s + (2 * eps - 1);
}
constexpr std::uint64_t ops_matching_bound(std::uint64_t s) {
  return 21 * s - 9;
}

/// Exact count of our sw_cell + mismatch_mask: two max_B, one SSub_B and
/// one matching. Theorem 6's bound is 48s - 18.
constexpr std::uint64_t ops_sw_cell(std::uint64_t s, std::uint64_t eps) {
  return 2 * ops_max(s) + ops_ssub(s) + ops_matching(s, eps);
}
constexpr std::uint64_t ops_sw_cell_bound(std::uint64_t s) {
  return 48 * s - 18;
}

}  // namespace swbpbc::bitops
