// Bit-sliced value representation.
//
// An s-bit bulk number Q is stored as s lane words q[0..s-1]; bit k of q[l]
// is bit l of instance k's value. All arithmetic in arith.hpp operates on
// these slice spans with pure bitwise logic, which is what lets one machine
// word advance 32/64 DP instances at once (the BPBC idea).
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "bitops/counting.hpp"
#include "bitsim/wide_word.hpp"

namespace swbpbc::bitops {

template <class W>
struct word_traits;

template <std::unsigned_integral W>
struct word_traits<W> {
  static constexpr W zero() { return W{0}; }
  static constexpr W ones() { return static_cast<W>(~W{0}); }
};

template <unsigned Bits, bool Simd>
struct word_traits<bitsim::wide_word<Bits, Simd>> {
  using W = bitsim::wide_word<Bits, Simd>;
  static constexpr W zero() { return W{}; }
  static constexpr W ones() { return ~W{}; }
};

template <std::unsigned_integral B>
struct word_traits<CountingWord<B>> {
  static constexpr CountingWord<B> zero() { return CountingWord<B>{B{0}}; }
  static constexpr CountingWord<B> ones() {
    return CountingWord<B>{static_cast<B>(~B{0})};
  }
};

/// Types usable as BPBC lane words: plain unsigned integers and the
/// op-counting instrumentation wrapper.
template <class W>
concept SliceWord = requires(W a, W b) {
  { a & b } -> std::same_as<W>;
  { a | b } -> std::same_as<W>;
  { a ^ b } -> std::same_as<W>;
  { ~a } -> std::same_as<W>;
  { word_traits<W>::zero() } -> std::same_as<W>;
  { word_traits<W>::ones() } -> std::same_as<W>;
};

/// Slices of the per-lane constant `c` broadcast to every lane: slice l is
/// all-ones iff bit l of c is set. Used for gap/match/mismatch costs.
template <SliceWord W>
std::vector<W> broadcast_constant(std::uint32_t c, unsigned s) {
  std::vector<W> out;
  out.reserve(s);
  for (unsigned l = 0; l < s; ++l) {
    out.push_back(((c >> l) & 1) != 0 ? word_traits<W>::ones()
                                      : word_traits<W>::zero());
  }
  return out;
}

/// Zero-filled slice buffer of length s.
template <SliceWord W>
std::vector<W> zero_slices(unsigned s) {
  return std::vector<W>(s, word_traits<W>::zero());
}

}  // namespace swbpbc::bitops
