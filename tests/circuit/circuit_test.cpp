#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "bitops/arith.hpp"
#include "circuit/circuit.hpp"
#include "circuit/evaluate.hpp"
#include "circuit/optimize.hpp"
#include "circuit/sw_circuit.hpp"
#include "circuit/wire.hpp"

namespace swbpbc::circuit {
namespace {

TEST(Circuit, BasicGateEvaluation) {
  Circuit c;
  const auto a = c.add_input();
  const auto b = c.add_input();
  c.mark_output(c.add_and(a, b));
  c.mark_output(c.add_or(a, b));
  c.mark_output(c.add_xor(a, b));
  c.mark_output(c.add_not(a));
  const std::vector<std::uint32_t> in{0b1100, 0b1010};
  const auto out = evaluate<std::uint32_t>(c, in);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0b1000u);
  EXPECT_EQ(out[1], 0b1110u);
  EXPECT_EQ(out[2], 0b0110u);
  EXPECT_EQ(out[3], ~0b1100u);
}

TEST(Circuit, EvaluateChecksInputArity) {
  Circuit c;
  c.add_input();
  const std::vector<std::uint32_t> none;
  EXPECT_THROW(evaluate<std::uint32_t>(c, none), std::invalid_argument);
}

TEST(Circuit, CountsAndDump) {
  Circuit c;
  const auto a = c.add_input();
  const auto z = c.add_const(false);
  c.mark_output(c.add_and(a, z));
  const GateCounts counts = c.counts();
  EXPECT_EQ(counts.inputs, 1u);
  EXPECT_EQ(counts.constants, 1u);
  EXPECT_EQ(counts.and_gates, 1u);
  EXPECT_EQ(counts.logic(), 1u);
  EXPECT_NE(c.dump().find("and"), std::string::npos);
}

TEST(Wire, ScopeBindsThreadLocalCircuit) {
  Circuit c;
  {
    WireScope scope(c);
    const Wire a = Wire::input();
    const Wire b = Wire::input();
    const Wire q = (a & b) | ~a;
    c.mark_output(q.node());
  }
  EXPECT_EQ(c.input_count(), 2u);
  const std::vector<std::uint32_t> in{0b10, 0b11};
  const auto out = evaluate<std::uint32_t>(c, in);
  EXPECT_EQ(out[0], (0b10u & 0b11u) | ~0b10u);
}

// --- gate counts == paper op counts ----------------------------------------

TEST(SwCircuit, GateCountsEqualLemmaOpCounts) {
  for (unsigned s : {2u, 5u, 9u, 16u}) {
    EXPECT_EQ(build_ge(s).counts().logic(), bitops::ops_greaterthan(s));
    EXPECT_EQ(build_max(s).counts().logic(), bitops::ops_max(s));
    EXPECT_EQ(build_add(s).counts().logic(), bitops::ops_add(s));
    EXPECT_EQ(build_ssub(s).counts().logic(), bitops::ops_ssub(s));
    EXPECT_EQ(build_sw_cell(s).counts().logic(), bitops::ops_sw_cell(s, 2));
  }
}

// --- circuit output == direct bitops ----------------------------------------

TEST(SwCircuit, MaxCircuitMatchesBitops) {
  const unsigned s = 7;
  std::mt19937 rng(3);
  const Circuit c = build_max(s);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint32_t> in(2 * s);
    for (auto& w : in) w = static_cast<std::uint32_t>(rng());
    const auto out = evaluate<std::uint32_t>(c, in);
    std::vector<std::uint32_t> expect(s);
    bitops::max_b<std::uint32_t>(
        std::span<const std::uint32_t>(in.data(), s),
        std::span<const std::uint32_t>(in.data() + s, s),
        std::span<std::uint32_t>(expect));
    EXPECT_EQ(out, expect);
  }
}

TEST(SwCircuit, SwCellCircuitMatchesBitops) {
  const unsigned s = 6;
  std::mt19937 rng(4);
  const Circuit c = build_sw_cell(s);
  ASSERT_EQ(c.input_count(), 3 * s + 4 + 3 * s);
  for (int trial = 0; trial < 10; ++trial) {
    // Inputs: A, B, C, x(2), y(2), gap, c1, c2.
    std::vector<std::uint32_t> in(c.input_count());
    for (auto& w : in) w = static_cast<std::uint32_t>(rng());
    // Use broadcast constants for the cost slices (realistic usage).
    const auto gap = bitops::broadcast_constant<std::uint32_t>(1, s);
    const auto c1 = bitops::broadcast_constant<std::uint32_t>(2, s);
    const auto c2 = bitops::broadcast_constant<std::uint32_t>(1, s);
    std::copy(gap.begin(), gap.end(), in.begin() + 3 * s + 4);
    std::copy(c1.begin(), c1.end(), in.begin() + 4 * s + 4);
    std::copy(c2.begin(), c2.end(), in.begin() + 5 * s + 4);
    const auto out = evaluate<std::uint32_t>(c, in);

    const std::span<const std::uint32_t> a(in.data(), s);
    const std::span<const std::uint32_t> b(in.data() + s, s);
    const std::span<const std::uint32_t> diag(in.data() + 2 * s, s);
    const std::span<const std::uint32_t> x(in.data() + 3 * s, 2);
    const std::span<const std::uint32_t> y(in.data() + 3 * s + 2, 2);
    const std::uint32_t e = bitops::mismatch_mask<std::uint32_t>(x, y);
    std::vector<std::uint32_t> expect(s), t(s), u(s), r(s);
    bitops::sw_cell<std::uint32_t>(a, b, diag, e, gap, c1, c2,
                                   std::span<std::uint32_t>(expect), t, u,
                                   r);
    EXPECT_EQ(out, expect) << "trial " << trial;
  }
}

// --- optimizer ---------------------------------------------------------------

TEST(Optimize, FoldsConstantsAndIdentities) {
  Circuit c;
  const auto a = c.add_input();
  const auto zero = c.add_const(false);
  const auto one = c.add_const(true);
  c.mark_output(c.add_and(a, zero));            // -> 0
  c.mark_output(c.add_and(a, one));             // -> a
  c.mark_output(c.add_xor(a, a));               // -> 0
  c.mark_output(c.add_not(c.add_not(a)));       // -> a
  c.mark_output(c.add_or(zero, one));           // -> 1
  const Circuit opt = optimize(c);
  EXPECT_EQ(opt.counts().logic(), 0u);
  const std::vector<std::uint32_t> in{0xDEADBEEFu};
  const auto out = evaluate<std::uint32_t>(opt, in);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 0xDEADBEEFu);
  EXPECT_EQ(out[2], 0u);
  EXPECT_EQ(out[3], 0xDEADBEEFu);
  EXPECT_EQ(out[4], ~0u);
}

TEST(Optimize, DeduplicatesStructurallyEqualGates) {
  Circuit c;
  const auto a = c.add_input();
  const auto b = c.add_input();
  c.mark_output(c.add_and(a, b));
  c.mark_output(c.add_and(b, a));  // commutative duplicate
  const Circuit opt = optimize(c);
  EXPECT_EQ(opt.counts().and_gates, 1u);
}

TEST(Optimize, RemovesDeadGates) {
  Circuit c;
  const auto a = c.add_input();
  const auto b = c.add_input();
  (void)c.add_xor(a, b);  // dead
  c.mark_output(c.add_and(a, b));
  const Circuit opt = eliminate_dead(c);
  EXPECT_EQ(opt.counts().xor_gates, 0u);
  EXPECT_EQ(opt.counts().and_gates, 1u);
  EXPECT_EQ(opt.input_count(), 2u);  // inputs preserved
}

TEST(Optimize, PreservesSemanticsOnRandomCircuits) {
  std::mt19937 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Circuit c;
    std::vector<std::uint32_t> nodes;
    for (int i = 0; i < 4; ++i) nodes.push_back(c.add_input());
    nodes.push_back(c.add_const(false));
    nodes.push_back(c.add_const(true));
    for (int g = 0; g < 40; ++g) {
      const auto pick = [&] {
        return nodes[rng() % nodes.size()];
      };
      switch (rng() % 4) {
        case 0:
          nodes.push_back(c.add_and(pick(), pick()));
          break;
        case 1:
          nodes.push_back(c.add_or(pick(), pick()));
          break;
        case 2:
          nodes.push_back(c.add_xor(pick(), pick()));
          break;
        default:
          nodes.push_back(c.add_not(pick()));
          break;
      }
    }
    for (int o = 0; o < 5; ++o) c.mark_output(nodes[rng() % nodes.size()]);

    const Circuit opt = optimize(c);
    EXPECT_LE(opt.gates().size(), c.gates().size());
    for (int v = 0; v < 5; ++v) {
      std::vector<std::uint32_t> in(4);
      for (auto& w : in) w = static_cast<std::uint32_t>(rng());
      EXPECT_EQ(evaluate<std::uint32_t>(opt, in),
                evaluate<std::uint32_t>(c, in))
          << "trial " << trial;
    }
  }
}

TEST(Optimize, ConstantBakedSwCellIsSmaller) {
  const unsigned s = 9;
  const sw::ScoreParams params{2, 1, 1};
  const Circuit generic = build_sw_cell(s);
  const Circuit baked = optimize(build_sw_cell_const(s, params));
  EXPECT_LT(baked.counts().logic(), generic.counts().logic());

  // And it must still agree with the generic circuit when the generic one
  // is fed the same constants.
  std::mt19937 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint32_t> baked_in(3 * s + 4);
    for (auto& w : baked_in) w = static_cast<std::uint32_t>(rng());
    std::vector<std::uint32_t> generic_in = baked_in;
    const auto gap = bitops::broadcast_constant<std::uint32_t>(params.gap, s);
    const auto c1 =
        bitops::broadcast_constant<std::uint32_t>(params.match, s);
    const auto c2 =
        bitops::broadcast_constant<std::uint32_t>(params.mismatch, s);
    generic_in.insert(generic_in.end(), gap.begin(), gap.end());
    generic_in.insert(generic_in.end(), c1.begin(), c1.end());
    generic_in.insert(generic_in.end(), c2.begin(), c2.end());
    EXPECT_EQ(evaluate<std::uint32_t>(baked, baked_in),
              evaluate<std::uint32_t>(generic, generic_in));
  }
}

TEST(Optimize, SwCellOptimizationReportedInDesignDoc) {
  // The optimized generic cell should shed some gates (shared
  // subexpressions like repeated ~p terms) without changing arity.
  const unsigned s = 9;
  const Circuit generic = build_sw_cell(s);
  const Circuit opt = optimize(generic);
  EXPECT_EQ(opt.input_count(), generic.input_count());
  EXPECT_LE(opt.counts().logic(), generic.counts().logic());
}

// --- affine cell + matrix mux ------------------------------------------------

namespace {

// Encodes scalar `v` into bit slices with instance lane 0.
std::vector<std::uint32_t> to_slices(std::uint32_t v, unsigned s) {
  std::vector<std::uint32_t> slices(s);
  for (unsigned l = 0; l < s; ++l) slices[l] = (v >> l) & 1u;
  return slices;
}

std::uint32_t from_slices(std::span<const std::uint32_t> slices) {
  std::uint32_t v = 0;
  for (unsigned l = 0; l < slices.size(); ++l)
    v |= (slices[l] & 1u) << l;
  return v;
}

std::uint32_t ssub32(std::uint32_t a, std::uint32_t b) {
  return a > b ? a - b : 0u;
}

}  // namespace

TEST(SwCircuit, AffineCellMatchesScalarGotoh) {
  const unsigned s = 6;
  const unsigned eps = 2;
  const Circuit c = build_affine_cell(s, eps);
  ASSERT_EQ(c.input_count(), 5 * s + 2 * eps + 4 * s);
  std::mt19937 rng(21);
  const std::uint32_t open = 2, extend = 1, match = 3, mismatch = 1;
  const std::uint32_t mask = (1u << s) - 1;
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t h_up = rng() & mask;
    const std::uint32_t h_left = rng() & mask;
    const std::uint32_t diag = rng() & (mask >> 2);  // headroom for +match
    const std::uint32_t e_in = rng() & mask;
    const std::uint32_t f_in = rng() & mask;
    const std::uint32_t xc = rng() & 3u;
    const std::uint32_t yc = rng() & 3u;
    std::vector<std::uint32_t> in;
    for (std::uint32_t v : {h_up, h_left, diag, e_in, f_in}) {
      const auto sl = to_slices(v, s);
      in.insert(in.end(), sl.begin(), sl.end());
    }
    for (unsigned p = 0; p < eps; ++p) in.push_back((xc >> p) & 1u);
    for (unsigned p = 0; p < eps; ++p) in.push_back((yc >> p) & 1u);
    for (std::uint32_t v : {open, extend, match, mismatch}) {
      const auto sl = to_slices(v, s);
      in.insert(in.end(), sl.begin(), sl.end());
    }
    const auto out = evaluate<std::uint32_t>(c, in);
    ASSERT_EQ(out.size(), 3 * s);

    const std::uint32_t e_ref =
        std::max(ssub32(h_left, open), ssub32(e_in, extend));
    const std::uint32_t f_ref =
        std::max(ssub32(h_up, open), ssub32(f_in, extend));
    const std::uint32_t t_ref =
        xc == yc ? diag + match : ssub32(diag, mismatch);
    const std::uint32_t h_ref = std::max({t_ref, e_ref, f_ref});
    EXPECT_EQ(from_slices({out.data(), s}), h_ref) << "trial " << trial;
    EXPECT_EQ(from_slices({out.data() + s, s}), e_ref) << "trial " << trial;
    EXPECT_EQ(from_slices({out.data() + 2 * s, s}), f_ref)
        << "trial " << trial;
  }
}

TEST(SwCircuit, AffineCellConstBakedIsSmallerAndAgrees) {
  const unsigned s = 8;
  sw::ScoringScheme scheme;
  scheme.match = 2;
  scheme.mismatch = 1;
  scheme.gap_model = sw::GapModel::kAffine;
  scheme.gap_open = 3;
  scheme.gap_extend = 1;
  const Circuit generic = build_affine_cell(s, 2);
  const Circuit baked = optimize(build_affine_cell_const(s, scheme));
  EXPECT_LT(baked.counts().logic(), generic.counts().logic());
  EXPECT_EQ(baked.input_count(), 5 * s + 4u);

  std::mt19937 rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint32_t> baked_in(5 * s + 4);
    for (auto& w : baked_in) w = static_cast<std::uint32_t>(rng());
    std::vector<std::uint32_t> generic_in = baked_in;
    for (std::uint32_t v :
         {scheme.gap_open, scheme.gap_extend, scheme.match,
          scheme.mismatch}) {
      const auto sl = bitops::broadcast_constant<std::uint32_t>(v, s);
      generic_in.insert(generic_in.end(), sl.begin(), sl.end());
    }
    EXPECT_EQ(evaluate<std::uint32_t>(baked, baked_in),
              evaluate<std::uint32_t>(generic, generic_in));
  }
}

TEST(SwCircuit, MatrixMuxSelectsBlosum62Entries) {
  const auto matrix = sw::blosum62();
  const Circuit c = build_matrix_mux(*matrix);
  const unsigned eps = matrix->bits();
  ASSERT_EQ(c.input_count(), 2 * eps);
  const unsigned wp_bits =
      static_cast<unsigned>(std::bit_width(matrix->max_positive()));
  const unsigned wn_bits =
      static_cast<unsigned>(std::bit_width(matrix->max_negative()));
  ASSERT_EQ(c.outputs().size(), wp_bits + wn_bits);

  for (std::size_t a = 0; a < matrix->size(); ++a) {
    for (std::size_t b = 0; b < matrix->size(); ++b) {
      std::vector<std::uint32_t> in;
      for (unsigned p = 0; p < eps; ++p) in.push_back((a >> p) & 1u);
      for (unsigned p = 0; p < eps; ++p) in.push_back((b >> p) & 1u);
      const auto out = evaluate<std::uint32_t>(c, in);
      const int wp = static_cast<int>(from_slices({out.data(), wp_bits}));
      const int wn =
          static_cast<int>(from_slices({out.data() + wp_bits, wn_bits}));
      EXPECT_EQ(wp - wn, matrix->at(static_cast<std::uint8_t>(a),
                                    static_cast<std::uint8_t>(b)))
          << "a=" << a << " b=" << b;
      EXPECT_TRUE(wp == 0 || wn == 0) << "sign-split overlap";
    }
  }
}

TEST(SwCircuit, MatrixMuxOpCountScalesWithSignSplitPlanes) {
  // The mux must stay a per-bit OR/AND tree, not a full-table blowup:
  // one one-hot tree per symbol per side plus per-plane OR folds.
  const auto matrix = sw::blosum62();
  const Circuit opt = optimize(build_matrix_mux(*matrix));
  const std::size_t sigma = matrix->size();
  // Loose structural ceiling: eq trees are O(sigma * eps), each output
  // plane at most O(sigma^2) ORs.
  EXPECT_LT(opt.counts().logic(), 8 * sigma * sigma);
}

}  // namespace
}  // namespace swbpbc::circuit
