// Additional circuit coverage: 64-lane evaluation, matching_B netlists,
// and optimizer idempotence.
#include <gtest/gtest.h>

#include <random>

#include "bitops/arith.hpp"
#include "circuit/evaluate.hpp"
#include "circuit/optimize.hpp"
#include "circuit/sw_circuit.hpp"
#include "circuit/wire.hpp"

namespace swbpbc::circuit {
namespace {

TEST(CircuitWide, EvaluatorRuns64Lanes) {
  const unsigned s = 5;
  const Circuit c = build_add(s);
  std::mt19937_64 rng(1);
  std::vector<std::uint64_t> in(2 * s);
  for (auto& w : in) w = rng();
  const auto out = evaluate<std::uint64_t>(c, in);
  std::vector<std::uint64_t> expect(s);
  bitops::add_b<std::uint64_t>(
      std::span<const std::uint64_t>(in.data(), s),
      std::span<const std::uint64_t>(in.data() + s, s),
      std::span<std::uint64_t>(expect));
  EXPECT_EQ(out, expect);
}

TEST(CircuitWide, MatchingNetlistFromWires) {
  // Elaborate matching_B via Wire and cross-check against bitops.
  const unsigned s = 4, eps = 2;
  Circuit c;
  {
    WireScope scope(c);
    std::vector<Wire> cc, c1, c2, x, y;
    for (unsigned i = 0; i < s; ++i) cc.push_back(Wire::input());
    for (unsigned i = 0; i < eps; ++i) x.push_back(Wire::input());
    for (unsigned i = 0; i < eps; ++i) y.push_back(Wire::input());
    for (unsigned i = 0; i < s; ++i) c1.push_back(Wire::input());
    for (unsigned i = 0; i < s; ++i) c2.push_back(Wire::input());
    const Wire e = bitops::mismatch_mask<Wire>(x, y);
    std::vector<Wire> q(s), r(s), t(s);
    bitops::matching_b<Wire>(cc, e, c1, c2, q, r, t);
    for (const Wire& w : q) c.mark_output(w.node());
  }
  EXPECT_EQ(c.counts().logic(), bitops::ops_matching(s, eps));

  std::mt19937 rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint32_t> in(c.input_count());
    for (auto& w : in) w = static_cast<std::uint32_t>(rng());
    const auto out = evaluate<std::uint32_t>(c, in);

    const std::span<const std::uint32_t> cc(in.data(), s);
    const std::span<const std::uint32_t> x(in.data() + s, eps);
    const std::span<const std::uint32_t> y(in.data() + s + eps, eps);
    const std::span<const std::uint32_t> c1(in.data() + s + 2 * eps, s);
    const std::span<const std::uint32_t> c2(in.data() + 2 * s + 2 * eps,
                                            s);
    const std::uint32_t e = bitops::mismatch_mask<std::uint32_t>(x, y);
    std::vector<std::uint32_t> q(s), r(s), t(s);
    bitops::matching_b<std::uint32_t>(cc, e, c1, c2, q, r, t);
    EXPECT_EQ(out, q) << "trial " << trial;
  }
}

TEST(CircuitWide, OptimizeIsIdempotent) {
  const Circuit cell = build_sw_cell_const(7, {2, 1, 1});
  const Circuit once = optimize(cell);
  const Circuit twice = optimize(once);
  EXPECT_EQ(once.gates().size(), twice.gates().size());
  EXPECT_EQ(once.counts().logic(), twice.counts().logic());
}

TEST(CircuitWide, GeCircuitSingleOutputSemantics) {
  const unsigned s = 6;
  const Circuit c = build_ge(s);
  ASSERT_EQ(c.outputs().size(), 1u);
  std::mt19937 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint32_t> in(2 * s);
    const std::uint32_t mask = (1u << s) - 1;
    // Encode one value pair in lane 0 only.
    const std::uint32_t va = rng() & mask;
    const std::uint32_t vb = rng() & mask;
    for (unsigned l = 0; l < s; ++l) {
      in[l] = (va >> l) & 1u;
      in[s + l] = (vb >> l) & 1u;
    }
    const auto out = evaluate<std::uint32_t>(c, in);
    EXPECT_EQ(out[0] & 1u, va >= vb ? 1u : 0u)
        << "va=" << va << " vb=" << vb;
  }
}

TEST(CircuitWide, WireScopeNesting) {
  Circuit outer, inner;
  WireScope a(outer);
  (void)Wire::input();
  {
    WireScope b(inner);
    (void)Wire::input();
    (void)Wire::input();
  }
  (void)Wire::input();  // back in the outer scope
  EXPECT_EQ(outer.input_count(), 2u);
  EXPECT_EQ(inner.input_count(), 2u);
}

}  // namespace
}  // namespace swbpbc::circuit
