#include <gtest/gtest.h>

#include "encoding/batch.hpp"
#include "encoding/random.hpp"
#include "strmatch/approx.hpp"
#include "strmatch/bpbc_match.hpp"
#include "strmatch/exact.hpp"

namespace swbpbc::strmatch {
namespace {

using encoding::sequence_from_string;

TEST(Exact, PaperIntroExample) {
  // Paper §II: X = ATTCG, Y = AAATTCGGGA -> d = 110111... the paper prints
  // "110111" but with n - m + 1 = 6 offsets the match is at j = 2:
  // d = 1,1,0,1,1,1.
  const auto d = match_flags(sequence_from_string("ATTCG"),
                             sequence_from_string("AAATTCGGGA"));
  const std::vector<std::uint8_t> expect{1, 1, 0, 1, 1, 1};
  EXPECT_EQ(d, expect);
}

TEST(Exact, FindOccurrences) {
  const auto occ = find_occurrences(sequence_from_string("ACA"),
                                    sequence_from_string("ACACACA"));
  const std::vector<std::size_t> expect{0, 2, 4};
  EXPECT_EQ(occ, expect);
}

TEST(Exact, EdgeCases) {
  const auto x = sequence_from_string("ACGT");
  EXPECT_TRUE(match_flags(x, sequence_from_string("AC")).empty());
  EXPECT_TRUE(match_flags({}, x).empty());
  // m == n exact match.
  const auto d = match_flags(x, x);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], 0);
}

TEST(Exact, HammingProfile) {
  const auto prof = hamming_profile(sequence_from_string("AAA"),
                                    sequence_from_string("AATAA"));
  const std::vector<std::size_t> expect{1, 1, 1};
  EXPECT_EQ(prof, expect);
}

TEST(BpbcMatch, PaperWorkedExample) {
  // Paper §II, the 4-instance example. The paper's printed d words are the
  // complement of its own algorithm's output (it prints 1 where strings
  // match, while the algorithm sets d = 0 on match); we assert the
  // algorithm's semantics and note the complement.
  const std::vector<encoding::Sequence> xs = {
      sequence_from_string("ATCGA"), sequence_from_string("TCGAC"),
      sequence_from_string("AAAAA"), sequence_from_string("TTTTT")};
  const std::vector<encoding::Sequence> ys = {
      sequence_from_string("AATCGACA"), sequence_from_string("AATCGACA"),
      sequence_from_string("AAAAAAAA"), sequence_from_string("AATTTTTT")};
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  const auto d = bpbc_match_flags<std::uint32_t>(bx.groups[0], by.groups[0]);
  ASSERT_EQ(d.size(), 4u);
  // Mismatch masks over lanes (3,2,1,0); complement of the paper's print.
  EXPECT_EQ(d[0] & 0xF, 0b1011u);  // paper prints 0100
  EXPECT_EQ(d[1] & 0xF, 0b1010u);  // paper prints 0101
  EXPECT_EQ(d[2] & 0xF, 0b0001u);  // paper prints 1110
  EXPECT_EQ(d[3] & 0xF, 0b0011u);  // paper prints 1100
}

template <bitsim::LaneWord W>
void check_bpbc_vs_scalar(std::size_t count, std::size_t m, std::size_t n,
                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  auto xs = encoding::random_sequences(rng, count, m);
  auto ys = encoding::random_sequences(rng, count, n);
  // Plant some exact occurrences so matches exist.
  for (std::size_t k = 0; k < count; k += 3) {
    encoding::plant_motif(ys[k], xs[k], k % (n - m + 1));
  }
  const auto bx = encoding::transpose_strings<W>(xs);
  const auto by = encoding::transpose_strings<W>(ys);
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  for (std::size_t g = 0; g < bx.groups.size(); ++g) {
    const auto d = bpbc_match_flags<W>(bx.groups[g], by.groups[g]);
    const std::size_t lanes_used =
        std::min<std::size_t>(kLanes, count - g * kLanes);
    for (std::size_t lane = 0; lane < lanes_used; ++lane) {
      const std::size_t k = g * kLanes + lane;
      const auto scalar = match_flags(xs[k], ys[k]);
      ASSERT_EQ(d.size(), scalar.size());
      for (std::size_t j = 0; j < d.size(); ++j) {
        EXPECT_EQ((d[j] >> lane) & 1u, scalar[j])
            << "instance " << k << " offset " << j;
      }
    }
  }
}

TEST(BpbcMatch, MatchesScalar32) {
  check_bpbc_vs_scalar<std::uint32_t>(40, 6, 30, 101);
}

TEST(BpbcMatch, MatchesScalar64) {
  check_bpbc_vs_scalar<std::uint64_t>(70, 5, 20, 102);
}

TEST(BpbcMatch, EmptyWhenPatternLonger) {
  util::Xoshiro256 rng(103);
  const auto xs = encoding::random_sequences(rng, 32, 10);
  const auto ys = encoding::random_sequences(rng, 32, 5);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  EXPECT_TRUE(
      bpbc_match_flags<std::uint32_t>(bx.groups[0], by.groups[0]).empty());
}

TEST(Approx, CounterSlices) {
  EXPECT_EQ(counter_slices(1), 1u);
  EXPECT_EQ(counter_slices(3), 2u);
  EXPECT_EQ(counter_slices(4), 3u);
  EXPECT_EQ(counter_slices(255), 8u);
  EXPECT_EQ(counter_slices(256), 9u);
}

TEST(Approx, HammingSlicesMatchScalarProfile) {
  util::Xoshiro256 rng(104);
  const std::size_t count = 32, m = 9, n = 40;
  const auto xs = encoding::random_sequences(rng, count, m);
  const auto ys = encoding::random_sequences(rng, count, n);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  const auto slices = bpbc_hamming_slices<std::uint32_t>(bx.groups[0],
                                                         by.groups[0]);
  const unsigned s = counter_slices(m);
  ASSERT_EQ(slices.size(), n - m + 1);
  for (std::size_t lane = 0; lane < count; ++lane) {
    const auto prof = hamming_profile(xs[lane], ys[lane]);
    for (std::size_t j = 0; j < prof.size(); ++j) {
      std::uint32_t dist = 0;
      for (unsigned l = 0; l < s; ++l) {
        dist |= ((slices[j][l] >> lane) & 1u) << l;
      }
      EXPECT_EQ(dist, prof[j]) << "lane " << lane << " offset " << j;
    }
  }
}

TEST(Approx, ThresholdMatchingMatchesScalar) {
  util::Xoshiro256 rng(105);
  const std::size_t count = 64, m = 8, n = 32;
  auto xs = encoding::random_sequences(rng, count, m);
  auto ys = encoding::random_sequences(rng, count, n);
  for (std::size_t k = 0; k < count; k += 5) {
    auto noisy = encoding::mutate(xs[k], 0.15, rng);
    encoding::plant_motif(ys[k], noisy, 3);
  }
  const auto bx = encoding::transpose_strings<std::uint64_t>(xs);
  const auto by = encoding::transpose_strings<std::uint64_t>(ys);
  for (std::uint32_t k : {0u, 1u, 2u, 4u}) {
    const auto masks =
        bpbc_approx_match<std::uint64_t>(bx.groups[0], by.groups[0], k);
    for (std::size_t lane = 0; lane < count; ++lane) {
      const auto prof = hamming_profile(xs[lane], ys[lane]);
      for (std::size_t j = 0; j < prof.size(); ++j) {
        EXPECT_EQ((masks[j] >> lane) & 1u, prof[j] <= k ? 1u : 0u)
            << "k=" << k << " lane=" << lane << " j=" << j;
      }
    }
  }
}

TEST(Approx, KAboveMSelectsEverything) {
  util::Xoshiro256 rng(106);
  const auto xs = encoding::random_sequences(rng, 32, 6);
  const auto ys = encoding::random_sequences(rng, 32, 20);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  const auto masks =
      bpbc_approx_match<std::uint32_t>(bx.groups[0], by.groups[0], 6);
  for (auto w : masks) EXPECT_EQ(w, ~0u);
}

}  // namespace
}  // namespace swbpbc::strmatch
