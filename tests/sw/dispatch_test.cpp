// The cost-model backend dispatcher: name/parse round-trips, the
// SWBPBC_FORCE_BACKEND policy function (every spelling, the no-override
// cases, the typed negative naming the variable), auto-resolution
// determinism (never kAuto, follows the cheaper engine for both cost
// orderings), the naive-reference scheme gate, and end-to-end screen
// bit-identity whichever host engine backend_choice selects.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sw/backend.hpp"
#include "sw/dispatch.hpp"
#include "sw/pipeline.hpp"
#include "sw/scan.hpp"
#include "sw/scoring.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {
namespace {

using encoding::Sequence;

TEST(BackendChoiceNames, ParseRoundTripsEveryName) {
  const BackendChoice all[] = {BackendChoice::kAuto, BackendChoice::kBpbc,
                               BackendChoice::kStriped,
                               BackendChoice::kWordwiseNaive};
  for (const BackendChoice c : all) {
    const auto parsed = parse_backend_choice(backend_choice_name(c));
    ASSERT_TRUE(parsed.has_value()) << backend_choice_name(c);
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(parse_backend_choice("BPBC").has_value());
  EXPECT_FALSE(parse_backend_choice("").has_value());
  EXPECT_FALSE(parse_backend_choice("striped ").has_value());
}

TEST(ForcedBackend, UnsetAndEmptyMeanNoOverride) {
  const auto unset = parse_forced_backend(nullptr);
  ASSERT_TRUE(unset.has_value());
  EXPECT_FALSE(unset->has_value());
  const auto empty = parse_forced_backend("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->has_value());
}

TEST(ForcedBackend, AcceptsEverySpelling) {
  const struct {
    const char* value;
    BackendChoice choice;
  } cases[] = {
      {"bpbc", BackendChoice::kBpbc},
      {"striped", BackendChoice::kStriped},
      {"wordwise-naive", BackendChoice::kWordwiseNaive},
      {"auto", BackendChoice::kAuto},
  };
  for (const auto& c : cases) {
    const auto parsed = parse_forced_backend(c.value);
    ASSERT_TRUE(parsed.has_value()) << c.value;
    ASSERT_TRUE(parsed->has_value()) << c.value;
    EXPECT_EQ(**parsed, c.choice) << c.value;
  }
}

TEST(ForcedBackend, UnknownValueIsTypedInvalidInput) {
  for (const char* bad : {"farrar", "STRIPED", "bpbc ", "0", "wordwise"}) {
    const auto parsed = parse_forced_backend(bad);
    ASSERT_FALSE(parsed.has_value()) << bad;
    EXPECT_EQ(parsed.status().code(), util::ErrorCode::kInvalidInput) << bad;
    // Actionable from deep inside a screening run: the message names the
    // variable, the offending value, and the accepted spellings.
    EXPECT_NE(parsed.status().message().find("SWBPBC_FORCE_BACKEND"),
              std::string::npos);
    EXPECT_NE(parsed.status().message().find(bad), std::string::npos);
  }
}

TEST(ForcedBackend, ThrowingAccessorSurfacesTypedError) {
  EXPECT_THROW(parse_forced_backend("banana").value(), util::StatusError);
}

DispatchWorkload dna_workload() {
  ScoringScheme s;  // defaults: +2/-1 linear, gap 1
  return DispatchWorkload::from(s, 1024, 64, 256, LaneWidth::k64);
}

TEST(DispatchWorkloadTest, FromCapturesSchemeShape) {
  ScoringScheme affine;
  affine.gap_model = GapModel::kAffine;
  affine.gap_open = 3;
  affine.gap_extend = 1;
  const DispatchWorkload w =
      DispatchWorkload::from(affine, 10, 24, 48, LaneWidth::k512);
  EXPECT_EQ(w.pairs, 10u);
  EXPECT_EQ(w.m, 24u);
  EXPECT_EQ(w.n, 48u);
  EXPECT_EQ(w.lane_bits, 512u);
  EXPECT_TRUE(w.affine);
  EXPECT_FALSE(w.matrix);
  EXPECT_FALSE(w.wide_cells);
  EXPECT_GT(w.slices, 0u);

  ScoringScheme protein;
  protein.matrix = blosum62();
  protein.gap_model = GapModel::kAffine;
  protein.gap_open = 11;
  protein.gap_extend = 1;
  const DispatchWorkload p =
      DispatchWorkload::from(protein, 1, 8000, 100, LaneWidth::k64);
  EXPECT_TRUE(p.matrix);
  EXPECT_EQ(p.alphabet_bits, 5u);
  EXPECT_TRUE(p.wide_cells);  // 11 * 8000 blows the 16-bit bound
}

// Explicit requests pass straight through — the model never overrides a
// non-auto choice.
TEST(ResolveBackend, ExplicitChoicePassesThrough) {
  const DispatchWorkload w = dna_workload();
  EXPECT_EQ(resolve_backend_choice(BackendChoice::kBpbc, w),
            BackendChoice::kBpbc);
  EXPECT_EQ(resolve_backend_choice(BackendChoice::kStriped, w),
            BackendChoice::kStriped);
  EXPECT_EQ(resolve_backend_choice(BackendChoice::kWordwiseNaive, w),
            BackendChoice::kWordwiseNaive);
}

// Auto follows the cheaper engine for both cost orderings, never returns
// kAuto, and never auto-picks the retired naive reference.
TEST(ResolveBackend, AutoFollowsTheCostModel) {
  const DispatchWorkload w = dna_workload();
  CostModel bpbc_wins;
  bpbc_wins.bpbc_base_ns = 0.01;
  bpbc_wins.bpbc_slice_ns = 0.0;
  bpbc_wins.striped_cell_ns = 100.0;
  EXPECT_EQ(resolve_backend_choice(BackendChoice::kAuto, w, bpbc_wins),
            BackendChoice::kBpbc);
  CostModel striped_wins;
  striped_wins.bpbc_base_ns = 100.0;
  striped_wins.striped_cell_ns = 0.01;
  striped_wins.striped_profile_ns = 0.0;
  EXPECT_EQ(resolve_backend_choice(BackendChoice::kAuto, w, striped_wins),
            BackendChoice::kStriped);
  // The agreement property the dispatcher rests on, stated directly.
  for (const CostModel& m : {bpbc_wins, striped_wins}) {
    const BackendChoice c = resolve_backend_choice(BackendChoice::kAuto, w, m);
    EXPECT_NE(c, BackendChoice::kAuto);
    EXPECT_NE(c, BackendChoice::kWordwiseNaive);
    EXPECT_EQ(c == BackendChoice::kStriped,
              m.striped_cost_ns(w) < m.bpbc_cost_ns(w));
  }
}

TEST(ResolveBackend, AutoIsDeterministic) {
  const DispatchWorkload w = dna_workload();
  const BackendChoice first = resolve_backend_choice(BackendChoice::kAuto, w);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(resolve_backend_choice(BackendChoice::kAuto, w), first);
  EXPECT_NE(first, BackendChoice::kAuto);
}

// The cost model's measured shape: BPBC's per-cell price rises with the
// slice count and falls with lane width; striped's is flat in both. The
// crossover surface in BENCH_crossover.json depends on these monotonic
// directions, not the absolute coefficients.
TEST(CostModelTest, MonotoneInSlicesAndLaneWidth) {
  const CostModel& m = CostModel::measured();
  DispatchWorkload w = dna_workload();
  const double base = m.bpbc_cost_ns(w);
  DispatchWorkload more_slices = w;
  more_slices.slices = w.slices + 8;
  EXPECT_GT(m.bpbc_cost_ns(more_slices), base);
  DispatchWorkload wider = w;
  wider.lane_bits = 512;
  EXPECT_LT(m.bpbc_cost_ns(wider), base);
  EXPECT_EQ(m.striped_cost_ns(more_slices), m.striped_cost_ns(w));
  EXPECT_EQ(m.striped_cost_ns(wider), m.striped_cost_ns(w));
  // GE, not GT: the measured table's wide-cell multiplier is clamped at
  // 1 (the memory system hid the halved vector occupancy on the bench
  // host); the model just must never price wide cells *cheaper*.
  DispatchWorkload wide_cells = w;
  wide_cells.wide_cells = true;
  EXPECT_GE(m.striped_cost_ns(wide_cells), m.striped_cost_ns(w));
  CostModel penalized;
  penalized.striped_wide_mul = 2.0;
  EXPECT_GT(penalized.striped_cost_ns(wide_cells),
            penalized.striped_cost_ns(w));
}

// BPBC pays for padded lanes: a batch smaller than the lane count costs
// the same word ops as a full word, and the cost is flat until the batch
// spills into a second word. This under-fill term is what hands small
// batches to striped (the crossover bench's m6000 region).
TEST(CostModelTest, BpbcPricesPaddedLanes) {
  const CostModel& m = CostModel::measured();
  DispatchWorkload w = dna_workload();
  w.lane_bits = 128;
  w.pairs = 4;
  const double four = m.bpbc_cost_ns(w);
  w.pairs = 128;
  EXPECT_EQ(m.bpbc_cost_ns(w), four);  // same single word, padded or full
  w.pairs = 129;
  EXPECT_EQ(m.bpbc_cost_ns(w), 2 * four);  // spills into a second word
}

// Striped charges a fixed per-column overhead, so at equal cell counts a
// short-query workload (more columns) costs more than a long-query one —
// the term that prices protein_screen's m=24 shape into BPBC territory.
TEST(CostModelTest, StripedChargesPerColumnOverhead) {
  const CostModel& m = CostModel::measured();
  DispatchWorkload short_q = dna_workload();
  short_q.m = 32;
  short_q.n = 1024;
  DispatchWorkload long_q = dna_workload();
  long_q.m = 1024;
  long_q.n = 32;
  ASSERT_EQ(short_q.m * short_q.n, long_q.m * long_q.n);
  EXPECT_GT(m.striped_cost_ns(short_q), m.striped_cost_ns(long_q));
}

TEST(MakeDispatchBackend, NaiveReferenceRequiresExpressibleScheme) {
  ScoringScheme affine;
  affine.gap_model = GapModel::kAffine;
  affine.gap_open = 3;
  affine.gap_extend = 1;
  const DispatchWorkload w =
      DispatchWorkload::from(affine, 4, 16, 32, LaneWidth::k64);
  const auto made =
      make_dispatch_backend(affine, LaneWidth::k64, bulk::Mode::kSerial,
                            encoding::TransposeMethod::kPlanned,
                            BackendChoice::kWordwiseNaive, w);
  ASSERT_FALSE(made.has_value());
  EXPECT_EQ(made.status().code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(made.status().message().find("wordwise-naive"),
            std::string::npos);
}

TEST(MakeDispatchBackend, BuildsEveryHostEngine) {
  ScoringScheme s;  // params-expressible default
  const DispatchWorkload w =
      DispatchWorkload::from(s, 4, 16, 32, LaneWidth::k64);
  for (const BackendChoice c :
       {BackendChoice::kAuto, BackendChoice::kBpbc, BackendChoice::kStriped,
        BackendChoice::kWordwiseNaive}) {
    const auto made = make_dispatch_backend(
        s, LaneWidth::k64, bulk::Mode::kSerial,
        encoding::TransposeMethod::kPlanned, c, w);
    ASSERT_TRUE(made.has_value()) << backend_choice_name(c);
    EXPECT_NE(made->backend, nullptr);
    EXPECT_NE(made->choice, BackendChoice::kAuto);
    if (c != BackendChoice::kAuto) EXPECT_EQ(made->choice, c);
  }
}

// The property the whole PR rests on: whichever engine backend_choice
// selects, the screen's scores are bit-identical. Runs the same batch
// through all four choices (auto resolves to one of the first two) and a
// chunked variant, linear and affine.
TEST(DispatchScreen, ScoresBitIdenticalAcrossEveryChoice) {
  util::Xoshiro256 rng(31);
  const auto random_dna = [&rng](std::size_t len) {
    Sequence s(len);
    for (auto& b : s) b = static_cast<encoding::Base>(rng.below(4));
    return s;
  };
  const std::size_t pairs = 48, m = 20, n = 96;
  std::vector<Sequence> xs, ys;
  for (std::size_t k = 0; k < pairs; ++k) {
    xs.push_back(random_dna(m));
    ys.push_back(random_dna(n));
  }
  for (const bool affine : {false, true}) {
    ScoringScheme scheme;
    if (affine) {
      scheme.gap_model = GapModel::kAffine;
      scheme.gap_open = 3;
      scheme.gap_extend = 1;
    }
    ScreenConfig base;
    base.scheme = scheme;
    base.traceback = false;
    base.backend_choice = BackendChoice::kBpbc;
    const auto want = try_screen(xs, ys, base);
    ASSERT_TRUE(want.has_value()) << want.status().to_string();

    std::vector<BackendChoice> choices = {BackendChoice::kStriped,
                                          BackendChoice::kAuto};
    if (!affine) choices.push_back(BackendChoice::kWordwiseNaive);
    for (const BackendChoice c : choices) {
      ScreenConfig cfg = base;
      cfg.backend_choice = c;
      cfg.chunk_pairs = 16;
      const auto got = try_screen(xs, ys, cfg);
      ASSERT_TRUE(got.has_value())
          << backend_choice_name(c) << ": " << got.status().to_string();
      EXPECT_EQ(got->scores, want->scores)
          << backend_choice_name(c) << " affine=" << affine;
    }
  }
}

// The text scan resolves its engine per run the same way: every backend
// choice reports the same windows at the same scores.
TEST(DispatchScan, HitsBitIdenticalAcrossEveryChoice) {
  util::Xoshiro256 rng(47);
  Sequence query(12), text(2000);
  for (auto& b : query) b = static_cast<encoding::Base>(rng.below(4));
  for (auto& b : text) b = static_cast<encoding::Base>(rng.below(4));
  for (std::size_t i = 0; i < query.size(); ++i) text[700 + i] = query[i];
  ScanConfig base;
  base.params = ScoreParams{2, 1, 1};
  base.threshold = 18;
  base.window = 256;
  base.overlap = 24;
  base.backend = BackendChoice::kBpbc;
  const auto want = try_scan_text(query, text, base);
  ASSERT_TRUE(want.has_value()) << want.status().to_string();
  ASSERT_FALSE(want->hits.empty());
  for (const BackendChoice c :
       {BackendChoice::kStriped, BackendChoice::kWordwiseNaive,
        BackendChoice::kAuto}) {
    ScanConfig cfg = base;
    cfg.backend = c;
    cfg.chunk_windows = 3;
    const auto got = try_scan_text(query, text, cfg);
    ASSERT_TRUE(got.has_value())
        << backend_choice_name(c) << ": " << got.status().to_string();
    ASSERT_EQ(got->hits.size(), want->hits.size()) << backend_choice_name(c);
    for (std::size_t i = 0; i < want->hits.size(); ++i) {
      EXPECT_EQ(got->hits[i].text_begin, want->hits[i].text_begin);
      EXPECT_EQ(got->hits[i].score, want->hits[i].score)
          << backend_choice_name(c) << " hit " << i;
    }
  }
}

// The naive reference is gated at screen level too: an affine scheme with
// backend_choice=wordwise-naive is a typed error, not a wrong answer.
TEST(DispatchScreen, NaiveChoiceWithAffineSchemeIsTypedError) {
  ScoringScheme affine;
  affine.gap_model = GapModel::kAffine;
  affine.gap_open = 3;
  affine.gap_extend = 1;
  const std::vector<Sequence> xs(2, Sequence(8, encoding::Base::A));
  const std::vector<Sequence> ys(2, Sequence(16, encoding::Base::C));
  ScreenConfig cfg;
  cfg.scheme = affine;
  cfg.traceback = false;
  cfg.backend_choice = BackendChoice::kWordwiseNaive;
  const auto got = try_screen(xs, ys, cfg);
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.status().code(), util::ErrorCode::kInvalidInput);
}

}  // namespace
}  // namespace swbpbc::sw
