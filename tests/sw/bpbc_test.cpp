// Cross-checks of the BPBC Smith-Waterman against the scalar reference:
// the library's central correctness property.
#include <gtest/gtest.h>

#include "encoding/batch.hpp"
#include "encoding/random.hpp"
#include "sw/bpbc.hpp"
#include "sw/scalar.hpp"

namespace swbpbc::sw {
namespace {

struct Case {
  std::size_t count;
  std::size_t m;
  std::size_t n;
  ScoreParams params;
  std::uint64_t seed;
};

class BpbcVsScalar : public ::testing::TestWithParam<Case> {};

TEST_P(BpbcVsScalar, Lane32MatchesScalar) {
  const Case c = GetParam();
  util::Xoshiro256 rng(c.seed);
  const auto xs = encoding::random_sequences(rng, c.count, c.m);
  const auto ys = encoding::random_sequences(rng, c.count, c.n);
  const auto scores = bpbc_max_scores(xs, ys, c.params, LaneWidth::k32);
  ASSERT_EQ(scores.size(), c.count);
  for (std::size_t k = 0; k < c.count; ++k) {
    EXPECT_EQ(scores[k], max_score(xs[k], ys[k], c.params))
        << "instance " << k;
  }
}

TEST_P(BpbcVsScalar, Lane64MatchesScalar) {
  const Case c = GetParam();
  util::Xoshiro256 rng(c.seed + 1);
  const auto xs = encoding::random_sequences(rng, c.count, c.m);
  const auto ys = encoding::random_sequences(rng, c.count, c.n);
  const auto scores = bpbc_max_scores(xs, ys, c.params, LaneWidth::k64);
  ASSERT_EQ(scores.size(), c.count);
  for (std::size_t k = 0; k < c.count; ++k) {
    EXPECT_EQ(scores[k], max_score(xs[k], ys[k], c.params))
        << "instance " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BpbcVsScalar,
    ::testing::Values(
        Case{32, 8, 24, {2, 1, 1}, 1},     // one full 32-lane group
        Case{64, 8, 24, {2, 1, 1}, 2},     // two groups / one 64 group
        Case{7, 5, 9, {2, 1, 1}, 3},       // partial group (tail lanes)
        Case{33, 6, 10, {2, 1, 1}, 4},     // full group + 1
        Case{16, 16, 16, {2, 1, 1}, 5},    // m == n
        Case{16, 12, 40, {3, 2, 2}, 6},    // different costs
        Case{16, 10, 20, {1, 1, 1}, 7},    // unit costs
        Case{16, 9, 33, {5, 1, 2}, 8},     // strong match reward
        Case{8, 1, 12, {2, 1, 1}, 9},      // single-character pattern
        Case{8, 12, 12, {2, 3, 4}, 10}));  // harsh penalties

TEST(Bpbc, ParallelModeMatchesSerial) {
  util::Xoshiro256 rng(42);
  const auto xs = encoding::random_sequences(rng, 96, 10);
  const auto ys = encoding::random_sequences(rng, 96, 30);
  const ScoreParams params{2, 1, 1};
  const auto serial =
      bpbc_max_scores(xs, ys, params, LaneWidth::k32, bulk::Mode::kSerial);
  const auto parallel =
      bpbc_max_scores(xs, ys, params, LaneWidth::k32, bulk::Mode::kParallel);
  EXPECT_EQ(serial, parallel);
}

TEST(Bpbc, NaiveTransposeGivesSameScores) {
  util::Xoshiro256 rng(43);
  const auto xs = encoding::random_sequences(rng, 40, 8);
  const auto ys = encoding::random_sequences(rng, 40, 20);
  const ScoreParams params{2, 1, 1};
  const auto planned =
      bpbc_max_scores(xs, ys, params, LaneWidth::k32, bulk::Mode::kSerial,
                      encoding::TransposeMethod::kPlanned);
  const auto naive =
      bpbc_max_scores(xs, ys, params, LaneWidth::k32, bulk::Mode::kSerial,
                      encoding::TransposeMethod::kNaive);
  EXPECT_EQ(planned, naive);
}

TEST(Bpbc, IdenticalStringsSaturateToFullScore) {
  util::Xoshiro256 rng(44);
  const auto x = encoding::random_sequence(rng, 16);
  const std::vector<encoding::Sequence> xs(32, x);
  std::vector<encoding::Sequence> ys;
  for (int k = 0; k < 32; ++k) {
    auto y = encoding::random_sequence(rng, 40);
    encoding::plant_motif(y, x, 4);
    ys.push_back(std::move(y));
  }
  const ScoreParams params{2, 1, 1};
  const auto scores = bpbc_max_scores(xs, ys, params);
  for (auto sc : scores) EXPECT_GE(sc, 32u);  // full 16-char match
}

TEST(Bpbc, ThresholdMaskSelectsLanesInSliceDomain) {
  util::Xoshiro256 rng(45);
  const auto xs = encoding::random_sequences(rng, 32, 8);
  const auto ys = encoding::random_sequences(rng, 32, 24);
  const ScoreParams params{2, 1, 1};
  const BpbcAligner<std::uint32_t> aligner(params, 8, 24);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  std::vector<std::uint32_t> slices(aligner.slices());
  aligner.max_score_slices(bx.groups[0], by.groups[0],
                           std::span<std::uint32_t>(slices));
  const auto scores = aligner.max_scores(bx.groups[0], by.groups[0]);
  for (std::uint32_t tau : {0u, 5u, 9u, 14u}) {
    const std::uint32_t mask = aligner.threshold_mask(
        std::span<const std::uint32_t>(slices), tau);
    for (unsigned lane = 0; lane < 32; ++lane) {
      EXPECT_EQ((mask >> lane) & 1u, scores[lane] >= tau ? 1u : 0u)
          << "tau=" << tau << " lane=" << lane;
    }
  }
}

TEST(Bpbc, AlignerValidatesShapes) {
  const ScoreParams params{2, 1, 1};
  const BpbcAligner<std::uint32_t> aligner(params, 8, 16);
  EXPECT_EQ(aligner.m(), 8u);
  EXPECT_EQ(aligner.n(), 16u);
  util::Xoshiro256 rng(50);
  const auto xs = encoding::random_sequences(rng, 32, 9);  // wrong m
  const auto ys = encoding::random_sequences(rng, 32, 16);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  std::vector<std::uint32_t> slices(aligner.slices());
  EXPECT_THROW(aligner.max_score_slices(bx.groups[0], by.groups[0],
                                        std::span<std::uint32_t>(slices)),
               std::invalid_argument);
}

TEST(Bpbc, MismatchedBatchSizesRejected) {
  util::Xoshiro256 rng(51);
  const auto xs = encoding::random_sequences(rng, 4, 8);
  const auto ys = encoding::random_sequences(rng, 5, 16);
  EXPECT_THROW(bpbc_max_scores(xs, ys, {2, 1, 1}), std::invalid_argument);
}

TEST(Bpbc, EmptyBatchGivesEmptyScores) {
  const std::vector<encoding::Sequence> none;
  EXPECT_TRUE(bpbc_max_scores(none, none, {2, 1, 1}).empty());
}

TEST(Bpbc, TimingsArePopulated) {
  util::Xoshiro256 rng(52);
  const auto xs = encoding::random_sequences(rng, 32, 8);
  const auto ys = encoding::random_sequences(rng, 32, 64);
  PhaseTimings t;
  (void)bpbc_max_scores(xs, ys, {2, 1, 1}, LaneWidth::k32,
                        bulk::Mode::kSerial,
                        encoding::TransposeMethod::kPlanned, &t);
  EXPECT_GT(t.swa_ms, 0.0);
  EXPECT_GE(t.total_ms(), t.swa_ms);
}

TEST(Bpbc, ScoreNeverExceedsSliceCapacity) {
  // Saturation/headroom check: scores fit in s bits by construction.
  util::Xoshiro256 rng(53);
  const std::size_t m = 16;
  const ScoreParams params{2, 1, 1};
  const unsigned s = required_slices(params, m, 64);
  const auto xs = encoding::random_sequences(rng, 32, m);
  const auto ys = encoding::random_sequences(rng, 32, 64);
  const auto scores = bpbc_max_scores(xs, ys, params);
  for (auto sc : scores) EXPECT_LT(sc, 1u << s);
}

}  // namespace
}  // namespace swbpbc::sw
