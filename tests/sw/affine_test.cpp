// Affine-gap (Gotoh) extension: scalar reference vs the bit-sliced
// implementation, plus the degeneration property open == extend ==
// linear gap.
#include <gtest/gtest.h>

#include "encoding/random.hpp"
#include "sw/affine.hpp"
#include "sw/bpbc.hpp"
#include "sw/scalar.hpp"

namespace swbpbc::sw {
namespace {

TEST(AffineScalar, PerfectMatch) {
  const auto x = encoding::sequence_from_string("ACGTACGT");
  EXPECT_EQ(affine_max_score(x, x, {2, 1, 3, 1}), 16u);
}

TEST(AffineScalar, LongGapCheaperThanRepeatedOpens) {
  // x = AAAATTTT...TTTTAAAA-like: one long gap should cost
  // open + (k-1) * extend, not k * open.
  // x matches y with one 5-column gap (the TTTTT run); no contiguous
  // region of x scores higher than the two 4-match halves (8 each).
  const auto x = encoding::sequence_from_string("GGGGCCCC");
  const auto y = encoding::sequence_from_string("GGGGAAAAACCCC");
  // Best: GGGG [5-gap] CCCC = 8 matches * 2 - (3 + 4 * 1) = 16 - 7 = 9.
  EXPECT_EQ(affine_max_score(x, y, {2, 1, 3, 1}), 9u);
  // With every gap column priced at the open cost the gap costs 15, so
  // the best alignment degrades to one ungapped half (score 8).
  EXPECT_EQ(affine_max_score(x, y, {2, 1, 3, 3}), 8u);
  EXPECT_GT(affine_max_score(x, y, {2, 1, 3, 1}),
            affine_max_score(x, y, {2, 1, 3, 3}));
}

TEST(AffineScalar, OpenEqualsExtendDegeneratesToLinear) {
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto x = encoding::random_sequence(rng, 6 + rng.below(12));
    const auto y = encoding::random_sequence(rng, 12 + rng.below(30));
    const auto g = static_cast<std::uint32_t>(1 + rng.below(3));
    const AffineParams affine{2, 1, g, g};
    const ScoreParams linear{2, 1, g};
    EXPECT_EQ(affine_max_score(x, y, affine), max_score(x, y, linear))
        << "trial " << trial;
  }
}

TEST(AffineScalar, EmptyInputs) {
  const auto x = encoding::sequence_from_string("ACGT");
  EXPECT_EQ(affine_max_score({}, x, {2, 1, 3, 1}), 0u);
  EXPECT_EQ(affine_max_score(x, {}, {2, 1, 3, 1}), 0u);
}

struct AffineCase {
  std::size_t count, m, n;
  AffineParams params;
  std::uint64_t seed;
};

class AffineBpbcVsScalar : public ::testing::TestWithParam<AffineCase> {};

TEST_P(AffineBpbcVsScalar, Lane32) {
  const AffineCase c = GetParam();
  util::Xoshiro256 rng(c.seed);
  auto xs = encoding::random_sequences(rng, c.count, c.m);
  auto ys = encoding::random_sequences(rng, c.count, c.n);
  for (std::size_t k = 0; k < c.count; k += 4) {
    encoding::plant_motif(ys[k], xs[k], k % (c.n - c.m));
  }
  const auto scores =
      affine_bpbc_max_scores(xs, ys, c.params, LaneWidth::k32);
  for (std::size_t k = 0; k < c.count; ++k) {
    EXPECT_EQ(scores[k], affine_max_score(xs[k], ys[k], c.params))
        << "instance " << k;
  }
}

TEST_P(AffineBpbcVsScalar, Lane64) {
  const AffineCase c = GetParam();
  util::Xoshiro256 rng(c.seed + 100);
  const auto xs = encoding::random_sequences(rng, c.count, c.m);
  const auto ys = encoding::random_sequences(rng, c.count, c.n);
  const auto scores =
      affine_bpbc_max_scores(xs, ys, c.params, LaneWidth::k64);
  for (std::size_t k = 0; k < c.count; ++k) {
    EXPECT_EQ(scores[k], affine_max_score(xs[k], ys[k], c.params))
        << "instance " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AffineBpbcVsScalar,
    ::testing::Values(AffineCase{32, 8, 24, {2, 1, 3, 1}, 1},
                      AffineCase{40, 10, 30, {2, 1, 2, 1}, 2},
                      AffineCase{16, 12, 36, {3, 2, 4, 1}, 3},
                      AffineCase{16, 6, 20, {2, 1, 1, 1}, 4},
                      AffineCase{7, 9, 18, {2, 1, 5, 2}, 5}));

TEST(AffineBpbc, AgreesWithLinearPathWhenDegenerate) {
  util::Xoshiro256 rng(9);
  const auto xs = encoding::random_sequences(rng, 32, 9);
  const auto ys = encoding::random_sequences(rng, 32, 30);
  const AffineParams affine{2, 1, 1, 1};
  const ScoreParams linear{2, 1, 1};
  EXPECT_EQ(affine_bpbc_max_scores(xs, ys, affine),
            bpbc_max_scores(xs, ys, linear));
}

TEST(AffineBpbc, SliceSizing) {
  EXPECT_GE(affine_required_slices({2, 1, 3, 1}, 128, 1024), 9u);
  // The open cost must be representable even if the score range is tiny.
  EXPECT_GE(affine_required_slices({1, 1, 7, 7}, 1, 2), 3u);
}

}  // namespace
}  // namespace swbpbc::sw
