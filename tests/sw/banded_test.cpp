#include <gtest/gtest.h>

#include "encoding/random.hpp"
#include "sw/banded.hpp"
#include "sw/scalar.hpp"

namespace swbpbc::sw {
namespace {

TEST(BandedScalar, FullBandEqualsUnrestricted) {
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto x = encoding::random_sequence(rng, 6 + rng.below(10));
    const auto y = encoding::random_sequence(rng, 10 + rng.below(30));
    const ScoreParams params{2, 1, 1};
    const std::size_t wide = x.size() + y.size();
    EXPECT_EQ(banded_max_score(x, y, params, wide),
              max_score(x, y, params))
        << "trial " << trial;
  }
}

TEST(BandedScalar, MonotoneInBandWidth) {
  util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto x = encoding::random_sequence(rng, 12);
    const auto y = encoding::random_sequence(rng, 40);
    const ScoreParams params{2, 1, 1};
    std::uint32_t prev = 0;
    for (std::size_t band = 0; band <= 52; band += 4) {
      const std::uint32_t score = banded_max_score(x, y, params, band);
      EXPECT_GE(score, prev) << "trial " << trial << " band " << band;
      prev = score;
    }
    EXPECT_EQ(prev, max_score(x, y, params));
  }
}

TEST(BandedScalar, DiagonalMotifFoundWithNarrowBand) {
  // A motif planted right on the diagonal needs no band slack at all.
  util::Xoshiro256 rng(3);
  const auto x = encoding::random_sequence(rng, 16);
  auto y = encoding::random_sequence(rng, 16);
  y = x;  // identical: pure diagonal alignment
  EXPECT_EQ(banded_max_score(x, y, {2, 1, 1}, 0), 32u);
}

TEST(BandedScalar, OffDiagonalMotifNeedsWiderBand) {
  util::Xoshiro256 rng(4);
  const auto x = encoding::random_sequence(rng, 12);
  auto y = encoding::random_sequence(rng, 60);
  encoding::plant_motif(y, x, 40);  // 40 columns off the diagonal
  const ScoreParams params{2, 1, 1};
  EXPECT_LT(banded_max_score(x, y, params, 4), 24u);
  EXPECT_EQ(banded_max_score(x, y, params, 52), 24u);
}

struct BandedCase {
  std::size_t count, m, n, band;
  std::uint64_t seed;
};

class BandedBpbcVsScalar : public ::testing::TestWithParam<BandedCase> {};

TEST_P(BandedBpbcVsScalar, Lane32) {
  const BandedCase c = GetParam();
  util::Xoshiro256 rng(c.seed);
  auto xs = encoding::random_sequences(rng, c.count, c.m);
  auto ys = encoding::random_sequences(rng, c.count, c.n);
  for (std::size_t k = 0; k < c.count; k += 3) {
    encoding::plant_motif(ys[k], xs[k], k % (c.n - c.m + 1));
  }
  const ScoreParams params{2, 1, 1};
  const auto scores =
      banded_bpbc_max_scores(xs, ys, params, c.band, LaneWidth::k32);
  for (std::size_t k = 0; k < c.count; ++k) {
    EXPECT_EQ(scores[k], banded_max_score(xs[k], ys[k], params, c.band))
        << "instance " << k;
  }
}

TEST_P(BandedBpbcVsScalar, Lane64) {
  const BandedCase c = GetParam();
  util::Xoshiro256 rng(c.seed + 50);
  const auto xs = encoding::random_sequences(rng, c.count, c.m);
  const auto ys = encoding::random_sequences(rng, c.count, c.n);
  const ScoreParams params{2, 1, 1};
  const auto scores =
      banded_bpbc_max_scores(xs, ys, params, c.band, LaneWidth::k64);
  for (std::size_t k = 0; k < c.count; ++k) {
    EXPECT_EQ(scores[k], banded_max_score(xs[k], ys[k], params, c.band))
        << "instance " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BandedBpbcVsScalar,
    ::testing::Values(BandedCase{32, 8, 24, 0, 1},
                      BandedCase{32, 8, 24, 3, 2},
                      BandedCase{40, 10, 30, 8, 3},
                      BandedCase{16, 12, 12, 2, 4},
                      BandedCase{7, 9, 40, 16, 5},
                      BandedCase{16, 6, 20, 30, 6}));  // band > n

TEST(BandedBpbc, WideBandEqualsFullBpbc) {
  util::Xoshiro256 rng(9);
  const auto xs = encoding::random_sequences(rng, 48, 9);
  const auto ys = encoding::random_sequences(rng, 48, 30);
  const ScoreParams params{2, 1, 1};
  EXPECT_EQ(banded_bpbc_max_scores(xs, ys, params, 64),
            bpbc_max_scores(xs, ys, params));
}

}  // namespace
}  // namespace swbpbc::sw
