#include <gtest/gtest.h>

#include <algorithm>

#include "encoding/random.hpp"
#include "sw/scan.hpp"

namespace swbpbc::sw {
namespace {

TEST(Scan, FindsMotifsAcrossWindowBoundaries) {
  util::Xoshiro256 rng(1);
  const std::size_t m = 16;
  const auto query = encoding::random_sequence(rng, m);
  auto text = encoding::random_sequence(rng, 4000);

  ScanConfig config;
  config.params = {2, 1, 1};
  config.window = 256;
  config.threshold = 2 * static_cast<std::uint32_t>(m) - 4;

  // Plant exact copies, including one straddling a window step boundary
  // (step = window - 2m = 224).
  const std::size_t positions[] = {10, 220, 1000, 2239, 3900};
  for (const std::size_t pos : positions) {
    encoding::plant_motif(text, query, pos);
  }

  const ScanReport report = scan_text(query, text, config);
  EXPECT_GT(report.windows, 10u);
  for (const std::size_t pos : positions) {
    const bool covered = std::any_of(
        report.hits.begin(), report.hits.end(), [&](const ScanHit& h) {
          return h.text_begin <= pos && pos + m <= h.text_end;
        });
    EXPECT_TRUE(covered) << "motif at " << pos << " missed";
  }
}

TEST(Scan, BestHitEqualsGlobalScore) {
  // With the default overlap, the best window score equals the global
  // alignment maximum for near-exact hits.
  util::Xoshiro256 rng(2);
  const std::size_t m = 12;
  const auto query = encoding::random_sequence(rng, m);
  auto text = encoding::random_sequence(rng, 1500);
  encoding::plant_motif(text, query, 777);

  ScanConfig config;
  config.params = {2, 1, 1};
  config.window = 200;
  config.threshold = 0;
  const ScanReport report = scan_text(query, text, config);
  std::uint32_t best = 0;
  for (const auto& h : report.hits) best = std::max(best, h.score);
  EXPECT_EQ(best, max_score(query, text, config.params));
}

TEST(Scan, TracebackCoordinatesMapToText) {
  util::Xoshiro256 rng(3);
  const std::size_t m = 14;
  const auto query = encoding::random_sequence(rng, m);
  auto text = encoding::random_sequence(rng, 1200);
  encoding::plant_motif(text, query, 600);

  ScanConfig config;
  config.params = {2, 1, 1};
  config.window = 300;
  config.threshold = 2 * static_cast<std::uint32_t>(m);
  config.traceback = true;
  const ScanReport report = scan_text(query, text, config);
  ASSERT_FALSE(report.hits.empty());
  for (const auto& h : report.hits) {
    ASSERT_LE(h.detail.y_end, text.size());
    // Matched text characters (skipping gaps) must equal the text at the
    // reported coordinates.
    std::size_t tpos = h.detail.y_begin;
    for (std::size_t c = 0; c < h.detail.y_row.size(); ++c) {
      if (h.detail.y_row[c] == '-') continue;
      EXPECT_EQ(encoding::to_char(text[tpos]), h.detail.y_row[c]);
      ++tpos;
    }
    EXPECT_EQ(tpos, h.detail.y_end);
  }
}

TEST(Scan, ShortTextSingleWindow) {
  util::Xoshiro256 rng(4);
  const auto query = encoding::random_sequence(rng, 8);
  const auto text = encoding::random_sequence(rng, 50);
  ScanConfig config;
  config.params = {2, 1, 1};
  config.window = 128;
  config.threshold = 0;
  const ScanReport report = scan_text(query, text, config);
  EXPECT_EQ(report.windows, 1u);
  ASSERT_EQ(report.hits.size(), 1u);
  EXPECT_EQ(report.hits[0].score, max_score(query, text, config.params));
}

TEST(Scan, WindowsCoverTheWholeText) {
  util::Xoshiro256 rng(5);
  const auto query = encoding::random_sequence(rng, 6);
  const auto text = encoding::random_sequence(rng, 999);
  ScanConfig config;
  config.params = {2, 1, 1};
  config.window = 100;
  config.threshold = 0;  // every window reports
  const ScanReport report = scan_text(query, text, config);
  ASSERT_EQ(report.hits.size(), report.windows);
  EXPECT_EQ(report.hits.front().text_begin, 0u);
  EXPECT_EQ(report.hits.back().text_end, text.size());
  for (std::size_t w = 1; w < report.hits.size(); ++w) {
    // Consecutive windows overlap (no gaps).
    EXPECT_LT(report.hits[w].text_begin, report.hits[w - 1].text_end);
  }
}

TEST(Scan, ValidatesArguments) {
  util::Xoshiro256 rng(6);
  const auto text = encoding::random_sequence(rng, 100);
  ScanConfig config;
  config.window = 16;
  config.overlap = 20;  // > window
  EXPECT_THROW(scan_text(encoding::random_sequence(rng, 4), text, config),
               std::invalid_argument);
  ScanConfig empty_query;
  EXPECT_THROW(scan_text({}, text, empty_query), std::invalid_argument);
}

TEST(Scan, EmptyTextReportsNothing) {
  util::Xoshiro256 rng(7);
  const auto query = encoding::random_sequence(rng, 4);
  ScanConfig config;
  config.params = {2, 1, 1};
  const ScanReport report = scan_text(query, {}, config);
  EXPECT_EQ(report.windows, 0u);
  EXPECT_TRUE(report.hits.empty());
}

TEST(Scan, ChunkedScanMatchesUnchunked) {
  util::Xoshiro256 rng(8);
  const auto query = encoding::random_sequence(rng, 6);
  const auto text = encoding::random_sequence(rng, 999);
  ScanConfig config;
  config.params = {2, 1, 1};
  config.window = 100;
  config.threshold = 0;  // every window reports
  const ScanReport full = scan_text(query, text, config);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
    ScanConfig chunked = config;
    chunked.chunk_windows = chunk;
    const ScanReport report = scan_text(query, text, chunked);
    EXPECT_TRUE(report.status.ok());
    EXPECT_EQ(report.windows_scored, full.windows);
    ASSERT_EQ(report.hits.size(), full.hits.size()) << "chunk=" << chunk;
    for (std::size_t h = 0; h < full.hits.size(); ++h) {
      EXPECT_EQ(report.hits[h].text_begin, full.hits[h].text_begin);
      EXPECT_EQ(report.hits[h].text_end, full.hits[h].text_end);
      EXPECT_EQ(report.hits[h].score, full.hits[h].score);
    }
  }
}

TEST(Scan, ExpiredDeadlineReturnsWellFormedPartialScan) {
  util::Xoshiro256 rng(9);
  const auto query = encoding::random_sequence(rng, 6);
  const auto text = encoding::random_sequence(rng, 999);
  ScanConfig config;
  config.params = {2, 1, 1};
  config.window = 100;
  config.chunk_windows = 2;
  config.deadline = util::Deadline::after_ms(0.0);
  const ScanReport report = scan_text(query, text, config);
  EXPECT_EQ(report.status.code(), util::ErrorCode::kDeadlineExceeded);
  EXPECT_GT(report.windows, 0u);
  EXPECT_EQ(report.windows_scored, 0u);
  EXPECT_TRUE(report.hits.empty());
}

TEST(Scan, PreCancelledTokenStopsBeforeScoring) {
  util::Xoshiro256 rng(10);
  const auto query = encoding::random_sequence(rng, 6);
  const auto text = encoding::random_sequence(rng, 500);
  util::CancellationToken token;
  token.cancel();
  ScanConfig config;
  config.params = {2, 1, 1};
  config.window = 100;
  config.chunk_windows = 1;
  config.cancel = &token;
  const ScanReport report = scan_text(query, text, config);
  EXPECT_EQ(report.status.code(), util::ErrorCode::kCancelled);
  EXPECT_EQ(report.windows_scored, 0u);
}

}  // namespace
}  // namespace swbpbc::sw
