// Generic epsilon-bit alphabet support: alphabets, plane batches, and the
// protein-alphabet BPBC aligner against the scalar reference.
#include <gtest/gtest.h>

#include "encoding/alphabet.hpp"
#include "encoding/generic_batch.hpp"
#include "encoding/random.hpp"
#include "sw/generic.hpp"
#include "sw/scalar.hpp"
#include "util/rng.hpp"

namespace swbpbc::sw {
namespace {

using encoding::Alphabet;
using encoding::GenericSequence;

TEST(Alphabet, DnaMatchesPaperCodes) {
  const Alphabet& dna = encoding::dna_alphabet();
  EXPECT_EQ(dna.bits(), 2u);
  EXPECT_EQ(dna.code('A'), 0b00);
  EXPECT_EQ(dna.code('T'), 0b01);
  EXPECT_EQ(dna.code('G'), 0b10);
  EXPECT_EQ(dna.code('C'), 0b11);
}

TEST(Alphabet, ProteinUsesFiveBits) {
  const Alphabet& prot = encoding::protein_alphabet();
  EXPECT_EQ(prot.size(), 20u);
  EXPECT_EQ(prot.bits(), 5u);
  EXPECT_EQ(prot.decode(prot.encode("KWVTFISLL")), "KWVTFISLL");
}

TEST(Alphabet, RejectsBadConstruction) {
  EXPECT_THROW(Alphabet(""), std::invalid_argument);
  EXPECT_THROW(Alphabet("AAB"), std::invalid_argument);
}

TEST(Alphabet, RejectsUnknownSymbolsAndCodes) {
  const Alphabet abc("abc");
  EXPECT_EQ(abc.bits(), 2u);
  EXPECT_THROW((void)abc.code('z'), std::invalid_argument);
  EXPECT_THROW((void)abc.symbol(3), std::out_of_range);
}

GenericSequence random_generic(util::Xoshiro256& rng, std::size_t len,
                               std::size_t alphabet_size) {
  GenericSequence s(len);
  for (auto& c : s)
    c = static_cast<std::uint8_t>(rng.below(alphabet_size));
  return s;
}

TEST(GenericBatch, RoundTripAllWidths) {
  util::Xoshiro256 rng(11);
  for (unsigned bits : {1u, 2u, 3u, 5u, 8u}) {
    const std::size_t size = std::size_t{1} << bits;
    std::vector<GenericSequence> seqs;
    for (int k = 0; k < 40; ++k)
      seqs.push_back(random_generic(rng, 13, size));
    const auto planned = encoding::transpose_generic<std::uint32_t>(
        seqs, bits, encoding::TransposeMethod::kPlanned);
    const auto naive = encoding::transpose_generic<std::uint32_t>(
        seqs, bits, encoding::TransposeMethod::kNaive);
    ASSERT_EQ(planned.groups.size(), naive.groups.size());
    for (std::size_t g = 0; g < planned.groups.size(); ++g) {
      EXPECT_EQ(planned.groups[g].slices, naive.groups[g].slices)
          << "bits=" << bits << " group=" << g;
    }
    for (std::size_t k = 0; k < seqs.size(); ++k) {
      const auto& group = planned.groups[k / 32];
      for (std::size_t i = 0; i < 13; ++i) {
        ASSERT_EQ(encoding::read_code(group, k % 32, i), seqs[k][i])
            << "bits=" << bits << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(GenericBatch, ValidatesInput) {
  std::vector<GenericSequence> bad = {{0, 1}, {0}};
  EXPECT_THROW(encoding::transpose_generic<std::uint32_t>(bad, 2),
               std::invalid_argument);
  std::vector<GenericSequence> out_of_range = {{7}};
  EXPECT_THROW(encoding::transpose_generic<std::uint32_t>(out_of_range, 2),
               std::invalid_argument);
  std::vector<GenericSequence> ok = {{0, 1, 2}};
  EXPECT_THROW(encoding::transpose_generic<std::uint32_t>(ok, 0),
               std::invalid_argument);
}

template <bitsim::LaneWord W>
void check_generic_vs_scalar(std::size_t count, std::size_t m,
                             std::size_t n, std::size_t alphabet_size,
                             unsigned bits, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<GenericSequence> xs, ys;
  for (std::size_t k = 0; k < count; ++k) {
    xs.push_back(random_generic(rng, m, alphabet_size));
    ys.push_back(random_generic(rng, n, alphabet_size));
  }
  // Plant a homolog so high scores exist.
  for (std::size_t k = 0; k < count; k += 5) {
    std::copy(xs[k].begin(), xs[k].end(),
              ys[k].begin() + static_cast<std::ptrdiff_t>(k % (n - m)));
  }
  const ScoreParams params{2, 1, 1};
  const auto scores =
      generic_bpbc_max_scores<W>(xs, ys, bits, params);
  ASSERT_EQ(scores.size(), count);
  for (std::size_t k = 0; k < count; ++k) {
    EXPECT_EQ(scores[k], generic_max_score(xs[k], ys[k], params))
        << "instance " << k;
  }
}

TEST(GenericBpbc, ProteinAlphabetMatchesScalar32) {
  check_generic_vs_scalar<std::uint32_t>(40, 10, 40, 20, 5, 101);
}

TEST(GenericBpbc, ProteinAlphabetMatchesScalar64) {
  check_generic_vs_scalar<std::uint64_t>(70, 8, 30, 20, 5, 102);
}

TEST(GenericBpbc, BinaryAlphabet) {
  check_generic_vs_scalar<std::uint32_t>(33, 6, 20, 2, 1, 103);
}

TEST(GenericBpbc, FullByteAlphabet) {
  check_generic_vs_scalar<std::uint32_t>(32, 5, 18, 256, 8, 104);
}

TEST(GenericBpbc, DnaViaGenericPathMatchesSpecializedPath) {
  // The generic epsilon = 2 path and the dedicated DNA path must agree.
  util::Xoshiro256 rng(105);
  std::vector<encoding::Sequence> dna_xs, dna_ys;
  std::vector<GenericSequence> gen_xs, gen_ys;
  for (int k = 0; k < 32; ++k) {
    dna_xs.push_back(encoding::random_sequence(rng, 9));
    dna_ys.push_back(encoding::random_sequence(rng, 27));
    GenericSequence gx, gy;
    for (auto b : dna_xs.back()) gx.push_back(encoding::code(b));
    for (auto b : dna_ys.back()) gy.push_back(encoding::code(b));
    gen_xs.push_back(std::move(gx));
    gen_ys.push_back(std::move(gy));
  }
  const ScoreParams params{2, 1, 1};
  const auto generic =
      generic_bpbc_max_scores<std::uint32_t>(gen_xs, gen_ys, 2, params);
  for (std::size_t k = 0; k < 32; ++k) {
    EXPECT_EQ(generic[k], max_score(dna_xs[k], dna_ys[k], params));
  }
}

TEST(GenericBpbc, ValidatesShapes) {
  const GenericBpbcAligner<std::uint32_t> aligner({2, 1, 1}, 5, 10);
  EXPECT_EQ(aligner.slices(), 4u);
  util::Xoshiro256 rng(106);
  std::vector<GenericSequence> xs{random_generic(rng, 6, 20)};  // wrong m
  std::vector<GenericSequence> ys{random_generic(rng, 10, 20)};
  const auto bx = encoding::transpose_generic<std::uint32_t>(xs, 5);
  const auto by = encoding::transpose_generic<std::uint32_t>(ys, 5);
  std::vector<std::uint32_t> slices(aligner.slices());
  EXPECT_THROW(aligner.max_score_slices(bx.groups[0], by.groups[0],
                                        std::span<std::uint32_t>(slices)),
               std::invalid_argument);
}

}  // namespace
}  // namespace swbpbc::sw
