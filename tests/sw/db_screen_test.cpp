// Screening from the pre-transposed database store: bit-identity with the
// in-memory path at every lane width, quarantine + re-ingest of corrupted
// shards (mapping-injected and on-disk rot) with ReliabilityReport
// accounting, in-memory fallback for jobs the store cannot serve, and the
// typed rejection of stale or mismatched databases.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "db/builder.hpp"
#include "db/fault.hpp"
#include "db/reader.hpp"
#include "encoding/random.hpp"
#include "sw/db_backend.hpp"
#include "sw/pipeline.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {
namespace {

using encoding::Sequence;

constexpr ScoreParams kParams{2, 1, 1};

struct Fixture {
  std::vector<Sequence> xs;
  std::vector<Sequence> ys;
  std::string db_path;
};

Fixture make_fixture(const std::string& name, std::size_t count,
                     std::size_t m, std::size_t n, std::uint64_t seed = 21) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.xs = encoding::random_sequences(rng, count, m);
  f.ys = encoding::random_sequences(rng, count, n);
  f.db_path = testing::TempDir() + "swbpbc_dbscreen_" + name;
  EXPECT_TRUE(db::build_database(f.ys, f.db_path).ok());
  return f;
}

ScreenConfig base_config(LaneWidth width = LaneWidth::k64) {
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 8;
  cfg.width = width;
  return cfg;
}

TEST(DbScreen, MatchesInMemoryAtEveryLaneWidth) {
  const Fixture f = make_fixture("widths.swdb", 190, 12, 48);
  for (LaneWidth width :
       {LaneWidth::k32, LaneWidth::k64, LaneWidth::k128, LaneWidth::k256,
        LaneWidth::k512, LaneWidth::kScalarWide}) {
    ScreenConfig plain = base_config(width);
    const ScreenReport expect = screen(f.xs, f.ys, plain);

    auto reader = db::Reader::open(f.db_path);
    ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
    ScreenConfig cfg = base_config(width);
    cfg.database = &*reader;
    const ScreenReport got = screen(f.xs, f.ys, cfg);

    EXPECT_EQ(got.scores, expect.scores)
        << "width=" << lane_width_name(width);
    EXPECT_EQ(got.hits.size(), expect.hits.size());
    EXPECT_EQ(got.reliability.db_shards_quarantined, 0u);
    EXPECT_EQ(got.reliability.db_pairs_fallback, 0u);
    EXPECT_GT(got.reliability.db_shards_served, 0u);
  }
  std::remove(f.db_path.c_str());
}

TEST(DbScreen, ChunkedServingMatchesWholeBatch) {
  const Fixture f = make_fixture("chunked.swdb", 256, 10, 40);
  const ScreenReport expect = screen(f.xs, f.ys, base_config());

  auto reader = db::Reader::open(f.db_path);
  ASSERT_TRUE(reader.has_value());
  ScreenConfig cfg = base_config();
  cfg.database = &*reader;
  cfg.chunk_pairs = 64;  // shard-aligned: every chunk served zero-copy
  const ScreenReport got = screen(f.xs, f.ys, cfg);
  EXPECT_EQ(got.scores, expect.scores);
  EXPECT_EQ(got.reliability.db_shards_served, 4u);
  EXPECT_EQ(got.reliability.db_pairs_fallback, 0u);
  std::remove(f.db_path.c_str());
}

TEST(DbScreen, MisalignedChunksFallBackInMemoryBitIdentically) {
  const Fixture f = make_fixture("misaligned.swdb", 130, 10, 40);
  const ScreenReport expect = screen(f.xs, f.ys, base_config());

  auto reader = db::Reader::open(f.db_path);
  ASSERT_TRUE(reader.has_value());
  ScreenConfig cfg = base_config();
  cfg.database = &*reader;
  cfg.chunk_pairs = 50;  // not a multiple of 64: store cannot serve these
  const ScreenReport got = screen(f.xs, f.ys, cfg);
  EXPECT_EQ(got.scores, expect.scores);
  EXPECT_GT(got.reliability.db_pairs_fallback, 0u);
  std::remove(f.db_path.c_str());
}

TEST(DbScreen, OnDiskRotQuarantinesOneShardScoresUnchanged) {
  const Fixture f = make_fixture("rot.swdb", 256, 12, 48);
  const ScreenReport expect = screen(f.xs, f.ys, base_config());
  ASSERT_TRUE(db::corrupt_shard_for_testing(f.db_path, 2, 9, 4).ok());

  auto reader = db::Reader::open(f.db_path);
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
  ScreenConfig cfg = base_config();
  cfg.database = &*reader;
  const ScreenReport got = screen(f.xs, f.ys, cfg);

  EXPECT_EQ(got.scores, expect.scores);
  EXPECT_EQ(got.reliability.db_shards_quarantined, 1u);
  EXPECT_EQ(got.reliability.db_pairs_reingested, 64u);
  EXPECT_EQ(got.reliability.db_shards_served, 3u);
  EXPECT_TRUE(reader->shard_quarantined(2));
  std::remove(f.db_path.c_str());
}

TEST(DbScreen, InjectedFaultDrillQuarantinesOnlyTargetShard) {
  const Fixture f = make_fixture("drill.swdb", 320, 12, 48);
  const ScreenReport expect = screen(f.xs, f.ys, base_config());

  db::FaultConfig fc;
  fc.seed = 42;
  fc.shard_flip_probability = 1.0;
  fc.target_shard = 3;
  db::FaultInjector injector(fc);
  auto reader = db::Reader::open(f.db_path, {.fault = &injector});
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();

  ScreenConfig cfg = base_config(LaneWidth::k256);  // wide gather path
  cfg.database = &*reader;
  cfg.chunk_pairs = 128;
  const ScreenReport got = screen(f.xs, f.ys, cfg);

  EXPECT_EQ(got.scores, expect.scores);
  EXPECT_EQ(got.reliability.db_shards_quarantined, 1u);
  EXPECT_EQ(got.reliability.db_pairs_reingested, 64u);
  EXPECT_EQ(got.reliability.db_shards_served, 4u);
  std::remove(f.db_path.c_str());
}

TEST(DbScreen, ReingestCountsDistinctShardsAcrossRepeatTouches) {
  // The quarantined shard is touched once per screen; two screens through
  // one reader must not double-count its pairs beyond each run's serve.
  const Fixture f = make_fixture("repeat.swdb", 128, 10, 32);
  ASSERT_TRUE(db::corrupt_shard_for_testing(f.db_path, 0, 3, 1).ok());
  auto reader = db::Reader::open(f.db_path);
  ASSERT_TRUE(reader.has_value());

  DbBackendOptions opts;
  opts.params = kParams;
  const auto backend = make_db_backend(*reader, opts);
  ChunkJob job;
  job.xs = f.xs;
  job.ys = f.ys;
  job.first_pair = 0;
  const ChunkResult r1 = backend->run(job);
  const ChunkResult r2 = backend->run(job);
  EXPECT_EQ(r1.db_shards_quarantined, 1u);
  EXPECT_EQ(r1.db_pairs_reingested, 64u);
  // Second run serves the cached re-ingest: no new quarantine counted.
  EXPECT_EQ(r2.db_shards_quarantined, 0u);
  EXPECT_EQ(r2.db_pairs_reingested, 0u);
  EXPECT_EQ(r1.scores, r2.scores);
  std::remove(f.db_path.c_str());
}

TEST(DbScreen, UnknownFirstPairFallsBackInMemory) {
  const Fixture f = make_fixture("unknown.swdb", 64, 10, 32);
  auto reader = db::Reader::open(f.db_path);
  ASSERT_TRUE(reader.has_value());
  DbBackendOptions opts;
  opts.params = kParams;
  const auto backend = make_db_backend(*reader, opts);
  ChunkJob job;
  job.xs = f.xs;
  job.ys = f.ys;  // first_pair left at kUnknownPair (rescore path)
  const ChunkResult r = backend->run(job);
  EXPECT_EQ(r.db_pairs_fallback, 64u);
  EXPECT_EQ(r.db_shards_served, 0u);
  ASSERT_EQ(r.scores.size(), 64u);
  std::remove(f.db_path.c_str());
}

TEST(DbScreen, SelfCheckQuarantineRetryStaysBitIdentical) {
  // The reliability self-check rescoring path submits jobs without pair
  // provenance; the db backend must serve them via fallback, keeping the
  // verified scores identical to the scalar reference.
  const Fixture f = make_fixture("selfcheck.swdb", 128, 10, 32);
  auto reader = db::Reader::open(f.db_path);
  ASSERT_TRUE(reader.has_value());
  ScreenConfig cfg = base_config();
  cfg.database = &*reader;
  cfg.check.enabled = true;
  cfg.check.sample_every = 7;
  const ScreenReport got = screen(f.xs, f.ys, cfg);
  EXPECT_TRUE(got.status.ok());
  EXPECT_EQ(got.reliability.mismatches_detected, 0u);
  const ScreenReport expect = screen(f.xs, f.ys, base_config());
  EXPECT_EQ(got.scores, expect.scores);
  std::remove(f.db_path.c_str());
}

TEST(DbScreen, ShapeMismatchIsTypedRejection) {
  const Fixture f = make_fixture("shape.swdb", 128, 10, 32);
  auto reader = db::Reader::open(f.db_path);
  ASSERT_TRUE(reader.has_value());
  ScreenConfig cfg = base_config();
  cfg.database = &*reader;

  // Fewer pairs than the store holds: rejected before any scoring.
  const auto fewer = try_screen(
      std::span<const Sequence>(f.xs).subspan(0, 100),
      std::span<const Sequence>(f.ys).subspan(0, 100), cfg);
  ASSERT_FALSE(fewer.has_value());
  EXPECT_EQ(fewer.status().code(), util::ErrorCode::kDbMismatch);
  std::remove(f.db_path.c_str());
}

TEST(DbScreen, StaleContentIsTypedRejection) {
  Fixture f = make_fixture("stale.swdb", 128, 10, 32);
  auto reader = db::Reader::open(f.db_path);
  ASSERT_TRUE(reader.has_value());

  // Same shape, different residues: only the content fingerprint can tell
  // — and it must, or the store would score the wrong sequences.
  f.ys[17][3] = static_cast<encoding::Base>(
      (static_cast<int>(f.ys[17][3]) + 1) % 4);
  ScreenConfig cfg = base_config();
  cfg.database = &*reader;
  const auto stale = try_screen(f.xs, f.ys, cfg);
  ASSERT_FALSE(stale.has_value());
  EXPECT_EQ(stale.status().code(), util::ErrorCode::kDbMismatch);
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos);

  // Verification is opt-out for callers that track freshness themselves.
  cfg.db_verify_content = false;
  const auto unchecked = try_screen(f.xs, f.ys, cfg);
  EXPECT_TRUE(unchecked.has_value()) << unchecked.status().to_string();
  std::remove(f.db_path.c_str());
}

TEST(DbScreen, ExplicitBackendOutranksDatabase) {
  const Fixture f = make_fixture("outrank.swdb", 64, 10, 32);
  auto reader = db::Reader::open(f.db_path);
  ASSERT_TRUE(reader.has_value());
  ScreenConfig cfg = base_config();
  cfg.database = &*reader;
  std::size_t backend_calls = 0;
  cfg.backend = [&backend_calls](std::span<const Sequence> xs,
                                 std::span<const Sequence> ys) {
    ++backend_calls;
    std::vector<std::uint32_t> scores(xs.size(), 0);
    (void)ys;
    return scores;
  };
  const ScreenReport got = screen(f.xs, f.ys, cfg);
  EXPECT_GT(backend_calls, 0u);
  EXPECT_EQ(got.reliability.db_shards_served, 0u);
  std::remove(f.db_path.c_str());
}

}  // namespace
}  // namespace swbpbc::sw
