#include <gtest/gtest.h>

#include "encoding/dna.hpp"
#include "encoding/random.hpp"
#include "sw/params.hpp"
#include "sw/scalar.hpp"
#include "sw/wordwise.hpp"

namespace swbpbc::sw {
namespace {

using encoding::sequence_from_string;

TEST(ScalarSw, PaperTable2GoldenMatrix) {
  // Paper §III, Table II: X = TACTG, Y = GAACTGA, c1 = 2, c2 = 1, gap = 1.
  const auto x = sequence_from_string("TACTG");
  const auto y = sequence_from_string("GAACTGA");
  const ScoreParams params{2, 1, 1};
  const ScoreMatrix d = score_matrix(x, y, params);

  const std::uint32_t expect[5][7] = {
      {0, 0, 0, 0, 2, 1, 0},  // row T
      {0, 2, 2, 1, 1, 1, 3},  // row A
      {0, 1, 1, 4, 3, 2, 2},  // row C
      {0, 0, 0, 3, 6, 5, 4},  // row T
      {2, 1, 0, 2, 5, 8, 7},  // row G
  };
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_EQ(d.at(i + 1, j + 1), expect[i][j])
          << "cell (" << i << "," << j << ")";
    }
  }
}

TEST(ScalarSw, PaperTable2MaxScore) {
  const auto x = sequence_from_string("TACTG");
  const auto y = sequence_from_string("GAACTGA");
  const ScoreParams params{2, 1, 1};
  EXPECT_EQ(max_score(x, y, params), 8u);
}

TEST(ScalarSw, BoundaryRowsAndColumnsAreZero) {
  const auto x = sequence_from_string("ACGT");
  const auto y = sequence_from_string("TGCA");
  const ScoreMatrix d = score_matrix(x, y, {2, 1, 1});
  for (std::size_t j = 0; j <= 4; ++j) EXPECT_EQ(d.at(0, j), 0u);
  for (std::size_t i = 0; i <= 4; ++i) EXPECT_EQ(d.at(i, 0), 0u);
}

TEST(ScalarSw, EmptyInputsScoreZero) {
  const auto x = sequence_from_string("ACGT");
  const encoding::Sequence empty;
  EXPECT_EQ(max_score(empty, x, {2, 1, 1}), 0u);
  EXPECT_EQ(max_score(x, empty, {2, 1, 1}), 0u);
}

TEST(ScalarSw, PerfectMatchScoresMatchTimesLength) {
  const auto x = sequence_from_string("ACGTACGT");
  EXPECT_EQ(max_score(x, x, {2, 1, 1}), 16u);
  EXPECT_EQ(max_score(x, x, {3, 1, 1}), 24u);
}

TEST(ScalarSw, AllMismatchScoresZero) {
  const auto x = sequence_from_string("AAAA");
  const auto y = sequence_from_string("CCCC");
  EXPECT_EQ(max_score(x, y, {2, 1, 1}), 0u);
}

TEST(ScalarSw, MaxScoreAgreesWithFullMatrix) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto x = encoding::random_sequence(rng, 12);
    const auto y = encoding::random_sequence(rng, 30);
    const ScoreParams params{2, 1, 1};
    const ScoreMatrix d = score_matrix(x, y, params);
    std::uint32_t best = 0;
    for (std::size_t i = 1; i <= 12; ++i)
      for (std::size_t j = 1; j <= 30; ++j)
        best = std::max(best, d.at(i, j));
    EXPECT_EQ(max_score(x, y, params), best);
  }
}

TEST(ScalarSw, WordwiseSaturatingEqualsSignedClamp) {
  // The BPBC value semantics (saturating unsigned) must equal the paper's
  // signed max-with-zero recurrence.
  util::Xoshiro256 rng(6);
  for (int trial = 0; trial < 25; ++trial) {
    const auto x = encoding::random_sequence(rng, 8 + rng.below(20));
    const auto y = encoding::random_sequence(rng, 16 + rng.below(60));
    const ScoreParams params{
        static_cast<std::uint32_t>(1 + rng.below(3)),
        static_cast<std::uint32_t>(1 + rng.below(3)),
        static_cast<std::uint32_t>(1 + rng.below(3))};
    EXPECT_EQ(wordwise_max_score(x, y, params), max_score(x, y, params))
        << "trial " << trial;
  }
}

TEST(ScalarSw, AlignTracebackPaperExample) {
  const auto x = sequence_from_string("TACTG");
  const auto y = sequence_from_string("GAACTGA");
  const Alignment a = align(x, y, {2, 1, 1});
  EXPECT_EQ(a.score, 8u);
  // The boldfaced alignment in Table II: x[1..4] = ACTG vs y[2..5] = ACTG.
  EXPECT_EQ(a.x_row, "ACTG");
  EXPECT_EQ(a.y_row, "ACTG");
  EXPECT_EQ(a.mid_row, "||||");
  EXPECT_EQ(a.x_begin, 1u);
  EXPECT_EQ(a.x_end, 5u);
  EXPECT_EQ(a.y_begin, 2u);
  EXPECT_EQ(a.y_end, 6u);
}

TEST(ScalarSw, AlignWithGap) {
  // x = ACGGT vs y = ACGT: best local alignment needs one gap.
  const auto x = sequence_from_string("ACGGT");
  const auto y = sequence_from_string("ACGT");
  const Alignment a = align(x, y, {2, 1, 1});
  EXPECT_EQ(a.score, 7u);  // 4 matches * 2 - 1 gap
  EXPECT_NE(a.y_row.find('-'), std::string::npos);
  EXPECT_EQ(a.x_row.size(), a.y_row.size());
  EXPECT_EQ(a.x_row.size(), a.mid_row.size());
}

TEST(ScalarSw, AlignEmptyReturnsZero) {
  const encoding::Sequence empty;
  const auto y = sequence_from_string("ACGT");
  const Alignment a = align(empty, y, {2, 1, 1});
  EXPECT_EQ(a.score, 0u);
  EXPECT_TRUE(a.x_row.empty());
}

TEST(ScalarSw, AlignmentScoreConsistentWithRows) {
  // Recomputing the score from the alignment rows must give a.score.
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const auto x = encoding::random_sequence(rng, 16);
    const auto y = encoding::random_sequence(rng, 48);
    const ScoreParams params{2, 1, 1};
    const Alignment a = align(x, y, params);
    std::int64_t score = 0;
    for (std::size_t i = 0; i < a.x_row.size(); ++i) {
      if (a.x_row[i] == '-' || a.y_row[i] == '-') {
        score -= params.gap;
      } else if (a.x_row[i] == a.y_row[i]) {
        score += params.match;
      } else {
        score -= params.mismatch;
      }
    }
    EXPECT_EQ(score, static_cast<std::int64_t>(a.score)) << "trial "
                                                         << trial;
  }
}

TEST(Params, RequiredSlicesBounds) {
  // m = 128, c1 = 2 -> max score 256 -> 9 bits (the paper's ceil(log2)
  // formula would say 8; see DESIGN.md).
  EXPECT_EQ(required_slices({2, 1, 1}, 128, 1024), 9u);
  EXPECT_EQ(required_slices({2, 1, 1}, 5, 7), 4u);    // max 10 -> 4 bits
  EXPECT_EQ(required_slices({1, 1, 1}, 3, 100), 2u);  // max 3 -> 2 bits
  // Constants must fit even when the score range is tiny.
  EXPECT_GE(required_slices({1, 7, 1}, 1, 1), 3u);
}

TEST(Params, RequiredSlicesRejectsHugeRange) {
  EXPECT_THROW(required_slices({1u << 30, 1, 1}, 1u << 10, 1u << 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace swbpbc::sw
