// sw/config.hpp — the v2 decomposed configs and their validating
// builders: flatten() field mapping, every cross-field rejection rule
// (typed kInvalidInput, never an exception), and the try_scan_text
// boundary the ScanSpec feeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "device/engine.hpp"
#include "encoding/random.hpp"
#include "sw/backend.hpp"
#include "sw/config.hpp"
#include "sw/scoring.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {
namespace {

using encoding::Sequence;

constexpr ScoreParams kParams{2, 1, 1};

void expect_invalid(const util::Expected<ScreenConfig>& built,
                    const std::string& needle) {
  ASSERT_FALSE(built.has_value()) << "expected rejection: " << needle;
  EXPECT_EQ(built.status().code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(built.status().message().find(needle), std::string::npos)
      << "message \"" << built.status().message() << "\" should mention \""
      << needle << "\"";
}

TEST(ScreenSpecBuilder, FlattensEverySectionIntoTheV1Config) {
  device::EngineOptions eopts;
  eopts.params = kParams;
  device::PipelineEngine engine(eopts);
  util::CancellationToken cancel;

  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.threshold = 40;
  scoring.width = LaneWidth::k32;
  scoring.mode = bulk::Mode::kParallel;
  scoring.traceback = false;
  scoring.backend_v2 = &engine;
  SurvivalConfig survival;
  survival.chunk_pairs = 256;
  survival.chunk_retry_limit = 5;
  survival.overlap_depth = 3;
  survival.cancel = &cancel;
  survival.checkpoint_path = "ckpt.bin";
  survival.check.enabled = true;
  ObservabilityConfig obs;
  bool called = false;
  obs.progress = [&called](const ChunkProgress&) { called = true; };

  const util::Expected<ScreenConfig> built = ScreenSpecBuilder()
                                                 .scoring(scoring)
                                                 .survival(survival)
                                                 .observability(obs)
                                                 .build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  const ScreenConfig& cfg = *built;
  EXPECT_EQ(cfg.threshold, 40u);
  EXPECT_EQ(cfg.width, LaneWidth::k32);
  EXPECT_EQ(cfg.mode, bulk::Mode::kParallel);
  EXPECT_FALSE(cfg.traceback);
  EXPECT_EQ(cfg.backend_v2, &engine);
  EXPECT_EQ(cfg.chunk_pairs, 256u);
  EXPECT_EQ(cfg.chunk_retry_limit, 5u);
  EXPECT_EQ(cfg.overlap_depth, 3u);
  EXPECT_EQ(cfg.cancel, &cancel);
  EXPECT_EQ(cfg.checkpoint_path, "ckpt.bin");
  EXPECT_TRUE(cfg.check.enabled);
  ASSERT_TRUE(static_cast<bool>(cfg.progress));
  cfg.progress(ChunkProgress{});
  EXPECT_TRUE(called);
}

TEST(ScreenSpecBuilder, DefaultSpecBuilds) {
  ScoringConfig scoring;
  scoring.params = kParams;
  const auto built = ScreenSpecBuilder().scoring(scoring).build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  EXPECT_EQ(built->chunk_pairs, 0u);
  EXPECT_EQ(built->overlap_depth, 1u);
}

TEST(ScreenSpecBuilder, RejectsZeroMatchReward) {
  ScoringConfig scoring;
  scoring.params = ScoreParams{0, 1, 1};
  expect_invalid(ScreenSpecBuilder().scoring(scoring).build(),
                 "params.match");
}

TEST(ScreenSpecBuilder, RejectsZeroGapPenalty) {
  ScoringConfig scoring;
  scoring.params = ScoreParams{2, 1, 0};
  expect_invalid(ScreenSpecBuilder().scoring(scoring).build(), "params.gap");
}

TEST(ScreenSpecBuilder, AcceptsExpressibleAndAffineSchemes) {
  // An expressible scheme outranks params and flattens losslessly.
  ScoringConfig scoring;
  scoring.params = ScoreParams{0, 0, 0};  // ignored once scheme is set
  scoring.scheme = ScoringScheme::from_params(ScoreParams{3, 2, 4});
  auto built = ScreenSpecBuilder().scoring(scoring).build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  ASSERT_TRUE(built->scheme.has_value());
  EXPECT_TRUE(built->scheme->params_expressible());

  // An affine uniform scheme is valid for the screening pipeline.
  ScoringScheme affine;
  affine.gap_model = GapModel::kAffine;
  affine.gap_open = 3;
  affine.gap_extend = 1;
  scoring.scheme = affine;
  built = ScreenSpecBuilder().scoring(scoring).build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  EXPECT_TRUE(built->scheme->affine());
}

TEST(ScreenSpecBuilder, RejectsInvalidSchemeWithFieldName) {
  ScoringConfig scoring;
  ScoringScheme bad;
  bad.gap_model = GapModel::kAffine;
  bad.gap_open = 2;
  bad.gap_extend = 5;  // extending cheaper to open than extend: invalid
  scoring.scheme = bad;
  expect_invalid(ScreenSpecBuilder().scoring(scoring).build(),
                 "scoring.scheme.gap_extend");
}

TEST(ScreenSpecBuilder, RejectsMatrixSchemeWithRedirect) {
  ScoringConfig scoring;
  ScoringScheme protein;
  protein.matrix = blosum62();
  scoring.scheme = protein;
  expect_invalid(ScreenSpecBuilder().scoring(scoring).build(),
                 "try_scheme_max_scores");
}

TEST(ScreenSpecBuilder, RejectsDatabaseWithAffineScheme) {
  // The store serve path in the v1 pipeline drives the linear DNA
  // kernels; affine store screening routes through
  // try_scheme_db_max_scores instead.
  ScoringConfig scoring;
  scoring.params = kParams;
  ScoringScheme affine;
  affine.gap_model = GapModel::kAffine;
  affine.gap_open = 3;
  affine.gap_extend = 1;
  scoring.scheme = affine;
  scoring.database = reinterpret_cast<db::Reader*>(&scoring);
  SurvivalConfig survival;
  survival.chunk_pairs = 64;
  expect_invalid(
      ScreenSpecBuilder().scoring(scoring).survival(survival).build(),
      "try_scheme_db_max_scores");
}

TEST(ScreenSpecBuilder, RejectsResumePathWithoutChunking) {
  SurvivalConfig survival;
  survival.resume_path = "resume.bin";
  expect_invalid(ScreenSpecBuilder().survival(survival).build(),
                 "resume_path");
}

TEST(ScreenSpecBuilder, RejectsCheckpointPathWithoutChunking) {
  SurvivalConfig survival;
  survival.checkpoint_path = "ckpt.bin";
  expect_invalid(ScreenSpecBuilder().survival(survival).build(),
                 "checkpoint_path");
}

TEST(ScreenSpecBuilder, RejectsZeroOverlapDepth) {
  SurvivalConfig survival;
  survival.overlap_depth = 0;
  expect_invalid(ScreenSpecBuilder().survival(survival).build(),
                 "overlap_depth");
}

TEST(ScreenSpecBuilder, RejectsOverlapBeyondTheArenaRing) {
  device::EngineOptions eopts;
  eopts.params = kParams;
  device::PipelineEngine engine(eopts);
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.backend_v2 = &engine;
  SurvivalConfig survival;
  survival.chunk_pairs = 64;
  survival.overlap_depth = 9;
  expect_invalid(
      ScreenSpecBuilder().scoring(scoring).survival(survival).build(),
      "overlap_depth");
}

TEST(ScreenSpecBuilder, RejectsOverlapWithoutChunking) {
  device::EngineOptions eopts;
  eopts.params = kParams;
  device::PipelineEngine engine(eopts);
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.backend_v2 = &engine;
  SurvivalConfig survival;
  survival.overlap_depth = 2;  // chunk_pairs left 0
  expect_invalid(
      ScreenSpecBuilder().scoring(scoring).survival(survival).build(),
      "chunk_pairs");
}

TEST(ScreenSpecBuilder, RejectsOverlapWithoutStreamBackend) {
  SurvivalConfig survival;
  survival.chunk_pairs = 64;
  survival.overlap_depth = 2;
  expect_invalid(ScreenSpecBuilder().survival(survival).build(),
                 "backend_v2");
}

TEST(ScreenSpecBuilder, RejectsDatabaseCombinedWithExplicitBackend) {
  device::EngineOptions eopts;
  eopts.params = kParams;
  device::PipelineEngine engine(eopts);
  // Any non-null Reader* triggers the rule; the pointer is never
  // dereferenced during validation.
  auto* fake_db = reinterpret_cast<db::Reader*>(&eopts);
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.database = fake_db;
  scoring.backend_v2 = &engine;
  expect_invalid(ScreenSpecBuilder().scoring(scoring).build(),
                 "scoring.database");
}

TEST(ScreenSpecBuilder, RejectsDatabaseWithMisalignedChunks) {
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.database = reinterpret_cast<db::Reader*>(&scoring);
  SurvivalConfig survival;
  survival.chunk_pairs = 100;  // not a multiple of the 64-lane shard
  expect_invalid(
      ScreenSpecBuilder().scoring(scoring).survival(survival).build(),
      "multiple of 64");
}

TEST(ScreenSpecBuilder, AcceptsDatabaseWithShardAlignedChunks) {
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.database = reinterpret_cast<db::Reader*>(&scoring);
  SurvivalConfig survival;
  survival.chunk_pairs = 128;
  const auto built =
      ScreenSpecBuilder().scoring(scoring).survival(survival).build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  EXPECT_EQ(built->database, scoring.database);
  EXPECT_TRUE(built->db_verify_content);
}

TEST(ScreenSpecBuilder, RejectsSalvageWithoutResumePath) {
  SurvivalConfig survival;
  survival.chunk_pairs = 64;
  survival.resume_salvage_torn_tail = true;
  expect_invalid(ScreenSpecBuilder().survival(survival).build(),
                 "resume_path");
}

TEST(ScreenSpecBuilder, RejectsNegativeBackoff) {
  SurvivalConfig survival;
  survival.check.enabled = true;
  survival.check.backoff_base_ms = -1.0;
  expect_invalid(ScreenSpecBuilder().survival(survival).build(),
                 "backoff_base_ms");
}

TEST(ScreenSpecBuilder, StaysUsableAfterARejection) {
  SurvivalConfig survival;
  survival.overlap_depth = 0;
  ScreenSpecBuilder builder;
  builder.survival(survival);
  EXPECT_FALSE(builder.build().has_value());
  survival.overlap_depth = 1;
  const auto built = builder.survival(survival).build();
  EXPECT_TRUE(built.has_value()) << built.status().to_string();
}

TEST(ScreenSpecBuilder, BuiltConfigRunsAnOverlappedScreen) {
  util::Xoshiro256 rng(31);
  const std::vector<Sequence> xs = encoding::random_sequences(rng, 48, 8);
  const std::vector<Sequence> ys = encoding::random_sequences(rng, 48, 12);
  device::EngineOptions eopts;
  eopts.params = kParams;
  eopts.width = LaneWidth::k32;
  eopts.overlap_depth = 3;
  device::PipelineEngine engine(eopts);
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.threshold = 12;
  scoring.width = LaneWidth::k32;
  scoring.backend_v2 = &engine;
  SurvivalConfig survival;
  survival.chunk_pairs = 16;
  survival.overlap_depth = 3;
  const auto built =
      ScreenSpecBuilder().scoring(scoring).survival(survival).build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  const util::Expected<ScreenReport> report = try_screen(xs, ys, *built);
  ASSERT_TRUE(report.has_value()) << report.status().to_string();
  EXPECT_TRUE(report->complete());

  ScreenConfig serial;
  serial.params = kParams;
  serial.threshold = 12;
  serial.width = LaneWidth::k32;
  serial.chunk_pairs = 16;
  EXPECT_EQ(report->scores, screen(xs, ys, serial).scores);
}

// --- ScanSpec ------------------------------------------------------------

void expect_scan_invalid(const util::Expected<ScanConfig>& built,
                         const std::string& needle) {
  ASSERT_FALSE(built.has_value()) << "expected rejection: " << needle;
  EXPECT_EQ(built.status().code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(built.status().message().find(needle), std::string::npos)
      << built.status().message();
}

TEST(ScanSpecBuilder, FlattensIntoScanConfig) {
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.threshold = 9;
  scoring.width = LaneWidth::k32;
  scoring.traceback = false;
  ScanWindowConfig windows;
  windows.window = 128;
  windows.overlap = 16;
  windows.chunk_windows = 4;
  const auto built =
      ScanSpecBuilder().scoring(scoring).windows(windows).build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  EXPECT_EQ(built->threshold, 9u);
  EXPECT_EQ(built->window, 128u);
  EXPECT_EQ(built->overlap, 16u);
  EXPECT_EQ(built->chunk_windows, 4u);
  EXPECT_FALSE(built->traceback);
}

TEST(ScanSpecBuilder, RejectsZeroWindow) {
  ScanWindowConfig windows;
  windows.window = 0;
  ScoringConfig scoring;
  scoring.params = kParams;
  expect_scan_invalid(
      ScanSpecBuilder().scoring(scoring).windows(windows).build(),
      "windows.window");
}

TEST(ScanSpecBuilder, RejectsWindowNotExceedingOverlap) {
  ScanWindowConfig windows;
  windows.window = 64;
  windows.overlap = 64;
  ScoringConfig scoring;
  scoring.params = kParams;
  expect_scan_invalid(
      ScanSpecBuilder().scoring(scoring).windows(windows).build(),
      "overlap");
}

TEST(ScanSpecBuilder, RejectsConfiguredBackends) {
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.backend = [](std::span<const Sequence>,
                       std::span<const Sequence>) {
    return std::vector<std::uint32_t>{};
  };
  expect_scan_invalid(ScanSpecBuilder().scoring(scoring).build(),
                      "backend");
}

TEST(ScanSpecBuilder, RejectsAffineScheme) {
  ScoringConfig scoring;
  ScoringScheme affine;
  affine.gap_model = GapModel::kAffine;
  affine.gap_open = 3;
  affine.gap_extend = 1;
  scoring.scheme = affine;
  expect_scan_invalid(ScanSpecBuilder().scoring(scoring).build(),
                      "expressible");
}

TEST(ScanSpecBuilder, ExpressibleSchemeLowersOntoParams) {
  ScoringConfig scoring;
  scoring.params = ScoreParams{0, 0, 0};  // ignored once scheme is set
  scoring.scheme = ScoringScheme::from_params(ScoreParams{3, 2, 4});
  const auto built = ScanSpecBuilder().scoring(scoring).build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  EXPECT_EQ(built->params.match, 3u);
  EXPECT_EQ(built->params.mismatch, 2u);
  EXPECT_EQ(built->params.gap, 4u);
}

// --- backend_choice / backend_name ---------------------------------------

TEST(ScreenSpecBuilder, BackendNameFlattensAndOutranksTheEnum) {
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.backend_choice = BackendChoice::kBpbc;
  scoring.backend_name = "striped";
  const auto built = ScreenSpecBuilder().scoring(scoring).build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  EXPECT_EQ(built->backend_choice, BackendChoice::kStriped);
  // And the enum alone flows through when no name is set.
  scoring.backend_name.clear();
  const auto enum_only = ScreenSpecBuilder().scoring(scoring).build();
  ASSERT_TRUE(enum_only.has_value());
  EXPECT_EQ(enum_only->backend_choice, BackendChoice::kBpbc);
}

TEST(ScreenSpecBuilder, UnknownBackendNameIsATypedError) {
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.backend_name = "farrar";
  expect_invalid(ScreenSpecBuilder().scoring(scoring).build(),
                 "scoring.backend_name");
}

TEST(ScreenSpecBuilder, NaiveBackendRejectsAffineSchemes) {
  ScoringScheme affine;
  affine.gap_model = GapModel::kAffine;
  affine.gap_open = 3;
  affine.gap_extend = 1;
  ScoringConfig scoring;
  scoring.scheme = affine;
  scoring.backend_name = "wordwise-naive";
  expect_invalid(ScreenSpecBuilder().scoring(scoring).build(),
                 "wordwise-naive");
}

TEST(ScreenSpecBuilder, DatabaseRejectsNonBpbcHostEngines) {
  // The store serves the BPBC kernels; an explicit rival host engine is
  // incoherent. A null-pointer check suffices for the rule — no real
  // store needed, validate() runs before any IO.
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.database = reinterpret_cast<db::Reader*>(0x1);
  scoring.backend_name = "striped";
  expect_invalid(ScreenSpecBuilder().scoring(scoring).build(),
                 "scoring.database");
  // auto and bpbc defer to the store and stay accepted.
  scoring.backend_name = "auto";
  EXPECT_TRUE(ScreenSpecBuilder().scoring(scoring).build().has_value());
}

TEST(ScanSpecBuilder, BackendNameFlattensIntoScanConfig) {
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.backend_name = "wordwise-naive";
  const auto built = ScanSpecBuilder().scoring(scoring).build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  EXPECT_EQ(built->backend, BackendChoice::kWordwiseNaive);
}

TEST(ScanSpecBuilder, UnknownBackendNameIsATypedError) {
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.backend_name = "gpu";
  const auto built = ScanSpecBuilder().scoring(scoring).build();
  ASSERT_FALSE(built.has_value());
  EXPECT_EQ(built.status().code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(built.status().message().find("scoring.backend_name"),
            std::string::npos);
}

// --- try_scan_text -------------------------------------------------------

TEST(TryScanText, EmptyQueryIsATypedError) {
  const auto result = try_scan_text({}, Sequence(4, encoding::Base{}), ScanConfig{});
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kInvalidInput);
}

TEST(TryScanText, WindowNotExceedingOverlapIsATypedError) {
  util::Xoshiro256 rng(32);
  const Sequence query = encoding::random_sequences(rng, 1, 8).front();
  const Sequence text = encoding::random_sequences(rng, 1, 256).front();
  ScanConfig cfg;
  cfg.params = kParams;
  cfg.window = 16;  // default overlap = 2 * |query| = 16
  const auto result = try_scan_text(query, text, cfg);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kInvalidInput);
}

TEST(TryScanText, ThrowingWrapperRoutesThroughIt) {
  // scan_text = try_scan_text(...).value(): same typed status, thrown as
  // StatusError (which still is-a std::invalid_argument for v1 callers).
  try {
    scan_text({}, Sequence(4, encoding::Base{}), ScanConfig{});
    FAIL() << "scan_text accepted an empty query";
  } catch (const util::StatusError& e) {
    EXPECT_EQ(e.status().code(), util::ErrorCode::kInvalidInput);
  }
  EXPECT_THROW(scan_text({}, Sequence(4, encoding::Base{}), ScanConfig{}),
               std::invalid_argument);
}

TEST(TryScanText, SpecBuiltScanFindsThePlantedHit) {
  util::Xoshiro256 rng(33);
  const Sequence query = encoding::random_sequences(rng, 1, 8).front();
  Sequence text = encoding::random_sequences(rng, 1, 300).front();
  std::copy(query.begin(), query.end(),
            text.begin() + 150);  // plant an exact match
  ScoringConfig scoring;
  scoring.params = kParams;
  scoring.threshold = 16;  // 8 matches * 2
  scoring.traceback = false;
  ScanWindowConfig windows;
  windows.window = 64;
  windows.overlap = 16;
  const auto built =
      ScanSpecBuilder().scoring(scoring).windows(windows).build();
  ASSERT_TRUE(built.has_value()) << built.status().to_string();
  const auto report = try_scan_text(query, text, *built);
  ASSERT_TRUE(report.has_value()) << report.status().to_string();
  EXPECT_TRUE(report->status.ok());
  bool found = false;
  for (const ScanHit& hit : report->hits)
    if (hit.text_begin <= 150 && 158 <= hit.text_end) found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace swbpbc::sw
