// SWBPBC_FORCE_LANE_WIDTH override parsing: every accepted spelling, the
// no-override cases, and the ISSUE's negative case — an unknown value is
// a typed kInvalidInput naming the variable, never a silent default.
#include <gtest/gtest.h>

#include "sw/lane.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {
namespace {

TEST(ForcedLaneWidth, UnsetAndEmptyMeanNoOverride) {
  const auto unset = parse_forced_lane_width(nullptr);
  ASSERT_TRUE(unset.has_value());
  EXPECT_FALSE(unset->has_value());
  const auto empty = parse_forced_lane_width("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->has_value());
}

TEST(ForcedLaneWidth, AcceptsEverySpelling) {
  const struct {
    const char* value;
    LaneWidth width;
  } cases[] = {
      {"32", LaneWidth::k32},   {"64", LaneWidth::k64},
      {"128", LaneWidth::k128}, {"256", LaneWidth::k256},
      {"512", LaneWidth::k512}, {"scalar-wide", LaneWidth::kScalarWide},
      {"auto", LaneWidth::kAuto},
  };
  for (const auto& c : cases) {
    const auto parsed = parse_forced_lane_width(c.value);
    ASSERT_TRUE(parsed.has_value()) << c.value;
    ASSERT_TRUE(parsed->has_value()) << c.value;
    EXPECT_EQ(**parsed, c.width) << c.value;
  }
}

TEST(ForcedLaneWidth, UnknownValueIsTypedInvalidInput) {
  for (const char* bad : {"96", "64 ", "wide", "AUTO", "0"}) {
    const auto parsed = parse_forced_lane_width(bad);
    ASSERT_FALSE(parsed.has_value()) << bad;
    EXPECT_EQ(parsed.status().code(), util::ErrorCode::kInvalidInput) << bad;
    // The message must name the variable and the value, so the error is
    // actionable when it surfaces from deep inside a screening run.
    EXPECT_NE(parsed.status().message().find("SWBPBC_FORCE_LANE_WIDTH"),
              std::string::npos);
    EXPECT_NE(parsed.status().message().find(bad), std::string::npos);
  }
}

TEST(ForcedLaneWidth, ThrowingAccessorSurfacesTypedError) {
  EXPECT_THROW(parse_forced_lane_width("banana").value(), util::StatusError);
}

}  // namespace
}  // namespace swbpbc::sw
