// Survivable long-run screening: chunked streaming, cooperative
// cancellation/deadlines with well-formed partial reports, in-band stage
// integrity with per-chunk quarantine/retry, and checkpoint/resume
// (including the ISSUE's chunked 100-campaign fault drill).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "device/fault.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/pipeline.hpp"
#include "sw/scalar.hpp"
#include "util/cancel.hpp"
#include "util/checkpoint.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {
namespace {

using encoding::Sequence;

constexpr ScoreParams kParams{2, 1, 1};

struct Batch {
  std::vector<Sequence> xs;
  std::vector<Sequence> ys;
};

Batch make_batch(std::uint64_t seed, std::size_t count, std::size_t m,
                 std::size_t n) {
  util::Xoshiro256 rng(seed);
  return {encoding::random_sequences(rng, count, m),
          encoding::random_sequences(rng, count, n)};
}

std::vector<std::uint32_t> scalar_refs(const Batch& b,
                                       const ScoreParams& params) {
  std::vector<std::uint32_t> refs;
  refs.reserve(b.xs.size());
  for (std::size_t k = 0; k < b.xs.size(); ++k)
    refs.push_back(max_score(b.xs[k], b.ys[k], params));
  return refs;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "swbpbc_screen_" + name;
}

// --- chunked execution is equivalence-preserving -------------------------

TEST(ChunkedScreen, MatchesUnchunkedBitIdentically) {
  const Batch b = make_batch(11, 37, 8, 16);
  ScreenConfig whole;
  whole.params = kParams;
  whole.threshold = 10;
  const ScreenReport full = screen(b.xs, b.ys, whole);

  for (std::size_t chunk : {1u, 5u, 16u, 37u, 64u}) {
    ScreenConfig cfg = whole;
    cfg.chunk_pairs = chunk;
    const ScreenReport chunked = screen(b.xs, b.ys, cfg);
    EXPECT_EQ(chunked.scores, full.scores) << "chunk_pairs=" << chunk;
    ASSERT_EQ(chunked.hits.size(), full.hits.size());
    for (std::size_t h = 0; h < full.hits.size(); ++h) {
      EXPECT_EQ(chunked.hits[h].index, full.hits[h].index);
      EXPECT_EQ(chunked.hits[h].bpbc_score, full.hits[h].bpbc_score);
      EXPECT_EQ(chunked.hits[h].detail.score, full.hits[h].detail.score);
    }
    EXPECT_TRUE(chunked.status.ok());
    EXPECT_TRUE(chunked.complete());
    EXPECT_EQ(chunked.chunks.size(), (37 + chunk - 1) / chunk);
  }
}

TEST(ChunkedScreen, ProgressCallbackSeesEveryChunkInOrder) {
  const Batch b = make_batch(12, 20, 8, 12);
  std::vector<ChunkProgress> seen;
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 8;
  cfg.chunk_pairs = 6;  // 20 pairs -> chunks of 6,6,6,2
  cfg.progress = [&seen](const ChunkProgress& p) { seen.push_back(p); };
  const ScreenReport report = screen(b.xs, b.ys, cfg);

  ASSERT_TRUE(report.complete());
  ASSERT_EQ(seen.size(), 4u);
  for (std::size_t c = 0; c < seen.size(); ++c) {
    EXPECT_EQ(seen[c].chunk, c);
    EXPECT_EQ(seen[c].chunks_total, 4u);
    EXPECT_EQ(seen[c].begin, c * 6);
    EXPECT_FALSE(seen[c].resumed);
  }
  EXPECT_EQ(seen.back().end, 20u);
}

// --- cooperative cancellation and deadlines ------------------------------

TEST(ScreenCancel, CancelFromProgressYieldsWellFormedPartialReport) {
  const Batch b = make_batch(13, 30, 8, 16);
  const std::vector<std::uint32_t> refs = scalar_refs(b, kParams);
  util::CancellationToken token;
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 10;
  cfg.chunk_pairs = 10;
  cfg.cancel = &token;
  cfg.progress = [&token](const ChunkProgress& p) {
    if (p.chunk == 0) token.cancel();
  };
  const ScreenReport report = screen(b.xs, b.ys, cfg);

  EXPECT_EQ(report.status.code(), util::ErrorCode::kCancelled);
  EXPECT_FALSE(report.complete());
  ASSERT_EQ(report.chunks.size(), 3u);
  EXPECT_TRUE(report.chunks[0].completed);
  EXPECT_FALSE(report.chunks[1].completed);
  EXPECT_FALSE(report.chunks[2].completed);
  // Completed region matches the reference; untouched region reads zero.
  ASSERT_EQ(report.scores.size(), 30u);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_EQ(report.scores[k], refs[k]);
  for (std::size_t k = 10; k < 30; ++k) EXPECT_EQ(report.scores[k], 0u);
  // No hit may come from the untouched region.
  for (const ScreenHit& hit : report.hits) EXPECT_LT(hit.index, 10u);
}

TEST(ScreenCancel, ExpiredDeadlineCompletesNothing) {
  const Batch b = make_batch(14, 12, 8, 12);
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.chunk_pairs = 4;
  cfg.deadline = util::Deadline::after_ms(0.0);
  const ScreenReport report = screen(b.xs, b.ys, cfg);
  EXPECT_EQ(report.status.code(), util::ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(report.complete());
  for (const ChunkOutcome& c : report.chunks) EXPECT_FALSE(c.completed);
  EXPECT_TRUE(report.hits.empty());
}

// Cancellation raised *inside* the device pipeline (between lock-step
// phases) must unwind through launch -> chunk backend -> screen and still
// produce a typed partial report, not a torn one.
TEST(ScreenCancel, CancelBetweenDevicePhasesYieldsPartialReport) {
  const Batch b = make_batch(15, 24, 8, 16);
  const std::vector<std::uint32_t> refs = scalar_refs(b, kParams);
  util::CancellationToken token;

  device::GpuRunOptions opt;
  opt.mode = bulk::Mode::kSerial;
  const ChunkBackend device_backend =
      device::make_chunk_backend(kParams, LaneWidth::k32, opt);
  auto chunks_run = std::make_shared<int>(0);

  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 10;
  cfg.width = LaneWidth::k32;
  cfg.chunk_pairs = 8;
  cfg.cancel = &token;
  cfg.chunk_backend = [&token, device_backend, chunks_run](
                          std::span<const Sequence> xs,
                          std::span<const Sequence> ys,
                          const util::StopCondition* stop) {
    // Second chunk: trip the token after the backend has started, so the
    // stop is observed at a device phase boundary, not the chunk boundary.
    if ((*chunks_run)++ == 1) token.cancel();
    return device_backend(xs, ys, stop);
  };
  const ScreenReport report = screen(b.xs, b.ys, cfg);

  EXPECT_EQ(report.status.code(), util::ErrorCode::kCancelled);
  EXPECT_FALSE(report.complete());
  ASSERT_EQ(report.chunks.size(), 3u);
  EXPECT_TRUE(report.chunks[0].completed);
  EXPECT_FALSE(report.chunks[1].completed);
  for (std::size_t k = 0; k < 8; ++k) EXPECT_EQ(report.scores[k], refs[k]);
  for (std::size_t k = 8; k < 24; ++k) EXPECT_EQ(report.scores[k], 0u);
}

// Cancellation during the self-check verify loop of a later chunk: the
// earlier chunk's accounting is retained and the report stays balanced.
TEST(ScreenCancel, CancelDuringVerifyKeepsReportBalanced) {
  const Batch b = make_batch(16, 20, 8, 16);
  util::CancellationToken token;
  auto chunks_run = std::make_shared<int>(0);
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 10;
  cfg.chunk_pairs = 10;
  cfg.cancel = &token;
  cfg.check.enabled = true;
  cfg.check.sample_every = 1;
  cfg.backend = [&token, chunks_run](std::span<const Sequence> xs,
                                     std::span<const Sequence> ys) {
    std::vector<std::uint32_t> scores;
    for (std::size_t k = 0; k < xs.size(); ++k)
      scores.push_back(max_score(xs[k], ys[k], kParams));
    // After producing the second chunk's scores, cancel: the stop fires
    // inside that chunk's verify loop.
    if ((*chunks_run)++ == 1) token.cancel();
    return scores;
  };
  const ScreenReport report = screen(b.xs, b.ys, cfg);

  EXPECT_EQ(report.status.code(), util::ErrorCode::kCancelled);
  EXPECT_TRUE(report.chunks[0].completed);
  EXPECT_FALSE(report.chunks[1].completed);
  EXPECT_EQ(report.reliability.lanes_verified, 10u);  // chunk 0 only
  EXPECT_TRUE(report.reliability.balanced());
}

// Deadline tripping between hit alignment calls: scores and hits are
// complete, but trailing hits stay coarse (detailed == false).
TEST(ScreenCancel, StopDuringTracebackLeavesHitsCoarse) {
  const Batch b = make_batch(17, 24, 8, 16);
  util::CancellationToken token;
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 1;  // plenty of hits
  cfg.traceback = true;
  cfg.chunk_pairs = 24;
  cfg.cancel = &token;
  cfg.progress = [&token](const ChunkProgress& p) {
    if (p.chunk + 1 == p.chunks_total) token.cancel();  // after last chunk
  };
  const ScreenReport report = screen(b.xs, b.ys, cfg);

  EXPECT_EQ(report.status.code(), util::ErrorCode::kCancelled);
  EXPECT_TRUE(report.complete());  // every chunk scored before the cancel
  EXPECT_FALSE(report.hits.empty());
  for (const ScreenHit& hit : report.hits) EXPECT_FALSE(hit.detailed);
  EXPECT_EQ(report.scores, scalar_refs(b, kParams));
}

// --- checkpoint / resume -------------------------------------------------

TEST(ScreenResume, InterruptedRunResumesBitIdentically) {
  const Batch b = make_batch(18, 40, 8, 16);
  ScreenConfig base;
  base.params = kParams;
  base.threshold = 10;
  base.traceback = true;
  base.chunk_pairs = 10;

  const ScreenReport uninterrupted = screen(b.xs, b.ys, base);

  // Run 1: cancelled after two chunks, checkpointing as it goes.
  const std::string ckpt = temp_path("resume.bin");
  util::CancellationToken token;
  ScreenConfig first = base;
  first.checkpoint_path = ckpt;
  first.cancel = &token;
  first.progress = [&token](const ChunkProgress& p) {
    if (p.chunk == 1) token.cancel();
  };
  const ScreenReport partial = screen(b.xs, b.ys, first);
  EXPECT_EQ(partial.status.code(), util::ErrorCode::kCancelled);
  EXPECT_TRUE(partial.chunks[0].completed);
  EXPECT_TRUE(partial.chunks[1].completed);
  EXPECT_FALSE(partial.chunks[2].completed);

  // Run 2: resume. The first two chunks must be satisfied from the stream
  // (not recomputed) and the final report must equal the uninterrupted one.
  std::size_t resumed_chunks = 0;
  ScreenConfig second = base;
  second.resume_path = ckpt;
  second.progress = [&resumed_chunks](const ChunkProgress& p) {
    if (p.resumed) ++resumed_chunks;
  };
  const ScreenReport resumed = screen(b.xs, b.ys, second);

  EXPECT_TRUE(resumed.status.ok());
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed_chunks, 2u);
  EXPECT_TRUE(resumed.chunks[0].resumed);
  EXPECT_TRUE(resumed.chunks[1].resumed);
  EXPECT_FALSE(resumed.chunks[2].resumed);
  EXPECT_EQ(resumed.scores, uninterrupted.scores);
  ASSERT_EQ(resumed.hits.size(), uninterrupted.hits.size());
  for (std::size_t h = 0; h < resumed.hits.size(); ++h) {
    EXPECT_EQ(resumed.hits[h].index, uninterrupted.hits[h].index);
    EXPECT_EQ(resumed.hits[h].bpbc_score, uninterrupted.hits[h].bpbc_score);
    EXPECT_EQ(resumed.hits[h].detail.score,
              uninterrupted.hits[h].detail.score);
    EXPECT_EQ(resumed.hits[h].detail.x_begin,
              uninterrupted.hits[h].detail.x_begin);
    EXPECT_EQ(resumed.hits[h].detail.y_begin,
              uninterrupted.hits[h].detail.y_begin);
  }
  std::remove(ckpt.c_str());
}

TEST(ScreenResume, ResumeAndCheckpointMaySharePath) {
  const Batch b = make_batch(19, 18, 8, 12);
  const std::string ckpt = temp_path("shared.bin");
  ScreenConfig base;
  base.params = kParams;
  base.threshold = 8;
  base.chunk_pairs = 6;

  util::CancellationToken token;
  ScreenConfig first = base;
  first.checkpoint_path = ckpt;
  first.cancel = &token;
  first.progress = [&token](const ChunkProgress& p) {
    if (p.chunk == 0) token.cancel();
  };
  (void)screen(b.xs, b.ys, first);

  ScreenConfig second = base;
  second.resume_path = ckpt;
  second.checkpoint_path = ckpt;  // rewrite in place while resuming
  const ScreenReport report = screen(b.xs, b.ys, second);
  EXPECT_TRUE(report.complete());
  EXPECT_TRUE(report.chunks[0].resumed);

  // The rewritten stream now covers every chunk.
  ScreenConfig third = base;
  third.resume_path = ckpt;
  const ScreenReport full = screen(b.xs, b.ys, third);
  EXPECT_TRUE(full.complete());
  for (const ChunkOutcome& c : full.chunks) EXPECT_TRUE(c.resumed);
  EXPECT_EQ(full.scores, report.scores);
  std::remove(ckpt.c_str());
}

TEST(ScreenResume, WrongBatchIsCheckpointMismatch) {
  const Batch b = make_batch(20, 16, 8, 12);
  const std::string ckpt = temp_path("wrongbatch.bin");
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.chunk_pairs = 8;
  cfg.checkpoint_path = ckpt;
  (void)screen(b.xs, b.ys, cfg);

  // Same shape, different content: the fingerprint must reject it.
  const Batch other = make_batch(21, 16, 8, 12);
  ScreenConfig resume = cfg;
  resume.checkpoint_path.clear();
  resume.resume_path = ckpt;
  const auto result = try_screen(other.xs, other.ys, resume);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kCheckpointMismatch);

  // Different chunking of the *same* batch is a different stream too.
  ScreenConfig rechunked = resume;
  rechunked.chunk_pairs = 4;
  const auto result2 = try_screen(b.xs, b.ys, rechunked);
  ASSERT_FALSE(result2.has_value());
  EXPECT_EQ(result2.status().code(), util::ErrorCode::kCheckpointMismatch);

  // Recovery path: dropping the resume source recomputes from scratch.
  ScreenConfig fresh = resume;
  fresh.resume_path.clear();
  const ScreenReport report = screen(other.xs, other.ys, fresh);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.scores, scalar_refs(other, kParams));
  std::remove(ckpt.c_str());
}

TEST(ScreenResume, CorruptStreamIsTypedErrorThenRecomputes) {
  const Batch b = make_batch(22, 12, 8, 12);
  const std::string ckpt = temp_path("corrupt.bin");
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.chunk_pairs = 6;
  cfg.checkpoint_path = ckpt;
  (void)screen(b.xs, b.ys, cfg);

  // Flip a payload byte on disk.
  {
    std::FILE* f = std::fopen(ckpt.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24 + 24 + 2, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x10, f);
    std::fclose(f);
  }

  ScreenConfig resume = cfg;
  resume.checkpoint_path.clear();
  resume.resume_path = ckpt;
  const auto result = try_screen(b.xs, b.ys, resume);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kCheckpointCorrupt);

  ScreenConfig fresh = resume;
  fresh.resume_path.clear();
  const ScreenReport report = screen(b.xs, b.ys, fresh);
  EXPECT_EQ(report.scores, scalar_refs(b, kParams));
  std::remove(ckpt.c_str());
}

TEST(ScreenResume, TornTailSalvageResumesCleanPrefix) {
  const Batch b = make_batch(24, 30, 8, 14);
  const std::string ckpt = temp_path("torntail.bin");
  ScreenConfig base;
  base.params = kParams;
  base.threshold = 10;
  base.chunk_pairs = 10;

  ScreenConfig writer = base;
  writer.checkpoint_path = ckpt;
  const ScreenReport full = screen(b.xs, b.ys, writer);
  ASSERT_TRUE(full.complete());

  // Tear the final record, as a process dying mid-append would.
  {
    std::ifstream in(ckpt, std::ios::binary);
    std::vector<char> data{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    in.close();
    ASSERT_GT(data.size(), 6u);
    data.resize(data.size() - 6);
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  // Strict resume refuses the stream outright.
  ScreenConfig strict = base;
  strict.resume_path = ckpt;
  const auto refused = try_screen(b.xs, b.ys, strict);
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.status().code(), util::ErrorCode::kCheckpointCorrupt);

  // Salvage resume recovers the two intact chunks and recomputes the torn
  // third; the result is bit-identical to the uninterrupted run.
  std::size_t resumed_chunks = 0;
  ScreenConfig salvage = base;
  salvage.resume_path = ckpt;
  salvage.resume_salvage_torn_tail = true;
  salvage.progress = [&resumed_chunks](const ChunkProgress& p) {
    if (p.resumed) ++resumed_chunks;
  };
  const ScreenReport resumed = screen(b.xs, b.ys, salvage);
  EXPECT_TRUE(resumed.status.ok());
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed_chunks, 2u);
  EXPECT_FALSE(resumed.chunks[2].resumed);
  EXPECT_EQ(resumed.scores, full.scores);

  // Salvage is NOT a rot amnesty: a flipped byte inside a complete record
  // still rejects even with the flag on.
  {
    std::FILE* f = std::fopen(ckpt.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24 + 24 + 1, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x20, f);
    std::fclose(f);
  }
  const auto rotted = try_screen(b.xs, b.ys, salvage);
  ASSERT_FALSE(rotted.has_value());
  EXPECT_EQ(rotted.status().code(), util::ErrorCode::kCheckpointCorrupt);
  std::remove(ckpt.c_str());
}

// --- the chunked + in-band-integrity fault drill -------------------------
//
// The ISSUE acceptance criterion: 100 seeded campaigns through the
// device backend with the full fault model (including flipped copy words),
// chunked execution and in-band stage integrity on. Every campaign must
// recover to the scalar reference; every in-band detection is attributed
// to a (chunk, stage); and a chunk retry resubmits only that chunk's
// lanes — never the whole batch.
TEST(FaultDrill, ChunkedIntegrityCampaignsRecoverAndAttribute) {
  constexpr std::size_t kCampaigns = 100;
  constexpr std::size_t kCount = 48, kM = 8, kN = 24, kChunk = 16;

  std::size_t campaigns_with_faults = 0;
  std::uint64_t total_stage_faults = 0;
  std::uint64_t total_chunk_retries = 0;
  for (std::size_t campaign = 0; campaign < kCampaigns; ++campaign) {
    const Batch b = make_batch(3000 + campaign, kCount, kM, kN);
    const std::vector<std::uint32_t> refs = scalar_refs(b, kParams);

    device::FaultConfig fault;
    fault.seed = 0xC0FFEE00 + campaign;
    fault.flip_probability = 1e-3;
    fault.drop_sync_probability = 0.05;
    fault.stall_probability = 0.05;
    fault.copy_flip_probability = 2e-3;
    device::FaultInjector injector(fault);

    device::GpuRunOptions opt;
    opt.mode = bulk::Mode::kSerial;
    opt.faults = &injector;
    opt.watchdog_phases = kM + kN + 16;
    opt.integrity.enabled = true;
    opt.integrity.sample_every = 1;

    ScreenConfig cfg;
    cfg.params = kParams;
    cfg.threshold = 12;
    cfg.width = LaneWidth::k32;
    cfg.traceback = false;
    cfg.chunk_pairs = kChunk;
    cfg.chunk_retry_limit = 3;
    cfg.chunk_backend =
        device::make_chunk_backend(kParams, LaneWidth::k32, opt);
    cfg.check.enabled = true;
    cfg.check.sample_every = 1;  // self-check backstop: total detection
    cfg.check.max_retries = 4;

    const ScreenReport report = screen(b.xs, b.ys, cfg);
    const auto& rel = report.reliability;

    ASSERT_EQ(report.scores, refs)
        << "campaign " << campaign << ": recovered scores diverge; "
        << rel.summary();
    ASSERT_TRUE(rel.balanced())
        << "campaign " << campaign << ": " << rel.summary();
    ASSERT_TRUE(report.complete());

    // Every in-band detection is attributed to a valid (chunk, stage).
    EXPECT_EQ(rel.integrity_faults, rel.stage_faults.size());
    for (const StageFault& f : rel.stage_faults) {
      EXPECT_LT(f.chunk, kCount / kChunk) << "campaign " << campaign;
      EXPECT_NE(stage_name(f.stage), std::string("?"));
    }
    // Integrity checks actually ran, and a chunk retry resubmits exactly
    // one chunk's worth of lanes — the point of chunked quarantine.
    EXPECT_GT(rel.integrity_checks, 0u);
    EXPECT_EQ(rel.lanes_resubmitted, rel.chunk_retries * kChunk);
    if (rel.chunk_retries > 0) {
      EXPECT_LT(rel.lanes_resubmitted / rel.chunk_retries, kCount);
    }

    for (const ScreenHit& hit : report.hits)
      EXPECT_EQ(hit.bpbc_score, refs[hit.index]);

    if (injector.log().total() > 0) ++campaigns_with_faults;
    total_stage_faults += rel.integrity_faults;
    total_chunk_retries += rel.chunk_retries;
  }
  // The fault model must bite, the in-band checks must catch a good share
  // of it, and retries must actually have happened for the drill to mean
  // anything.
  EXPECT_GE(campaigns_with_faults, kCampaigns / 2);
  EXPECT_GT(total_stage_faults, 0u);
  EXPECT_GT(total_chunk_retries, 0u);
}

// Integrity checks on a healthy pipeline: no faults, no retries, scores
// equal the reference, and the checks report being evaluated.
TEST(Integrity, CleanDeviceRunDetectsNothing) {
  const Batch b = make_batch(23, 40, 8, 16);
  device::GpuRunOptions opt;
  opt.mode = bulk::Mode::kSerial;
  opt.integrity.enabled = true;
  opt.integrity.sample_every = 1;

  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 10;
  cfg.width = LaneWidth::k32;
  cfg.chunk_pairs = 16;
  cfg.chunk_backend = device::make_chunk_backend(kParams, LaneWidth::k32, opt);
  const ScreenReport report = screen(b.xs, b.ys, cfg);

  EXPECT_EQ(report.scores, scalar_refs(b, kParams));
  EXPECT_GT(report.reliability.integrity_checks, 0u);
  EXPECT_EQ(report.reliability.integrity_faults, 0u);
  EXPECT_EQ(report.reliability.chunk_retries, 0u);
  EXPECT_TRUE(report.reliability.stage_faults.empty());
}

}  // namespace
}  // namespace swbpbc::sw
