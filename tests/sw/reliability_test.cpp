#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "device/fault.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/pipeline.hpp"
#include "sw/scalar.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {
namespace {

using encoding::Sequence;

constexpr ScoreParams kParams{2, 1, 1};

struct Batch {
  std::vector<Sequence> xs;
  std::vector<Sequence> ys;
};

Batch make_batch(std::uint64_t seed, std::size_t count, std::size_t m,
                 std::size_t n) {
  util::Xoshiro256 rng(seed);
  return {encoding::random_sequences(rng, count, m),
          encoding::random_sequences(rng, count, n)};
}

std::vector<std::uint32_t> scalar_refs(const Batch& b,
                                       const ScoreParams& params) {
  std::vector<std::uint32_t> refs;
  refs.reserve(b.xs.size());
  for (std::size_t k = 0; k < b.xs.size(); ++k)
    refs.push_back(max_score(b.xs[k], b.ys[k], params));
  return refs;
}

// --- batch precondition validation -------------------------------------

TEST(ScreenValidation, EmptyBatchIsTypedError) {
  ScreenConfig cfg;
  cfg.params = kParams;
  const auto result = try_screen({}, {}, cfg);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kInvalidInput);
}

TEST(ScreenValidation, CountMismatchIsTypedError) {
  const Batch b = make_batch(1, 4, 8, 8);
  ScreenConfig cfg;
  cfg.params = kParams;
  const auto result =
      try_screen(b.xs, std::span<const Sequence>(b.ys).first(3), cfg);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(result.status().message().find("mismatch"), std::string::npos);
}

TEST(ScreenValidation, NonUniformLengthNamesOffendingIndex) {
  Batch b = make_batch(2, 5, 8, 8);
  util::Xoshiro256 rng(3);
  b.xs[3] = encoding::random_sequence(rng, 9);
  ScreenConfig cfg;
  cfg.params = kParams;
  const auto result = try_screen(b.xs, b.ys, cfg);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(result.status().message().find("xs[3]"), std::string::npos);
}

TEST(ScreenValidation, ThrowingWrapperThrowsStatusError) {
  ScreenConfig cfg;
  cfg.params = kParams;
  try {
    screen({}, {}, cfg);
    FAIL() << "expected StatusError";
  } catch (const util::StatusError& e) {
    EXPECT_EQ(e.status().code(), util::ErrorCode::kInvalidInput);
  }
}

TEST(TryBpbc, NonUniformTextsAreTypedError) {
  Batch b = make_batch(4, 5, 8, 12);
  util::Xoshiro256 rng(5);
  b.ys[2] = encoding::random_sequence(rng, 7);
  const auto result = try_bpbc_max_scores(b.xs, b.ys, kParams);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(result.status().message().find("[2]"), std::string::npos);
}

// --- self-check on a healthy pipeline ----------------------------------

TEST(SelfCheck, CleanRunDetectsNothing) {
  const Batch b = make_batch(6, 40, 8, 16);
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 10;
  cfg.check.enabled = true;
  cfg.check.sample_every = 1;
  const ScreenReport report = screen(b.xs, b.ys, cfg);

  EXPECT_EQ(report.reliability.lanes_verified, 40u);
  EXPECT_EQ(report.reliability.mismatches_detected, 0u);
  EXPECT_EQ(report.reliability.retry_attempts, 0u);
  EXPECT_TRUE(report.reliability.balanced());
  EXPECT_EQ(report.scores, scalar_refs(b, kParams));
}

// --- recovery behavior with deliberately broken backends ----------------

TEST(SelfCheck, PersistentlyWrongBackendFallsBackToWordwise) {
  const Batch b = make_batch(7, 12, 8, 16);
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 1000;  // no hits: exercise the sampled-lane path alone
  cfg.check.enabled = true;
  cfg.check.sample_every = 1;
  cfg.check.max_retries = 2;
  // A backend that is always off by one: every retry fails, so every lane
  // must be settled by the wordwise CPU fallback.
  cfg.backend = [](std::span<const Sequence> xs,
                   std::span<const Sequence> ys) {
    std::vector<std::uint32_t> scores;
    for (std::size_t k = 0; k < xs.size(); ++k)
      scores.push_back(max_score(xs[k], ys[k], kParams) + 1);
    return scores;
  };
  const ScreenReport report = screen(b.xs, b.ys, cfg);

  const auto& rel = report.reliability;
  EXPECT_EQ(rel.mismatches_detected, 12u);
  EXPECT_EQ(rel.lanes_quarantined, 12u);
  EXPECT_EQ(rel.retry_attempts, 2u);
  EXPECT_EQ(rel.lanes_recovered, 0u);
  EXPECT_EQ(rel.lanes_fell_back, 12u);
  EXPECT_TRUE(rel.balanced());
  EXPECT_EQ(report.scores, scalar_refs(b, kParams));
}

TEST(SelfCheck, TransientFaultRecoveredByRetry) {
  const Batch b = make_batch(8, 16, 8, 16);
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 1000;
  cfg.check.enabled = true;
  cfg.check.sample_every = 1;
  cfg.check.max_retries = 3;
  // First call corrupts lane 0; every later (quarantine) call is clean —
  // a transient fault that one retry fixes.
  auto calls = std::make_shared<int>(0);
  cfg.backend = [calls](std::span<const Sequence> xs,
                        std::span<const Sequence> ys) {
    std::vector<std::uint32_t> scores;
    for (std::size_t k = 0; k < xs.size(); ++k)
      scores.push_back(max_score(xs[k], ys[k], kParams));
    if ((*calls)++ == 0 && !scores.empty()) scores[0] += 100;
    return scores;
  };
  const ScreenReport report = screen(b.xs, b.ys, cfg);

  const auto& rel = report.reliability;
  EXPECT_EQ(rel.mismatches_detected, 1u);
  EXPECT_EQ(rel.retry_attempts, 1u);
  EXPECT_EQ(rel.lanes_recovered, 1u);
  EXPECT_EQ(rel.lanes_fell_back, 0u);
  EXPECT_TRUE(rel.balanced());
  EXPECT_EQ(report.scores, scalar_refs(b, kParams));
}

TEST(SelfCheck, FabricatedHitIsCaughtWithoutSampling) {
  // sample_every = 0: only apparent hits are verified. A backend that
  // inflates one lane past the threshold fabricates a hit; verification
  // must catch it and the corrected lane must not appear in hits.
  const Batch b = make_batch(9, 16, 8, 16);
  const std::vector<std::uint32_t> refs = scalar_refs(b, kParams);
  const std::uint32_t tau = *std::max_element(refs.begin(), refs.end()) + 5;

  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = tau;  // genuinely zero hits
  cfg.check.enabled = true;
  cfg.check.sample_every = 0;
  cfg.check.max_retries = 3;
  auto calls = std::make_shared<int>(0);
  cfg.backend = [calls](std::span<const Sequence> xs,
                        std::span<const Sequence> ys) {
    std::vector<std::uint32_t> scores;
    for (std::size_t k = 0; k < xs.size(); ++k)
      scores.push_back(max_score(xs[k], ys[k], kParams));
    if ((*calls)++ == 0 && scores.size() > 5) scores[5] += 1000;
    return scores;
  };
  const ScreenReport report = screen(b.xs, b.ys, cfg);

  EXPECT_EQ(report.reliability.lanes_verified, 1u);  // just the fake hit
  EXPECT_EQ(report.reliability.mismatches_detected, 1u);
  EXPECT_EQ(report.reliability.lanes_recovered, 1u);
  EXPECT_TRUE(report.reliability.balanced());
  EXPECT_TRUE(report.hits.empty());
  EXPECT_EQ(report.scores, refs);
}

// --- the fault drill (ISSUE acceptance criterion) -----------------------
//
// >= 100 seeded campaigns drive the device backend through the full fault
// model (bit flips in global and shared words, dropped phase syncs, block
// stalls past the watchdog). With sample_every = 1 the self-check verifies
// every lane, so the drill asserts total detection: after recovery every
// reported score equals the scalar reference and the ReliabilityReport
// accounts for every quarantined lane.
TEST(FaultDrill, HundredSeededCampaignsFullyRecovered) {
  constexpr std::size_t kCampaigns = 100;
  constexpr std::size_t kCount = 48, kM = 8, kN = 24;

  std::size_t campaigns_with_faults = 0;
  std::uint64_t total_mismatches = 0;
  for (std::size_t campaign = 0; campaign < kCampaigns; ++campaign) {
    const Batch b = make_batch(1000 + campaign, kCount, kM, kN);
    const std::vector<std::uint32_t> refs = scalar_refs(b, kParams);

    device::FaultConfig fault;
    fault.seed = 0xFEED0000 + campaign;
    fault.flip_probability = 1e-3;
    fault.drop_sync_probability = 0.05;
    fault.stall_probability = 0.05;
    device::FaultInjector injector(fault);

    device::GpuRunOptions opt;
    opt.mode = bulk::Mode::kSerial;
    opt.faults = &injector;
    opt.watchdog_phases = kM + kN + 16;

    ScreenConfig cfg;
    cfg.params = kParams;
    cfg.threshold = 12;
    cfg.width = LaneWidth::k32;
    cfg.traceback = false;
    cfg.backend =
        device::make_screen_backend(kParams, LaneWidth::k32, opt);
    cfg.check.enabled = true;
    cfg.check.sample_every = 1;  // verify every lane: total detection
    cfg.check.max_retries = 4;
    cfg.check.backoff_base_ms = 0.0;

    const ScreenReport report = screen(b.xs, b.ys, cfg);
    const auto& rel = report.reliability;

    ASSERT_EQ(report.scores, refs)
        << "campaign " << campaign << ": recovered scores diverge; "
        << rel.summary();
    ASSERT_TRUE(rel.balanced())
        << "campaign " << campaign << ": " << rel.summary();
    ASSERT_EQ(rel.lanes_verified, kCount);
    for (const ScreenHit& hit : report.hits)
      EXPECT_EQ(hit.bpbc_score, refs[hit.index]);

    if (injector.log().total() > 0) ++campaigns_with_faults;
    total_mismatches += rel.mismatches_detected;
  }
  // The fault model must actually bite for the drill to mean anything.
  EXPECT_GE(campaigns_with_faults, kCampaigns / 2);
  EXPECT_GT(total_mismatches, 0u);
}

}  // namespace
}  // namespace swbpbc::sw
