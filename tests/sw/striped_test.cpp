// Randomized cross-checks of the striped-SIMD (Farrar, lazy-F
// deconstructed) engine against the scalar Gotoh reference: DNA and
// protein alphabets, linear and affine gaps, query lengths chosen to
// straddle segment boundaries (m % lanes != 0, m < lanes, m >> lanes),
// both kernel representations (GNU vector and the std::array fallback),
// both element widths (16-bit and the 32-bit escalation), the lazy-F
// stress shapes (cheap gaps, rich matches — maximal cross-segment
// carry), the degenerate inputs, the profile cache, and the v2 Backend
// registration through the chunked screening pipeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sw/backend.hpp"
#include "sw/pipeline.hpp"
#include "sw/scalar.hpp"
#include "sw/scoring.hpp"
#include "sw/striped.hpp"
#include "util/rng.hpp"

namespace swbpbc::sw {
namespace {

using encoding::GenericSequence;
using encoding::Sequence;

const StripedRepr kBothReprs[] = {StripedRepr::kVector, StripedRepr::kScalar};

GenericSequence random_generic(util::Xoshiro256& rng, std::size_t len,
                               std::size_t sigma) {
  GenericSequence s(len);
  for (auto& c : s) c = static_cast<std::uint8_t>(rng.below(sigma));
  return s;
}

ScoringScheme dna_linear(std::uint32_t match = 2, std::uint32_t mismatch = 1,
                         std::uint32_t gap = 1) {
  ScoringScheme s;
  s.match = match;
  s.mismatch = mismatch;
  s.gap_model = GapModel::kLinear;
  s.gap_open = gap;
  return s;
}

ScoringScheme dna_affine(std::uint32_t open = 3, std::uint32_t extend = 1) {
  ScoringScheme s;
  s.gap_model = GapModel::kAffine;
  s.gap_open = open;
  s.gap_extend = extend;
  return s;
}

ScoringScheme protein_blosum62(GapModel gaps = GapModel::kAffine) {
  ScoringScheme s;
  s.matrix = blosum62();
  s.gap_model = gaps;
  s.gap_open = gaps == GapModel::kAffine ? 11 : 4;
  s.gap_extend = 1;
  return s;
}

void expect_pair_identity(const GenericSequence& x, const GenericSequence& y,
                          const ScoringScheme& scheme,
                          const std::string& label) {
  const std::uint32_t want = scheme_max_score(x, y, scheme);
  for (const StripedRepr repr : kBothReprs) {
    const std::uint32_t got = striped_max_score(x, y, scheme, repr);
    EXPECT_EQ(got, want)
        << label << " repr=" << static_cast<int>(repr) << " m=" << x.size()
        << " n=" << y.size();
  }
}

// The randomized matrix: every scheme kind x query lengths that straddle
// the 8-lane and 4-lane segment boundaries (1, lanes-1, lanes, lanes+1,
// several non-multiples, and a long tail) x assorted target lengths.
TEST(StripedCross, RandomizedMatrixMatchesScalarGotoh) {
  struct Case {
    const char* name;
    ScoringScheme scheme;
    std::size_t sigma;
  };
  const Case cases[] = {
      {"dna-linear", dna_linear(), 4},
      {"dna-linear-steep", dna_linear(5, 4, 3), 4},
      {"dna-affine", dna_affine(), 4},
      {"blosum62-linear", protein_blosum62(GapModel::kLinear), 20},
      {"blosum62-affine", protein_blosum62(), 20},
  };
  const std::size_t query_lengths[] = {1, 2, 5, 7, 8, 9, 15, 16, 17,
                                       23, 24, 31, 33, 50, 64, 100};
  const std::size_t target_lengths[] = {1, 3, 17, 64, 130};
  util::Xoshiro256 rng(20260809);
  for (const Case& c : cases) {
    for (const std::size_t m : query_lengths) {
      for (const std::size_t n : target_lengths) {
        const GenericSequence x = random_generic(rng, m, c.sigma);
        const GenericSequence y = random_generic(rng, n, c.sigma);
        expect_pair_identity(x, y, c.scheme, c.name);
      }
    }
  }
}

// Lazy-F stress: a cheap extension against a rich diagonal maximizes the
// cross-segment F carry (the correction pass runs, and runs deep), and a
// homopolymer query against a matching run keeps F saturated for whole
// columns. These shapes are exactly where Farrar's engines historically
// under-scored when the E update after correction was skipped.
TEST(StripedCross, LazyFCarryHeavyShapes) {
  ScoringScheme rich = dna_linear(16, 1, 1);
  ScoringScheme cheap_affine = dna_affine(1, 1);  // open == extend == 1
  util::Xoshiro256 rng(99);
  for (const std::size_t m : {17, 33, 64}) {
    // Homopolymer query, matching-run target.
    GenericSequence poly_x(m, 0);
    GenericSequence poly_y(3 * m, 0);
    expect_pair_identity(poly_x, poly_y, rich, "rich-homopolymer");
    expect_pair_identity(poly_x, poly_y, cheap_affine, "cheap-homopolymer");
    // Random with a planted long match block mid-target.
    GenericSequence x = random_generic(rng, m, 4);
    GenericSequence y = random_generic(rng, 4 * m, 4);
    for (std::size_t i = 0; i < m; ++i) y[m + i] = x[i];
    expect_pair_identity(x, y, rich, "rich-planted");
    expect_pair_identity(x, y, cheap_affine, "cheap-planted");
  }
}

// The lazy-F early exits must never fire on columns that still carry: a
// mismatch-free workload where every column's F survives the full second
// pass, at a segment count > 1.
TEST(StripedCross, AllMatchColumnsKeepCorrecting) {
  ScoringScheme s = dna_affine(2, 1);
  const GenericSequence x(40, 2);
  const GenericSequence y(80, 2);
  expect_pair_identity(x, y, s, "all-match");
}

TEST(StripedCross, EmptyAndSingleResidueInputs) {
  const ScoringScheme s = dna_linear();
  const GenericSequence empty;
  const GenericSequence one(1, 3);
  const GenericSequence some{0, 1, 2, 3, 0, 1};
  EXPECT_EQ(striped_max_score(empty, some, s), 0u);
  EXPECT_EQ(striped_max_score(some, empty, s), 0u);
  EXPECT_EQ(striped_max_score(empty, empty, s), 0u);
  expect_pair_identity(one, some, s, "one-residue-query");
  expect_pair_identity(some, one, s, "one-residue-target");
  expect_pair_identity(one, one, s, "one-by-one");
}

// A large-magnitude scheme forces the 32-bit element escalation (score
// bound over 16 bits); the wide kernel must stay bit-identical too.
TEST(StripedCross, WideCellEscalationMatchesScalar) {
  ScoringScheme s = dna_linear(300, 100, 120);
  util::Xoshiro256 rng(7);
  const GenericSequence x = random_generic(rng, 300, 4);
  const GenericSequence y = random_generic(rng, 90, 4);
  const StripedProfile profile(s, x);
  EXPECT_TRUE(profile.wide_cells());
  EXPECT_EQ(profile.lanes(), 4u);
  expect_pair_identity(x, y, s, "wide-cells");
  // And the 16-bit path is actually exercised by the small schemes.
  const StripedProfile narrow(dna_linear(), x);
  EXPECT_FALSE(narrow.wide_cells());
  EXPECT_EQ(narrow.lanes(), 8u);
}

TEST(StripedProfileTest, RejectsOutOfAlphabetCodes) {
  const ScoringScheme s = protein_blosum62();
  GenericSequence bad{0, 1, 200};
  EXPECT_THROW(StripedProfile(s, bad), std::invalid_argument);
  const GenericSequence ok{0, 1, 2};
  const StripedProfile profile(s, ok);
  const GenericSequence bad_target{0, 25};
  EXPECT_THROW((void)profile.score(bad_target), std::out_of_range);
}

TEST(StripedProfileCacheTest, HitsVerifyAndEvict) {
  StripedProfileCache cache(2);
  const ScoringScheme s = dna_linear();
  util::Xoshiro256 rng(11);
  const GenericSequence q1 = random_generic(rng, 24, 4);
  const GenericSequence q2 = random_generic(rng, 24, 4);
  const GenericSequence q3 = random_generic(rng, 24, 4);
  const auto p1 = cache.get(s, q1);
  const auto p1_again = cache.get(s, q1);
  EXPECT_EQ(p1.get(), p1_again.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  (void)cache.get(s, q2);
  (void)cache.get(s, q3);  // capacity 2: q1 evicted
  EXPECT_EQ(cache.stats().evictions, 1u);
  const auto p1_rebuilt = cache.get(s, q1);
  EXPECT_NE(p1_rebuilt.get(), p1.get());
  // A different scheme is a different key even for the same query.
  const auto p1_affine = cache.get(dna_affine(), q1);
  EXPECT_NE(p1_affine.get(), p1_rebuilt.get());
}

TEST(StripedBulkTest, BatchMatchesScalarAndFillsTimings) {
  const ScoringScheme s = protein_blosum62();
  util::Xoshiro256 rng(5);
  const GenericSequence query = random_generic(rng, 24, 20);
  std::vector<GenericSequence> xs(32, query), ys;
  for (std::size_t k = 0; k < xs.size(); ++k)
    ys.push_back(random_generic(rng, 64, 20));
  StripedProfileCache cache;
  PhaseTimings timings;
  const auto scores =
      try_striped_max_scores(xs, ys, s, bulk::Mode::kSerial, &cache, &timings);
  ASSERT_TRUE(scores.has_value()) << scores.status().to_string();
  for (std::size_t k = 0; k < xs.size(); ++k)
    EXPECT_EQ((*scores)[k], scheme_max_score(xs[k], ys[k], s)) << k;
  // One distinct query: one profile build, the rest cache hits.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, xs.size() - 1);
  EXPECT_GE(timings.swa_ms, 0.0);
}

TEST(StripedBulkTest, ShapeAndSchemeValidation) {
  const ScoringScheme s = dna_linear();
  const std::vector<GenericSequence> one(1, GenericSequence{0, 1});
  const std::vector<GenericSequence> two(2, GenericSequence{0, 1});
  EXPECT_FALSE(try_striped_max_scores(one, two, s).has_value());
  ScoringScheme bad = dna_linear(0);
  EXPECT_FALSE(try_striped_max_scores(one, one, bad).has_value());
}

// The Backend registration: a chunked screen through make_striped_backend
// must be bit-identical to the default BPBC screen, and its par-mode
// scores identical to serial.
TEST(StripedBackendTest, ChunkedScreenBitIdenticalToBpbc) {
  util::Xoshiro256 rng(21);
  const auto random_dna = [&rng](std::size_t len) {
    Sequence s(len);
    for (auto& b : s)
      b = static_cast<encoding::Base>(rng.below(4));
    return s;
  };
  const std::size_t pairs = 96, m = 24, n = 120;
  std::vector<Sequence> xs, ys;
  for (std::size_t k = 0; k < pairs; ++k) {
    xs.push_back(random_dna(m));
    ys.push_back(random_dna(n));
  }
  for (const bool affine : {false, true}) {
    const ScoringScheme scheme = affine ? dna_affine() : dna_linear();
    ScreenConfig reference;
    reference.scheme = scheme;
    reference.traceback = false;
    const auto want = try_screen(xs, ys, reference);
    ASSERT_TRUE(want.has_value()) << want.status().to_string();

    auto striped = make_striped_backend(scheme);
    ScreenConfig cfg;
    cfg.scheme = scheme;
    cfg.traceback = false;
    cfg.backend_v2 = striped.get();
    cfg.chunk_pairs = 32;
    const auto got = try_screen(xs, ys, cfg);
    ASSERT_TRUE(got.has_value()) << got.status().to_string();
    EXPECT_EQ(got->scores, want->scores) << "affine=" << affine;
  }
}

}  // namespace
}  // namespace swbpbc::sw
