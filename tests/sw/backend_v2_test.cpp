// sw::Backend (v2) — adapter equivalence with the v1 function backends,
// base-class submit/collect semantics, and the overlapped screen loop:
// an engine-backed try_screen at overlap_depth >= 2 must be bit-identical
// to its serial execution, including under fault injection with the full
// self-check/quarantine machinery enabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "device/engine.hpp"
#include "device/fault.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/backend.hpp"
#include "sw/bpbc.hpp"
#include "sw/pipeline.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {
namespace {

using encoding::Sequence;

constexpr ScoreParams kParams{2, 1, 1};

struct Batch {
  std::vector<Sequence> xs;
  std::vector<Sequence> ys;
};

Batch make_batch(std::uint64_t seed, std::size_t count, std::size_t m,
                 std::size_t n) {
  util::Xoshiro256 rng(seed);
  return {encoding::random_sequences(rng, count, m),
          encoding::random_sequences(rng, count, n)};
}

void expect_same_report(const ScreenReport& a, const ScreenReport& b,
                        const std::string& what) {
  EXPECT_EQ(a.scores, b.scores) << what;
  EXPECT_EQ(a.status.code(), b.status.code()) << what;
  ASSERT_EQ(a.hits.size(), b.hits.size()) << what;
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].index, b.hits[i].index) << what;
    EXPECT_EQ(a.hits[i].bpbc_score, b.hits[i].bpbc_score) << what;
  }
  ASSERT_EQ(a.chunks.size(), b.chunks.size()) << what;
  for (std::size_t c = 0; c < a.chunks.size(); ++c) {
    EXPECT_EQ(a.chunks[c].completed, b.chunks[c].completed) << what;
    EXPECT_EQ(a.chunks[c].resumed, b.chunks[c].resumed) << what;
    EXPECT_EQ(a.chunks[c].retries, b.chunks[c].retries) << what;
  }
}

void expect_same_reliability(const ReliabilityReport& a,
                             const ReliabilityReport& b,
                             const std::string& what) {
  EXPECT_EQ(a.lanes_verified, b.lanes_verified) << what;
  EXPECT_EQ(a.mismatches_detected, b.mismatches_detected) << what;
  EXPECT_EQ(a.lanes_recovered, b.lanes_recovered) << what;
  EXPECT_EQ(a.lanes_fell_back, b.lanes_fell_back) << what;
  EXPECT_EQ(a.integrity_checks, b.integrity_checks) << what;
  EXPECT_EQ(a.integrity_faults, b.integrity_faults) << what;
  EXPECT_EQ(a.chunk_retries, b.chunk_retries) << what;
  ASSERT_EQ(a.stage_faults.size(), b.stage_faults.size()) << what;
  for (std::size_t i = 0; i < a.stage_faults.size(); ++i) {
    EXPECT_EQ(a.stage_faults[i].chunk, b.stage_faults[i].chunk) << what;
    EXPECT_EQ(a.stage_faults[i].stage, b.stage_faults[i].stage) << what;
    EXPECT_EQ(a.stage_faults[i].block, b.stage_faults[i].block) << what;
  }
}

device::FaultConfig noisy_faults() {
  device::FaultConfig fc;
  fc.seed = 99;
  fc.flip_probability = 0.008;
  fc.drop_sync_probability = 0.04;
  fc.copy_flip_probability = 0.004;
  return fc;
}

device::IntegrityConfig full_integrity() {
  device::IntegrityConfig ic;
  ic.enabled = true;
  ic.sample_every = 4;
  ic.canary_lanes = true;
  ic.checksum_copies = true;
  return ic;
}

// --- compat adapters reproduce the v1 paths exactly ----------------------

TEST(BackendV2, ScoreBackendAdapterMatchesLegacyField) {
  const Batch b = make_batch(21, 48, 8, 16);
  const ScoreBackend f = [](std::span<const Sequence> xs,
                            std::span<const Sequence> ys) {
    return bpbc_max_scores(xs, ys, kParams, LaneWidth::k32);
  };
  ScreenConfig legacy;
  legacy.params = kParams;
  legacy.threshold = 14;
  legacy.backend = f;
  legacy.chunk_pairs = 16;
  const ScreenReport want = screen(b.xs, b.ys, legacy);

  ScreenConfig v2 = legacy;
  v2.backend = nullptr;
  const std::unique_ptr<Backend> adapted = adapt_score_backend(f);
  v2.backend_v2 = adapted.get();
  const ScreenReport got = screen(b.xs, b.ys, v2);
  expect_same_report(got, want, "score adapter");
}

TEST(BackendV2, HostBackendMatchesDefaultPath) {
  const Batch b = make_batch(22, 40, 8, 16);
  ScreenConfig legacy;
  legacy.params = kParams;
  legacy.threshold = 12;
  legacy.chunk_pairs = 10;
  const ScreenReport want = screen(b.xs, b.ys, legacy);

  ScreenConfig v2 = legacy;
  const std::unique_ptr<Backend> host = make_host_backend(
      kParams, v2.width, v2.mode, v2.method);
  v2.backend_v2 = host.get();
  const ScreenReport got = screen(b.xs, b.ys, v2);
  expect_same_report(got, want, "host backend");
  // Both paths attribute per-phase timings (not everything on SWA).
  EXPECT_GT(got.bpbc.w2b_ms + got.bpbc.b2w_ms, 0.0);
}

TEST(BackendV2, ChunkBackendAdapterMatchesLegacyUnderFaultInjection) {
  // The same device chunk backend, reached through the v1 field and
  // through adapt_chunk_backend, with twin same-seed injectors: the two
  // screens must agree on every score, fault finding, and recovery count.
  const Batch b = make_batch(23, 96, 8, 12);
  device::FaultInjector faults_legacy(noisy_faults());
  device::FaultInjector faults_v2(noisy_faults());

  const auto configure = [&](device::FaultInjector* inj) {
    device::GpuRunOptions gpu;
    gpu.faults = inj;
    gpu.integrity = full_integrity();
    ScreenConfig cfg;
    cfg.params = kParams;
    cfg.threshold = 12;
    cfg.width = LaneWidth::k32;
    cfg.chunk_pairs = 16;
    cfg.chunk_retry_limit = 2;
    cfg.check.enabled = true;
    cfg.check.sample_every = 3;
    cfg.chunk_backend = device::make_chunk_backend(kParams, cfg.width, gpu);
    return cfg;
  };

  ScreenConfig legacy = configure(&faults_legacy);
  const ScreenReport want = screen(b.xs, b.ys, legacy);

  ScreenConfig v2 = configure(&faults_v2);
  const std::unique_ptr<Backend> adapted =
      adapt_chunk_backend(v2.chunk_backend);
  v2.chunk_backend = nullptr;
  v2.backend_v2 = adapted.get();
  const ScreenReport got = screen(b.xs, b.ys, v2);

  expect_same_report(got, want, "chunk adapter");
  expect_same_reliability(got.reliability, want.reliability, "chunk adapter");
  EXPECT_GT(want.reliability.integrity_faults, 0u)
      << "fault rates too low to exercise the recovery machinery";
}

TEST(BackendV2, CancellationEquivalentThroughAdapter) {
  const Batch b = make_batch(24, 64, 8, 12);
  const auto run_with = [&](bool use_v2) {
    device::GpuRunOptions gpu;
    ScreenConfig cfg;
    cfg.params = kParams;
    cfg.threshold = 10;
    cfg.chunk_pairs = 16;
    const ChunkBackend chunk =
        device::make_chunk_backend(kParams, cfg.width, gpu);
    std::unique_ptr<Backend> adapted;
    if (use_v2) {
      adapted = adapt_chunk_backend(chunk);
      cfg.backend_v2 = adapted.get();
    } else {
      cfg.chunk_backend = chunk;
    }
    util::CancellationToken cancel;
    cfg.cancel = &cancel;
    cfg.progress = [&cancel](const ChunkProgress& p) {
      if (p.chunk == 1) cancel.cancel();
    };
    return screen(b.xs, b.ys, cfg);
  };
  const ScreenReport want = run_with(false);
  const ScreenReport got = run_with(true);
  EXPECT_EQ(want.status.code(), util::ErrorCode::kCancelled);
  expect_same_report(got, want, "cancelled run");
  EXPECT_FALSE(want.complete());
}

// --- base-class submit/collect -------------------------------------------

TEST(BackendV2, BaseSubmitCollectDegradesToDeferredRuns) {
  const Batch b = make_batch(25, 32, 8, 12);
  const std::unique_ptr<Backend> host = make_host_backend(
      kParams, LaneWidth::k32, bulk::Mode::kSerial,
      encoding::TransposeMethod::kPlanned);
  EXPECT_FALSE(host->caps().streams);
  ChunkJob first;
  first.xs = std::span<const Sequence>(b.xs).subspan(0, 16);
  first.ys = std::span<const Sequence>(b.ys).subspan(0, 16);
  ChunkJob second;
  second.xs = std::span<const Sequence>(b.xs).subspan(16, 16);
  second.ys = std::span<const Sequence>(b.ys).subspan(16, 16);
  host->submit(first);
  host->submit(second);
  const ChunkResult r1 = host->collect();
  const ChunkResult r2 = host->collect();
  EXPECT_EQ(r1.scores, host->run(first).scores);
  EXPECT_EQ(r2.scores, host->run(second).scores);
  EXPECT_THROW(host->collect(), util::StatusError);
}

// --- the overlapped screen loop ------------------------------------------

ScreenReport engine_screen(const Batch& b, std::size_t overlap_depth,
                           device::FaultInjector* faults, bool check) {
  device::EngineOptions eopts;
  eopts.params = kParams;
  eopts.width = LaneWidth::k32;
  eopts.faults = faults;
  if (faults != nullptr) eopts.integrity = full_integrity();
  eopts.overlap_depth = overlap_depth;
  device::PipelineEngine engine(eopts);

  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 12;
  cfg.width = LaneWidth::k32;
  cfg.chunk_pairs = 16;
  cfg.chunk_retry_limit = 2;
  cfg.backend_v2 = &engine;
  cfg.overlap_depth = overlap_depth;
  if (check) {
    cfg.check.enabled = true;
    cfg.check.sample_every = 3;
  }
  return screen(b.xs, b.ys, cfg);
}

TEST(OverlappedScreen, BitIdenticalToSerialExecution) {
  const Batch b = make_batch(26, 112, 8, 12);
  const ScreenReport serial = engine_screen(b, 1, nullptr, false);
  const ScreenReport overlapped = engine_screen(b, 3, nullptr, false);
  expect_same_report(overlapped, serial, "fault-free overlap");
  EXPECT_TRUE(serial.complete());
}

TEST(OverlappedScreen, BitIdenticalToSerialUnderFaultsWithSelfCheck) {
  // The full stack: fault injection, in-band integrity, chunk retries,
  // self-check quarantine/rescore — overlapped vs serial must agree on
  // everything the report states.
  const Batch b = make_batch(27, 112, 8, 12);
  device::FaultInjector faults_serial(noisy_faults());
  device::FaultInjector faults_overlap(noisy_faults());
  const ScreenReport serial = engine_screen(b, 1, &faults_serial, true);
  const ScreenReport overlapped = engine_screen(b, 4, &faults_overlap, true);
  expect_same_report(overlapped, serial, "faulty overlap");
  expect_same_reliability(overlapped.reliability, serial.reliability,
                          "faulty overlap");
  EXPECT_GT(serial.reliability.integrity_checks, 0u);
}

TEST(OverlappedScreen, CancellationLeavesWellFormedPartialReport) {
  const Batch b = make_batch(28, 96, 8, 12);
  device::EngineOptions eopts;
  eopts.params = kParams;
  eopts.overlap_depth = 3;
  device::PipelineEngine engine(eopts);
  util::CancellationToken cancel;
  ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 10;
  cfg.chunk_pairs = 16;
  cfg.backend_v2 = &engine;
  cfg.overlap_depth = 3;
  cfg.cancel = &cancel;
  cfg.progress = [&cancel](const ChunkProgress& p) {
    if (p.chunk == 1) cancel.cancel();
  };
  const ScreenReport report = screen(b.xs, b.ys, cfg);
  EXPECT_EQ(report.status.code(), util::ErrorCode::kCancelled);
  EXPECT_FALSE(report.complete());
  // Chunks 0 and 1 settled; every later chunk is untouched and zero —
  // even though the overlap window had already submitted some of them.
  for (std::size_t c = 0; c < report.chunks.size(); ++c) {
    const ChunkOutcome& outcome = report.chunks[c];
    EXPECT_EQ(outcome.completed, c <= 1) << "chunk " << c;
    if (!outcome.completed) {
      for (std::size_t k = outcome.begin; k < outcome.end; ++k)
        EXPECT_EQ(report.scores[k], 0u) << "pair " << k;
    }
  }
  // The same engine survives the drained tail and runs a fresh complete
  // screen afterwards.
  cfg.cancel = nullptr;
  cfg.progress = nullptr;
  const ScreenReport again = screen(b.xs, b.ys, cfg);
  EXPECT_TRUE(again.complete());
  EXPECT_TRUE(again.status.ok());
}

}  // namespace
}  // namespace swbpbc::sw
