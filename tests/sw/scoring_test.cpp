// The redesigned ScoringScheme API: the ScoreParams shim (lossless in
// both directions), field-naming validation, the BLOSUM62 preset, scheme
// naming, slice budgeting, and the fingerprint compatibility contract
// (expressible schemes hash exactly like fingerprint_params so existing
// checkpoint streams and request journals keep resuming).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "encoding/alphabet.hpp"
#include "sw/params.hpp"
#include "sw/scoring.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {
namespace {

ScoringScheme affine_scheme(std::uint32_t open, std::uint32_t extend) {
  ScoringScheme s;
  s.gap_model = GapModel::kAffine;
  s.gap_open = open;
  s.gap_extend = extend;
  return s;
}

ScoringScheme blosum62_affine(std::uint32_t open = 11,
                              std::uint32_t extend = 1) {
  ScoringScheme s = affine_scheme(open, extend);
  s.matrix = blosum62();
  return s;
}

TEST(ScoringScheme, FromParamsIsLossless) {
  const ScoreParams params{3, 2, 4};
  const ScoringScheme scheme = ScoringScheme::from_params(params);
  EXPECT_TRUE(scheme.uniform());
  EXPECT_FALSE(scheme.affine());
  EXPECT_TRUE(scheme.params_expressible());
  const auto back = scheme.to_params();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->match, params.match);
  EXPECT_EQ(back->mismatch, params.mismatch);
  EXPECT_EQ(back->gap, params.gap);
}

TEST(ScoringScheme, AffineAndMatrixAreNotParamsExpressible) {
  EXPECT_FALSE(affine_scheme(3, 1).params_expressible());
  EXPECT_FALSE(affine_scheme(3, 1).to_params().has_value());
  ScoringScheme matrix;
  matrix.matrix = blosum62();
  EXPECT_FALSE(matrix.params_expressible());
  EXPECT_FALSE(matrix.to_params().has_value());
}

TEST(ScoringScheme, AlphabetFollowsSubstitutionModel) {
  ScoringScheme uniform;
  EXPECT_EQ(uniform.alphabet_bits(), 2u);
  EXPECT_EQ(&uniform.alphabet(), &encoding::dna_alphabet());
  ScoringScheme protein = blosum62_affine();
  EXPECT_EQ(protein.alphabet_bits(), 5u);
  EXPECT_EQ(protein.alphabet().size(), 20u);
}

TEST(ScoringScheme, SubstitutionLooksUpSignedEntries) {
  const ScoringScheme protein = blosum62_affine();
  const encoding::Alphabet& aa = protein.alphabet();
  // Classic BLOSUM62 anchors: W/W = 11, the most negative entries are -4.
  EXPECT_EQ(protein.substitution(aa.code('W'), aa.code('W')), 11);
  EXPECT_EQ(protein.substitution(aa.code('W'), aa.code('N')), -4);
  EXPECT_EQ(protein.max_positive(), 11u);
  EXPECT_EQ(protein.max_negative(), 4u);
  // Symmetric, as a substitution matrix must be.
  for (std::uint8_t a = 0; a < 20; ++a)
    for (std::uint8_t b = 0; b < 20; ++b)
      EXPECT_EQ(protein.substitution(a, b), protein.substitution(b, a));
}

TEST(ScoringScheme, ValidateNamesTheOffendingField) {
  ScoringScheme zero_open;
  zero_open.gap_open = 0;
  util::Status s = validate_scheme(zero_open, "cfg.scheme");
  EXPECT_EQ(s.code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(s.message().find("cfg.scheme.gap_open"), std::string::npos);

  ScoringScheme zero_extend = affine_scheme(3, 1);
  zero_extend.gap_extend = 0;
  s = validate_scheme(zero_extend);
  EXPECT_EQ(s.code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(s.message().find("gap_extend"), std::string::npos);

  // Opening a gap cannot be cheaper than extending one.
  s = validate_scheme(affine_scheme(2, 5));
  EXPECT_EQ(s.code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(s.message().find("gap_extend"), std::string::npos);

  ScoringScheme zero_match;
  zero_match.match = 0;
  s = validate_scheme(zero_match);
  EXPECT_EQ(s.code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(s.message().find("match"), std::string::npos);
}

TEST(ScoringScheme, ValidateChecksMatrixShapeAndContent) {
  ScoringScheme bad_shape;
  bad_shape.matrix = std::make_shared<const SubstitutionMatrix>(
      "truncated", "abc", std::vector<std::int8_t>{1, 2, 3});
  util::Status s = validate_scheme(bad_shape);
  EXPECT_EQ(s.code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(s.message().find("matrix shape"), std::string::npos);

  ScoringScheme no_positive;
  no_positive.matrix = std::make_shared<const SubstitutionMatrix>(
      "hopeless", "ab", std::vector<std::int8_t>{-1, -1, -1, -1});
  s = validate_scheme(no_positive);
  EXPECT_EQ(s.code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(s.message().find("positive entry"), std::string::npos);

  EXPECT_TRUE(validate_scheme(blosum62_affine()).ok());
  EXPECT_TRUE(validate_scheme(ScoringScheme{}).ok());
}

TEST(ScoringScheme, SchemeNameIsHumanReadable) {
  EXPECT_EQ(scheme_name(ScoringScheme{}), "linear/match-mismatch");
  EXPECT_EQ(scheme_name(affine_scheme(3, 1)), "affine/match-mismatch");
  EXPECT_EQ(scheme_name(blosum62_affine()), "affine/blosum62");
}

TEST(ScoringScheme, RequiredSlicesCoverScoreRangeAndConstants) {
  // Uniform DNA: match drives the growth bound, same as required_slices.
  ScoringScheme uniform;  // match = 2
  EXPECT_EQ(scheme_required_slices(uniform, 8, 100),
            required_slices(ScoreParams{2, 1, 1}, 8, 100));
  // BLOSUM62: growth bound 11 * min(m, n); gap/entry constants fit too.
  const ScoringScheme protein = blosum62_affine();
  const unsigned s = scheme_required_slices(protein, 10, 50);
  EXPECT_GE(std::uint64_t{1} << s, std::uint64_t{11} * 10);
  // Overflow of the 32-slice budget is refused, not wrapped.
  EXPECT_THROW((void)scheme_required_slices(protein, 1u << 30, 1u << 30),
               std::invalid_argument);
}

TEST(SchemeFingerprint, ExpressibleSchemesHashLikeParams) {
  // The resume-compatibility contract: checkpoint streams and request
  // journals written under plain ScoreParams must keep replaying.
  const ScoreParams params{2, 1, 3};
  EXPECT_EQ(fingerprint_scheme(ScoringScheme::from_params(params)),
            fingerprint_params(params));
}

TEST(SchemeFingerprint, DistinguishesGapModelsAndMatrixBytes) {
  const ScoringScheme linear;  // expressible
  const ScoringScheme affine = affine_scheme(1, 1);
  // Same magnitudes, different gap model: must not collide.
  EXPECT_NE(fingerprint_scheme(linear), fingerprint_scheme(affine));
  EXPECT_NE(fingerprint_scheme(affine_scheme(3, 1)),
            fingerprint_scheme(affine_scheme(3, 2)));

  // A single changed matrix cell is a different scheme.
  ScoringScheme blosum = blosum62_affine();
  std::vector<std::int8_t> tweaked = blosum62()->entries();
  tweaked[0] = static_cast<std::int8_t>(tweaked[0] + 1);
  ScoringScheme mutant = blosum;
  mutant.matrix = std::make_shared<const SubstitutionMatrix>(
      "blosum62", blosum62()->symbols(), std::move(tweaked));
  EXPECT_NE(fingerprint_scheme(blosum), fingerprint_scheme(mutant));

  // And the fingerprint chains the incoming hash.
  EXPECT_NE(fingerprint_scheme(blosum, 1), fingerprint_scheme(blosum, 2));
}

}  // namespace
}  // namespace swbpbc::sw
