// Randomized cross-checks of the bitwise ScoringScheme kernels against
// the scalar Gotoh references: affine gaps and substitution-matrix lookup
// over DNA and protein alphabets, at every lane width (64/128/256/512 and
// the forced-scalar wide representation), through the host backend, the
// chunked screening pipeline, the database-store serve path (including
// corruption quarantine + re-ingest), and the device wavefront engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "db/builder.hpp"
#include "db/reader.hpp"
#include "device/engine.hpp"
#include "device/fault.hpp"
#include "encoding/random.hpp"
#include "sw/backend.hpp"
#include "sw/pipeline.hpp"
#include "sw/scalar.hpp"
#include "sw/scheme_aligner.hpp"
#include "sw/scoring.hpp"
#include "util/rng.hpp"

namespace swbpbc::sw {
namespace {

using encoding::GenericSequence;
using encoding::Sequence;

const LaneWidth kAllWidths[] = {LaneWidth::k64, LaneWidth::k128,
                                LaneWidth::k256, LaneWidth::k512,
                                LaneWidth::kScalarWide};

GenericSequence random_generic(util::Xoshiro256& rng, std::size_t len,
                               std::size_t sigma) {
  GenericSequence s(len);
  for (auto& c : s) c = static_cast<std::uint8_t>(rng.below(sigma));
  return s;
}

std::vector<GenericSequence> random_batch(util::Xoshiro256& rng,
                                          std::size_t count, std::size_t len,
                                          std::size_t sigma) {
  std::vector<GenericSequence> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k)
    out.push_back(random_generic(rng, len, sigma));
  return out;
}

ScoringScheme dna_affine(std::uint32_t open = 3, std::uint32_t extend = 1) {
  ScoringScheme s;
  s.gap_model = GapModel::kAffine;
  s.gap_open = open;
  s.gap_extend = extend;
  return s;
}

ScoringScheme protein_blosum62(GapModel gaps = GapModel::kAffine) {
  ScoringScheme s;
  s.matrix = blosum62();
  s.gap_model = gaps;
  s.gap_open = gaps == GapModel::kAffine ? 11 : 4;
  s.gap_extend = 1;
  return s;
}

std::vector<std::uint32_t> scalar_reference(
    const std::vector<GenericSequence>& xs,
    const std::vector<GenericSequence>& ys, const ScoringScheme& scheme) {
  std::vector<std::uint32_t> out(xs.size());
  for (std::size_t k = 0; k < xs.size(); ++k)
    out[k] = scheme_max_score(xs[k], ys[k], scheme);
  return out;
}

void expect_cross_width_identity(const std::vector<GenericSequence>& xs,
                                 const std::vector<GenericSequence>& ys,
                                 const ScoringScheme& scheme,
                                 const std::string& what) {
  const std::vector<std::uint32_t> want = scalar_reference(xs, ys, scheme);
  for (LaneWidth width : kAllWidths) {
    auto got = try_scheme_max_scores(xs, ys, scheme, width);
    ASSERT_TRUE(got.has_value())
        << what << " @ " << lane_width_name(width) << ": "
        << got.status().to_string();
    EXPECT_EQ(*got, want) << what << " @ " << lane_width_name(width);
  }
}

TEST(SchemeCross, DnaAffineMatchesScalarGotohAtEveryWidth) {
  util::Xoshiro256 rng(101);
  // 70 pairs spans two 32-lane groups even at k32 and a partial group at
  // every width; lengths exercise multi-slice carries.
  const auto xs = random_batch(rng, 70, 9, 4);
  const auto ys = random_batch(rng, 70, 33, 4);
  expect_cross_width_identity(xs, ys, dna_affine(3, 1), "dna affine 3/1");
  expect_cross_width_identity(xs, ys, dna_affine(5, 2), "dna affine 5/2");
  // open == extend degenerates to linear costs; still the Gotoh circuit.
  expect_cross_width_identity(xs, ys, dna_affine(2, 2), "dna affine 2/2");
}

TEST(SchemeCross, ProteinBlosum62MatchesScalarAtEveryWidth) {
  util::Xoshiro256 rng(202);
  const auto xs = random_batch(rng, 70, 8, 20);
  const auto ys = random_batch(rng, 70, 24, 20);
  expect_cross_width_identity(xs, ys, protein_blosum62(GapModel::kAffine),
                              "blosum62 affine");
  expect_cross_width_identity(xs, ys, protein_blosum62(GapModel::kLinear),
                              "blosum62 linear");
}

TEST(SchemeCross, ExpressibleSchemeIsBitIdenticalToLegacyKernels) {
  util::Xoshiro256 rng(303);
  const std::size_t count = 70;
  const auto xs_dna = encoding::random_sequences(rng, count, 10);
  const auto ys_dna = encoding::random_sequences(rng, count, 40);
  const auto as_generic = [](const encoding::Sequence& seq) {
    GenericSequence out;
    out.reserve(seq.size());
    for (encoding::Base b : seq)
      out.push_back(static_cast<std::uint8_t>(b));
    return out;
  };
  std::vector<GenericSequence> xs, ys;
  for (std::size_t k = 0; k < count; ++k) {
    xs.push_back(as_generic(xs_dna[k]));
    ys.push_back(as_generic(ys_dna[k]));
  }
  const ScoreParams params{2, 1, 1};
  const ScoringScheme scheme = ScoringScheme::from_params(params);
  for (LaneWidth width : kAllWidths) {
    auto got = try_scheme_max_scores(xs, ys, scheme, width);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, bpbc_max_scores(xs_dna, ys_dna, params, width))
        << lane_width_name(width);
  }
}

TEST(SchemeCross, ParallelModeMatchesSerial) {
  util::Xoshiro256 rng(404);
  const auto xs = random_batch(rng, 200, 8, 20);
  const auto ys = random_batch(rng, 200, 20, 20);
  const ScoringScheme scheme = protein_blosum62();
  auto serial = try_scheme_max_scores(xs, ys, scheme, LaneWidth::k64,
                                      bulk::Mode::kSerial);
  auto parallel = try_scheme_max_scores(xs, ys, scheme, LaneWidth::k64,
                                        bulk::Mode::kParallel);
  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(parallel.has_value());
  EXPECT_EQ(*serial, *parallel);
}

TEST(SchemeCross, TypedErrorsNameTheDefect) {
  const ScoringScheme scheme = protein_blosum62();
  std::vector<GenericSequence> xs = {{0, 1, 2}};
  std::vector<GenericSequence> ys = {{3, 4, 5, 6}};

  // Out-of-alphabet code (20 alphabet symbols, code 25 is garbage).
  std::vector<GenericSequence> bad_ys = {{3, 25, 5, 6}};
  auto r = try_scheme_max_scores(xs, bad_ys, scheme);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(r.status().message().find("alphabet"), std::string::npos);

  // Count mismatch.
  std::vector<GenericSequence> extra = {{0, 1, 2}, {0, 1, 2}};
  r = try_scheme_max_scores(extra, ys, scheme);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidInput);

  // Non-uniform lengths.
  std::vector<GenericSequence> xs2 = {{0, 1, 2}, {0, 1}};
  std::vector<GenericSequence> ys2 = {{3, 4}, {3, 4}};
  r = try_scheme_max_scores(xs2, ys2, scheme);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidInput);

  // An invalid scheme is refused before any kernel runs.
  ScoringScheme invalid = dna_affine(1, 3);  // extend > open
  std::vector<GenericSequence> dx = {{0, 1}};
  std::vector<GenericSequence> dy = {{2, 3}};
  r = try_scheme_max_scores(dx, dy, invalid);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidInput);
}

TEST(SchemeCross, ScreenPipelineRunsAffineSchemeChunked) {
  // The DNA screening pipeline accepts uniform affine schemes end to end:
  // chunked runs match the unchunked host path and the scalar reference.
  util::Xoshiro256 rng(505);
  const auto xs = encoding::random_sequences(rng, 150, 9);
  const auto ys = encoding::random_sequences(rng, 150, 30);
  const ScoringScheme scheme = dna_affine(3, 1);

  ScreenConfig cfg;
  cfg.scheme = scheme;
  cfg.threshold = 10;
  auto whole = try_screen(xs, ys, cfg);
  ASSERT_TRUE(whole.has_value()) << whole.status().to_string();

  for (std::size_t k = 0; k < xs.size(); ++k)
    EXPECT_EQ(whole->scores[k], scheme_max_score(xs[k], ys[k], scheme))
        << "pair " << k;
  // Hits carry the affine traceback detail (score equals the screen).
  for (const ScreenHit& hit : whole->hits) {
    EXPECT_TRUE(hit.detailed);
    EXPECT_EQ(hit.detail.score, whole->scores[hit.index]);
  }

  ScreenConfig chunked = cfg;
  chunked.chunk_pairs = 64;
  auto parts = try_screen(xs, ys, chunked);
  ASSERT_TRUE(parts.has_value());
  EXPECT_EQ(parts->scores, whole->scores);

  // Self-check enabled: the verifier's scalar reference is the Gotoh
  // scheme path, so a healthy run verifies clean with zero mismatches.
  ScreenConfig checked = chunked;
  checked.check.enabled = true;
  checked.check.sample_every = 8;
  auto verified = try_screen(xs, ys, checked);
  ASSERT_TRUE(verified.has_value()) << verified.status().to_string();
  EXPECT_EQ(verified->scores, whole->scores);
  EXPECT_EQ(verified->reliability.mismatches_detected, 0u);
  EXPECT_GT(verified->reliability.lanes_verified, 0u);
}

TEST(SchemeCross, ScreenRejectsMatrixSchemeTyped) {
  util::Xoshiro256 rng(606);
  const auto xs = encoding::random_sequences(rng, 4, 6);
  const auto ys = encoding::random_sequences(rng, 4, 12);
  ScreenConfig cfg;
  cfg.scheme = protein_blosum62();
  auto r = try_screen(xs, ys, cfg);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(r.status().message().find("try_scheme_max_scores"),
            std::string::npos);
}

// --- database-store serve path -----------------------------------------

struct DbFixture {
  GenericSequence query;
  std::vector<GenericSequence> entries;
  std::string path;
};

DbFixture make_protein_db(const std::string& name, std::size_t count,
                          std::size_t m, std::size_t n,
                          std::uint64_t seed = 808) {
  util::Xoshiro256 rng(seed);
  DbFixture f;
  f.query = random_generic(rng, m, 20);
  f.entries = random_batch(rng, count, n, 20);
  f.path = testing::TempDir() + "swbpbc_scheme_" + name;
  EXPECT_TRUE(db::build_generic_database(f.entries, 5, f.path).ok());
  return f;
}

TEST(SchemeDb, ServesProteinStoreBitIdenticallyAtEveryWidth) {
  const DbFixture f = make_protein_db("widths.swdb", 190, 11, 28);
  const ScoringScheme scheme = protein_blosum62();
  const std::vector<GenericSequence> xs(f.entries.size(), f.query);
  const std::vector<std::uint32_t> want =
      scalar_reference(xs, f.entries, scheme);

  for (LaneWidth width : kAllWidths) {
    auto reader = db::Reader::open(f.path);
    ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
    SchemeDbStats stats;
    auto got = try_scheme_db_max_scores(f.query, *reader, scheme, width,
                                        bulk::Mode::kSerial, {}, &stats);
    ASSERT_TRUE(got.has_value())
        << lane_width_name(width) << ": " << got.status().to_string();
    EXPECT_EQ(*got, want) << lane_width_name(width);
    EXPECT_GT(stats.shards_served, 0u);
    EXPECT_EQ(stats.shards_quarantined, 0u);
  }
  std::remove(f.path.c_str());
}

TEST(SchemeDb, QuarantinesCorruptShardAndReingestsFromCorpus) {
  const DbFixture f = make_protein_db("rot.swdb", 192, 10, 26);
  const ScoringScheme scheme = protein_blosum62();
  const std::vector<GenericSequence> xs(f.entries.size(), f.query);
  const std::vector<std::uint32_t> want =
      scalar_reference(xs, f.entries, scheme);

  // On-disk rot inside shard 1's payload.
  ASSERT_TRUE(db::corrupt_shard_for_testing(f.path, 1, 7, 3).ok());

  // With the corpus on hand the damaged 64-entry slice re-ingests in
  // memory and the run stays bit-identical.
  {
    auto reader = db::Reader::open(f.path);
    ASSERT_TRUE(reader.has_value());
    SchemeDbStats stats;
    auto got = try_scheme_db_max_scores(f.query, *reader, scheme,
                                        LaneWidth::k64, bulk::Mode::kSerial,
                                        f.entries, &stats);
    ASSERT_TRUE(got.has_value()) << got.status().to_string();
    EXPECT_EQ(*got, want);
    EXPECT_EQ(stats.shards_quarantined, 1u);
    EXPECT_EQ(stats.shards_reingested, 1u);
  }
  // Without a corpus the damage is a typed kDbCorrupt, not wrong scores.
  {
    auto reader = db::Reader::open(f.path);
    ASSERT_TRUE(reader.has_value());
    auto got = try_scheme_db_max_scores(f.query, *reader, scheme,
                                        LaneWidth::k64);
    ASSERT_FALSE(got.has_value());
    EXPECT_EQ(got.status().code(), util::ErrorCode::kDbCorrupt);
  }
  std::remove(f.path.c_str());
}

TEST(SchemeDb, RejectsPlaneCountMismatchTyped) {
  // A 2-plane DNA store cannot serve a 5-plane protein scheme.
  util::Xoshiro256 rng(909);
  const auto dna = encoding::random_sequences(rng, 64, 20);
  const std::string path = testing::TempDir() + "swbpbc_scheme_planes.swdb";
  ASSERT_TRUE(db::build_database(dna, path).ok());
  auto reader = db::Reader::open(path);
  ASSERT_TRUE(reader.has_value());
  const GenericSequence query = random_generic(rng, 8, 20);
  auto got = try_scheme_db_max_scores(query, *reader, protein_blosum62());
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.status().code(), util::ErrorCode::kDbMismatch);
  std::remove(path.c_str());
}

// --- device wavefront engine -------------------------------------------

TEST(SchemeEngine, AffineWavefrontMatchesScalarGotoh) {
  util::Xoshiro256 rng(111);
  const auto xs = encoding::random_sequences(rng, 130, 8);
  const auto ys = encoding::random_sequences(rng, 130, 24);
  const ScoringScheme scheme = dna_affine(3, 1);

  device::EngineOptions options;
  options.scheme = scheme;
  options.width = LaneWidth::k64;
  device::PipelineEngine engine(options);

  sw::ChunkJob job;
  job.xs = xs;
  job.ys = ys;
  const sw::ChunkResult result = engine.run(job);
  ASSERT_EQ(result.scores.size(), xs.size());
  for (std::size_t k = 0; k < xs.size(); ++k)
    EXPECT_EQ(result.scores[k], scheme_max_score(xs[k], ys[k], scheme))
        << "pair " << k;
}

TEST(SchemeEngine, OverlappedAffineIsBitIdenticalUnderFaults) {
  util::Xoshiro256 rng(222);
  const auto xs = encoding::random_sequences(rng, 256, 8);
  const auto ys = encoding::random_sequences(rng, 256, 20);
  const ScoringScheme scheme = dna_affine(4, 2);

  device::FaultConfig fc;
  fc.seed = 33;
  fc.flip_probability = 0.01;
  fc.copy_flip_probability = 0.005;
  device::FaultInjector faults(fc);
  device::IntegrityConfig integ;
  integ.enabled = true;
  integ.sample_every = 4;
  integ.canary_lanes = true;
  integ.checksum_copies = true;

  auto run_screen = [&](std::size_t depth) {
    device::EngineOptions options;
    options.scheme = scheme;
    options.width = LaneWidth::k64;
    options.faults = &faults;
    options.integrity = integ;
    options.overlap_depth = depth;
    device::PipelineEngine engine(options);
    ScreenConfig cfg;
    cfg.scheme = scheme;
    cfg.backend_v2 = &engine;
    cfg.chunk_pairs = 64;
    cfg.overlap_depth = depth;
    cfg.traceback = false;
    cfg.threshold = ~std::uint32_t{0};
    // A 64-pair chunk fills the k64 lane group exactly, so no spare lanes
    // exist for canaries and an in-kernel flip can slip past the engine's
    // own checks — the scheme-aware host self-check is the last line.
    cfg.check.enabled = true;
    cfg.check.sample_every = 1;
    cfg.check.max_retries = 8;
    cfg.check.backoff_base_ms = 0.0;
    return try_screen(xs, ys, cfg);
  };

  auto serial = run_screen(1);
  auto overlapped = run_screen(3);
  ASSERT_TRUE(serial.has_value()) << serial.status().to_string();
  ASSERT_TRUE(overlapped.has_value()) << overlapped.status().to_string();
  // The fault campaign derives from (chunk, attempt), so the overlapped
  // affine run retries identically and lands on the same scores — which
  // are the scalar Gotoh scores, faults notwithstanding.
  EXPECT_EQ(serial->scores, overlapped->scores);
  for (std::size_t k = 0; k < xs.size(); ++k)
    EXPECT_EQ(serial->scores[k], scheme_max_score(xs[k], ys[k], scheme))
        << "pair " << k;
}

TEST(SchemeEngine, ExpressibleSchemeLowersOntoLegacyEnginePath) {
  util::Xoshiro256 rng(333);
  const auto xs = encoding::random_sequences(rng, 70, 8);
  const auto ys = encoding::random_sequences(rng, 70, 20);
  const ScoreParams params{2, 1, 1};

  device::EngineOptions legacy;
  legacy.params = params;
  device::PipelineEngine a(legacy);

  device::EngineOptions scheme_opts;
  scheme_opts.scheme = ScoringScheme::from_params(params);
  device::PipelineEngine b(scheme_opts);

  sw::ChunkJob job;
  job.xs = xs;
  job.ys = ys;
  EXPECT_EQ(a.run(job).scores, b.run(job).scores);
}

TEST(SchemeEngine, RejectsMatrixSchemeTyped) {
  device::EngineOptions options;
  options.scheme = protein_blosum62();
  try {
    device::PipelineEngine engine(options);
    FAIL() << "matrix scheme must not construct a device engine";
  } catch (const util::StatusError& e) {
    EXPECT_EQ(e.status().code(), util::ErrorCode::kInvalidInput);
    EXPECT_NE(e.status().message().find("try_scheme_max_scores"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace swbpbc::sw
