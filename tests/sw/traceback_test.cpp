// BPBC traceback: direction matrices + bit-sliced argmax must reproduce
// the scalar aligner's alignments exactly (same tie-breaking).
#include <gtest/gtest.h>

#include "encoding/random.hpp"
#include "sw/traceback.hpp"

namespace swbpbc::sw {
namespace {

void expect_same_alignment(const Alignment& a, const Alignment& b,
                           std::size_t k) {
  EXPECT_EQ(a.score, b.score) << "pair " << k;
  EXPECT_EQ(a.x_begin, b.x_begin) << "pair " << k;
  EXPECT_EQ(a.x_end, b.x_end) << "pair " << k;
  EXPECT_EQ(a.y_begin, b.y_begin) << "pair " << k;
  EXPECT_EQ(a.y_end, b.y_end) << "pair " << k;
  EXPECT_EQ(a.x_row, b.x_row) << "pair " << k;
  EXPECT_EQ(a.mid_row, b.mid_row) << "pair " << k;
  EXPECT_EQ(a.y_row, b.y_row) << "pair " << k;
}

TEST(BpbcTraceback, PaperExampleAlignment) {
  const std::vector<encoding::Sequence> xs(
      32, encoding::sequence_from_string("TACTG"));
  const std::vector<encoding::Sequence> ys(
      32, encoding::sequence_from_string("GAACTGA"));
  const auto alignments = bpbc_align(xs, ys, {2, 1, 1}, LaneWidth::k32);
  ASSERT_EQ(alignments.size(), 32u);
  for (const Alignment& a : alignments) {
    EXPECT_EQ(a.score, 8u);
    EXPECT_EQ(a.x_row, "ACTG");
    EXPECT_EQ(a.y_row, "ACTG");
  }
}

class TracebackVsScalar
    : public ::testing::TestWithParam<std::tuple<int, LaneWidth>> {};

TEST_P(TracebackVsScalar, AlignmentsIdenticalToScalar) {
  const auto [seed, width] = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  const std::size_t count = 48, m = 11, n = 37;
  auto xs = encoding::random_sequences(rng, count, m);
  auto ys = encoding::random_sequences(rng, count, n);
  for (std::size_t k = 0; k < count; k += 3) {
    auto noisy = encoding::mutate(xs[k], 0.15, rng);
    encoding::plant_motif(ys[k], noisy, k % (n - m));
  }
  const ScoreParams params{2, 1, 1};
  const auto bpbc = bpbc_align(xs, ys, params, width);
  ASSERT_EQ(bpbc.size(), count);
  for (std::size_t k = 0; k < count; ++k) {
    expect_same_alignment(bpbc[k], align(xs[k], ys[k], params), k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWidths, TracebackVsScalar,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(LaneWidth::k32, LaneWidth::k64)));

TEST(BpbcTraceback, DirectionMatrixProperties) {
  util::Xoshiro256 rng(77);
  const std::size_t m = 8, n = 20;
  const auto xs = encoding::random_sequences(rng, 32, m);
  const auto ys = encoding::random_sequences(rng, 32, n);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  const ScoreParams params{2, 1, 1};
  const auto tb =
      bpbc_traceback_matrices<std::uint32_t>(bx.groups[0], by.groups[0],
                                             params);
  ASSERT_EQ(tb.m, m);
  ASSERT_EQ(tb.n, n);
  for (std::size_t lane = 0; lane < 32; ++lane) {
    const ScoreMatrix d = score_matrix(xs[lane], ys[lane], params);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const unsigned dir = tb.direction(lane, i, j);
        // Stop exactly where the scoring matrix is zero.
        EXPECT_EQ(dir == 0, d.at(i + 1, j + 1) == 0)
            << "lane " << lane << " cell " << i << "," << j;
      }
    }
    // The argmax matches the scalar matrix maximum (first in row-major).
    std::uint32_t best = 0;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 1; i <= m; ++i) {
      for (std::size_t j = 1; j <= n; ++j) {
        if (d.at(i, j) > best) {
          best = d.at(i, j);
          bi = i - 1;
          bj = j - 1;
        }
      }
    }
    EXPECT_EQ(tb.best_score[lane], best) << "lane " << lane;
    if (best > 0) {
      EXPECT_EQ(tb.best_i[lane], bi) << "lane " << lane;
      EXPECT_EQ(tb.best_j[lane], bj) << "lane " << lane;
    }
  }
}

TEST(BpbcTraceback, AllMismatchGivesEmptyAlignments) {
  const std::vector<encoding::Sequence> xs(
      32, encoding::sequence_from_string("AAAA"));
  const std::vector<encoding::Sequence> ys(
      32, encoding::sequence_from_string("CCCCCCCC"));
  const auto alignments = bpbc_align(xs, ys, {2, 1, 1});
  for (const Alignment& a : alignments) {
    EXPECT_EQ(a.score, 0u);
    EXPECT_TRUE(a.x_row.empty());
  }
}

TEST(BpbcTraceback, PartialGroupAndMultiGroup) {
  util::Xoshiro256 rng(88);
  const std::size_t count = 37;  // 2 groups of 32 lanes, second partial
  auto xs = encoding::random_sequences(rng, count, 7);
  auto ys = encoding::random_sequences(rng, count, 25);
  const ScoreParams params{2, 1, 1};
  const auto bpbc = bpbc_align(xs, ys, params, LaneWidth::k32);
  ASSERT_EQ(bpbc.size(), count);
  for (std::size_t k = 0; k < count; ++k) {
    expect_same_alignment(bpbc[k], align(xs[k], ys[k], params), k);
  }
}

TEST(BpbcTraceback, GapAlignmentsReproduced) {
  // Pairs engineered to require gaps in the optimal alignment.
  std::vector<encoding::Sequence> xs, ys;
  for (int k = 0; k < 32; ++k) {
    xs.push_back(encoding::sequence_from_string("ACGGTACG"));
    ys.push_back(encoding::sequence_from_string("TTACGTACGTT"));
  }
  const ScoreParams params{2, 1, 1};
  const auto bpbc = bpbc_align(xs, ys, params);
  for (std::size_t k = 0; k < 32; ++k) {
    expect_same_alignment(bpbc[k], align(xs[k], ys[k], params), k);
  }
}

}  // namespace
}  // namespace swbpbc::sw
