// Wide-lane BPBC bit-identity: the ISSUE's central property. One
// wide_word<256> group is the concatenation of four uint64 lane groups, so
// a 256-lane run must reproduce four independent 64-lane runs bit for bit
// — scores, threshold masks, survivor counts, and the transposed input
// itself — and every dispatched width must agree with the scalar
// reference and with each other.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "bitsim/wide_word.hpp"
#include "device/engine.hpp"
#include "device/fault.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/batch.hpp"
#include "encoding/random.hpp"
#include "sw/bpbc.hpp"
#include "sw/lane.hpp"
#include "sw/scalar.hpp"
#include "util/status.hpp"

namespace swbpbc::sw {
namespace {

using W256 = bitsim::simd_word<256>;

constexpr ScoreParams kParams{2, 1, 1};

const std::vector<LaneWidth> kAllWidths = {
    LaneWidth::k32,  LaneWidth::k64,         LaneWidth::k128,
    LaneWidth::k256, LaneWidth::k512,        LaneWidth::kScalarWide,
    LaneWidth::kAuto};

TEST(WideLane, AllWidthsMatchScalarReference) {
  util::Xoshiro256 rng(100);
  const std::size_t count = 300;  // crosses a 256-lane group boundary
  const auto xs = encoding::random_sequences(rng, count, 9);
  const auto ys = encoding::random_sequences(rng, count, 27);
  for (const LaneWidth width : kAllWidths) {
    const auto scores = bpbc_max_scores(xs, ys, kParams, width);
    ASSERT_EQ(scores.size(), count) << lane_width_name(width);
    for (std::size_t k = 0; k < count; ++k) {
      ASSERT_EQ(scores[k], max_score(xs[k], ys[k], kParams))
          << lane_width_name(width) << " instance " << k;
    }
  }
}

TEST(WideLane, AllWidthsProduceIdenticalScoreVectors) {
  util::Xoshiro256 rng(101);
  // 517 = two full 256-lane groups plus a 5-lane tail: exercises tail
  // masking at every width.
  const auto fxs = encoding::random_sequences(rng, 517, 12);
  const auto fys = encoding::random_sequences(rng, 517, 31);
  const auto base = bpbc_max_scores(fxs, fys, kParams, LaneWidth::k64);
  for (const LaneWidth width : kAllWidths) {
    EXPECT_EQ(bpbc_max_scores(fxs, fys, kParams, width), base)
        << lane_width_name(width);
  }
}

// One 256-lane group vs its four 64-lane sub-groups: the transposed
// input, the score slices, the threshold masks, and the survivor counts
// must all decompose limb-for-limb.
TEST(WideLane, Wide256RunDecomposesIntoFourUint64LaneGroups) {
  util::Xoshiro256 rng(102);
  const std::size_t m = 10, n = 22;
  const auto xs = encoding::random_sequences(rng, 256, m);
  const auto ys = encoding::random_sequences(rng, 256, n);

  const auto wide_x = encoding::transpose_strings<W256>(xs);
  const auto wide_y = encoding::transpose_strings<W256>(ys);
  ASSERT_EQ(wide_x.groups.size(), 1u);

  const BpbcAligner<W256> wide(kParams, m, n);
  std::vector<W256> wide_slices(wide.slices());
  wide.max_score_slices(wide_x.groups[0], wide_y.groups[0],
                        std::span<W256>(wide_slices));
  const auto wide_scores =
      wide.max_scores(wide_x.groups[0], wide_y.groups[0]);

  const BpbcAligner<std::uint64_t> narrow(kParams, m, n);
  for (unsigned t = 0; t < 4; ++t) {
    const std::span<const encoding::Sequence> sub_x(xs.data() + 64 * t, 64);
    const std::span<const encoding::Sequence> sub_y(ys.data() + 64 * t, 64);
    const auto nx = encoding::transpose_strings<std::uint64_t>(sub_x);
    const auto ny = encoding::transpose_strings<std::uint64_t>(sub_y);

    // W2B decomposition: limb t of the wide planes is the sub-group.
    for (std::size_t i = 0; i < m; ++i) {
      ASSERT_EQ(bitsim::get_limb(wide_x.groups[0].hi[i], t),
                nx.groups[0].hi[i])
          << "x hi limb " << t << " char " << i;
      ASSERT_EQ(bitsim::get_limb(wide_x.groups[0].lo[i], t),
                nx.groups[0].lo[i]);
    }

    std::vector<std::uint64_t> narrow_slices(narrow.slices());
    narrow.max_score_slices(nx.groups[0], ny.groups[0],
                            std::span<std::uint64_t>(narrow_slices));
    ASSERT_EQ(narrow.slices(), wide.slices());
    for (unsigned l = 0; l < narrow.slices(); ++l) {
      ASSERT_EQ(bitsim::get_limb(wide_slices[l], t), narrow_slices[l])
          << "slice " << l << " limb " << t;
    }

    const auto narrow_scores =
        narrow.max_scores(nx.groups[0], ny.groups[0]);
    for (unsigned lane = 0; lane < 64; ++lane) {
      ASSERT_EQ(wide_scores[64 * t + lane], narrow_scores[lane]);
    }

    for (std::uint32_t tau : {0u, 7u, 13u, 20u}) {
      const W256 wide_mask = wide.threshold_mask(
          std::span<const W256>(wide_slices), tau);
      const std::uint64_t narrow_mask = narrow.threshold_mask(
          std::span<const std::uint64_t>(narrow_slices), tau);
      EXPECT_EQ(bitsim::get_limb(wide_mask, t), narrow_mask)
          << "tau " << tau << " limb " << t;
    }
  }

  // Survivor counting stays generic past 64 lanes (satellite b): the wide
  // popcount equals the sum over sub-groups, checked via the scores.
  for (std::uint32_t tau : {0u, 7u, 13u, 20u}) {
    unsigned expected = 0;
    for (auto sc : wide_scores) expected += sc >= tau ? 1u : 0u;
    EXPECT_EQ(
        wide.threshold_count(std::span<const W256>(wide_slices), tau),
        expected)
        << "tau " << tau;
  }
}

TEST(WideLane, ScalarWideFallbackMatchesSimd) {
  util::Xoshiro256 rng(103);
  const auto xs = encoding::random_sequences(rng, 130, 7);
  const auto ys = encoding::random_sequences(rng, 130, 19);
  EXPECT_EQ(bpbc_max_scores(xs, ys, kParams, LaneWidth::kScalarWide),
            bpbc_max_scores(xs, ys, kParams, LaneWidth::k256));
}

TEST(WideLane, ResolveAndParse) {
  // kAuto resolves to a concrete width; concrete widths resolve to
  // themselves (absent the env override, which tests must not set).
  const LaneWidth resolved = resolve_lane_width(LaneWidth::kAuto);
  EXPECT_NE(resolved, LaneWidth::kAuto);
  EXPECT_EQ(resolve_lane_width(LaneWidth::k128), LaneWidth::k128);
  EXPECT_EQ(lane_width_bits(LaneWidth::k512), 512u);
  EXPECT_EQ(lane_width_bits(LaneWidth::kScalarWide), 256u);
  EXPECT_EQ(parse_lane_width("256"), LaneWidth::k256);
  EXPECT_EQ(parse_lane_width("scalar-wide"), LaneWidth::kScalarWide);
  EXPECT_EQ(parse_lane_width("auto"), LaneWidth::kAuto);
  EXPECT_FALSE(parse_lane_width("banana").has_value());
}

// Device pipeline at wide widths: one-shot driver and engine agree with
// the host path, and overlapped execution stays bit-identical to serial
// under fault injection (the engine's determinism contract, now at 256
// lanes).
TEST(WideLane, DevicePipelineWide256MatchesHost) {
  util::Xoshiro256 rng(104);
  const auto xs = encoding::random_sequences(rng, 300, 8);
  const auto ys = encoding::random_sequences(rng, 300, 16);
  const auto host = bpbc_max_scores(xs, ys, kParams, LaneWidth::k256);
  const auto gpu =
      device::gpu_bpbc_max_scores(xs, ys, kParams, LaneWidth::k256);
  EXPECT_EQ(gpu.scores, host);

  device::EngineOptions opts;
  opts.params = kParams;
  opts.width = LaneWidth::k256;
  device::PipelineEngine engine(opts);
  EXPECT_EQ(engine.caps().lane_width, LaneWidth::k256);
  ChunkJob job;
  job.xs = xs;
  job.ys = ys;
  EXPECT_EQ(engine.run(job).scores, host);
}

TEST(WideLane, OverlappedWide256BitIdenticalToSerialUnderFaults) {
  util::Xoshiro256 rng(105);
  const auto xs = encoding::random_sequences(rng, 96, 8);
  const auto ys = encoding::random_sequences(rng, 96, 12);

  device::FaultConfig fc;
  fc.seed = 77;
  fc.flip_probability = 0.01;
  fc.copy_flip_probability = 0.005;

  const auto run_chunks = [&](bool overlapped) {
    device::FaultInjector faults(fc);
    device::EngineOptions opts;
    opts.params = kParams;
    opts.width = LaneWidth::k256;
    opts.faults = &faults;
    opts.integrity.enabled = true;
    opts.integrity.canary_lanes = true;
    opts.integrity.checksum_copies = true;
    opts.overlap_depth = overlapped ? 3 : 1;
    device::PipelineEngine engine(opts);
    std::vector<std::vector<std::uint32_t>> out;
    for (std::size_t c = 0; c < 4; ++c) {
      ChunkJob job;
      job.chunk = c;
      job.xs = std::span<const encoding::Sequence>(xs).subspan(24 * c, 24);
      job.ys = std::span<const encoding::Sequence>(ys).subspan(24 * c, 24);
      if (overlapped) {
        engine.submit(job);
      } else {
        out.push_back(engine.run(job).scores);
      }
    }
    if (overlapped)
      for (std::size_t c = 0; c < 4; ++c)
        out.push_back(engine.collect().scores);
    return out;
  };

  EXPECT_EQ(run_chunks(true), run_chunks(false));
}

}  // namespace
}  // namespace swbpbc::sw
