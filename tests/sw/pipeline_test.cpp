#include <gtest/gtest.h>

#include "encoding/random.hpp"
#include "sw/pipeline.hpp"

namespace swbpbc::sw {
namespace {

TEST(Pipeline, FindsPlantedMotifsAndOnlyThose) {
  util::Xoshiro256 rng(1234);
  const std::size_t count = 64, m = 16, n = 96;
  const auto xs = encoding::random_sequences(rng, count, m);
  std::vector<encoding::Sequence> ys =
      encoding::random_sequences(rng, count, n);
  // Plant the pattern into every 4th text.
  std::vector<std::size_t> planted;
  for (std::size_t k = 0; k < count; k += 4) {
    encoding::plant_motif(ys[k], xs[k], 20);
    planted.push_back(k);
  }

  ScreenConfig config;
  config.params = {2, 1, 1};
  config.threshold = 2 * static_cast<std::uint32_t>(m) - 4;  // near-perfect
  const ScreenReport report = screen(xs, ys, config);

  ASSERT_EQ(report.scores.size(), count);
  // Every planted pair must be reported as a hit.
  for (std::size_t k : planted) {
    const bool hit = std::any_of(
        report.hits.begin(), report.hits.end(),
        [k](const ScreenHit& h) { return h.index == k; });
    EXPECT_TRUE(hit) << "planted pair " << k << " missed";
  }
  // Hit scores and detailed alignments must agree with the BPBC filter.
  for (const ScreenHit& h : report.hits) {
    EXPECT_GE(h.bpbc_score, config.threshold);
    EXPECT_EQ(h.detail.score, h.bpbc_score)
        << "traceback disagrees with filter for pair " << h.index;
  }
}

TEST(Pipeline, ThresholdZeroSelectsEverything) {
  util::Xoshiro256 rng(7);
  const auto xs = encoding::random_sequences(rng, 8, 6);
  const auto ys = encoding::random_sequences(rng, 8, 18);
  ScreenConfig config;
  config.params = {2, 1, 1};
  config.threshold = 0;
  config.traceback = false;
  const ScreenReport report = screen(xs, ys, config);
  EXPECT_EQ(report.hits.size(), 8u);
  EXPECT_DOUBLE_EQ(report.traceback_ms, 0.0);
}

TEST(Pipeline, ImpossibleThresholdSelectsNothing) {
  util::Xoshiro256 rng(8);
  const auto xs = encoding::random_sequences(rng, 8, 6);
  const auto ys = encoding::random_sequences(rng, 8, 18);
  ScreenConfig config;
  config.params = {2, 1, 1};
  config.threshold = 1000;  // > c1 * m
  const ScreenReport report = screen(xs, ys, config);
  EXPECT_TRUE(report.hits.empty());
}

TEST(Pipeline, Width64AndParallelAgreeWith32Serial) {
  util::Xoshiro256 rng(9);
  const auto xs = encoding::random_sequences(rng, 48, 10);
  const auto ys = encoding::random_sequences(rng, 48, 40);
  ScreenConfig base;
  base.params = {2, 1, 1};
  base.threshold = 10;
  base.traceback = false;
  ScreenConfig alt = base;
  alt.width = LaneWidth::k32;
  alt.mode = bulk::Mode::kSerial;
  ScreenConfig alt2 = base;
  alt2.width = LaneWidth::k64;
  alt2.mode = bulk::Mode::kParallel;
  const auto r1 = screen(xs, ys, alt);
  const auto r2 = screen(xs, ys, alt2);
  EXPECT_EQ(r1.scores, r2.scores);
  EXPECT_EQ(r1.hits.size(), r2.hits.size());
}

}  // namespace
}  // namespace swbpbc::sw
