#include <gtest/gtest.h>

#include "encoding/random.hpp"
#include "sw/wavefront.hpp"

namespace swbpbc::sw {
namespace {

TEST(Wavefront, StepMatchesPaperTable3) {
  // Paper Table III (shifted to 0-based): cell (i, j) is computed at
  // anti-diagonal t = i + j; the first cell at t = 0 and the last at
  // t = m + n - 2.
  EXPECT_EQ(wavefront_step(0, 0), 0u);
  EXPECT_EQ(wavefront_step(0, 6), 6u);   // top-right of the 5x7 example
  EXPECT_EQ(wavefront_step(4, 0), 4u);   // bottom-left
  EXPECT_EQ(wavefront_step(4, 6), 10u);  // bottom-right (t = 10)
  EXPECT_EQ(wavefront_steps(5, 7), 11u);
}

TEST(Wavefront, DependenciesComputedEarlier) {
  for (std::size_t i = 1; i < 8; ++i) {
    for (std::size_t j = 1; j < 8; ++j) {
      EXPECT_LT(wavefront_step(i - 1, j), wavefront_step(i, j));
      EXPECT_LT(wavefront_step(i, j - 1), wavefront_step(i, j));
      EXPECT_LT(wavefront_step(i - 1, j - 1), wavefront_step(i, j));
    }
  }
}

TEST(Wavefront, CellsPartitionTheMatrix) {
  const std::size_t m = 5, n = 7;
  std::vector<std::vector<int>> seen(m, std::vector<int>(n, 0));
  for (std::size_t t = 0; t < wavefront_steps(m, n); ++t) {
    for (const auto& [i, j] : wavefront_cells(m, n, t)) {
      ASSERT_LT(i, m);
      ASSERT_LT(j, n);
      EXPECT_EQ(wavefront_step(i, j), t);
      seen[i][j]++;
    }
  }
  for (const auto& row : seen) {
    for (int c : row) EXPECT_EQ(c, 1);
  }
}

TEST(Wavefront, ParallelWidthBoundedByM) {
  // At most m cells are ever computed in one step (one thread per row).
  const std::size_t m = 6, n = 9;
  std::size_t widest = 0;
  for (std::size_t t = 0; t < wavefront_steps(m, n); ++t) {
    widest = std::max(widest, wavefront_cells(m, n, t).size());
  }
  EXPECT_EQ(widest, m);
}

TEST(Wavefront, MatrixEqualsRowMajorEvaluation) {
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const auto x = encoding::random_sequence(rng, 9);
    const auto y = encoding::random_sequence(rng, 21);
    const ScoreParams params{2, 1, 1};
    const ScoreMatrix a = score_matrix(x, y, params);
    const ScoreMatrix b = score_matrix_wavefront(x, y, params);
    for (std::size_t i = 0; i <= 9; ++i) {
      for (std::size_t j = 0; j <= 21; ++j) {
        ASSERT_EQ(a.at(i, j), b.at(i, j))
            << "trial " << trial << " cell " << i << "," << j;
      }
    }
  }
}

TEST(Wavefront, EmptyMatrix) {
  EXPECT_EQ(wavefront_steps(0, 5), 0u);
  EXPECT_TRUE(wavefront_cells(0, 5, 0).empty());
}

}  // namespace
}  // namespace swbpbc::sw
