// Unit tests for the telemetry core: histogram bucketing and percentile
// math, the span tracer and its Chrome trace_event export, the minimal
// JSON model backing both exporters, and the versioned RunReport
// round-trip (including wrong-schema/wrong-version rejection).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/status.hpp"

namespace swbpbc::telemetry {
namespace {

// --- histogram bucketing and percentiles ---------------------------------

TEST(Histogram, RejectsNonAscendingBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({}), std::invalid_argument);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h({1.0, 2.0});
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.percentile(99), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  ASSERT_EQ(s.buckets.size(), s.bounds.size() + 1);  // implicit overflow
  for (const std::uint64_t b : s.buckets) EXPECT_EQ(b, 0u);
}

TEST(Histogram, SingleSampleIsExactAtEveryPercentile) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(7.25);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 7.25);
  EXPECT_EQ(s.max, 7.25);
  // Clamping to [min, max] makes a single sample exact, not interpolated.
  EXPECT_EQ(s.percentile(0), 7.25);
  EXPECT_EQ(s.percentile(50), 7.25);
  EXPECT_EQ(s.percentile(100), 7.25);
  EXPECT_EQ(s.mean(), 7.25);
}

TEST(Histogram, BucketEdgesCountIntoTheLowerBucket) {
  // Bucket i counts bounds[i-1] < x <= bounds[i]: a sample exactly on a
  // bound belongs to that bound's bucket, not the next one.
  Histogram h({1.0, 2.0, 4.0});
  h.observe(1.0);
  h.observe(2.0);
  h.observe(4.0);
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 0u);
}

TEST(Histogram, OverflowBucketCatchesSamplesAboveTheLastBound) {
  Histogram h({1.0, 2.0});
  h.observe(1000.0);
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_EQ(s.buckets[2], 1u);
  // Percentiles stay finite and exact via the min/max clamp even though
  // the overflow bucket has no upper bound.
  EXPECT_EQ(s.percentile(50), 1000.0);
  EXPECT_EQ(s.max, 1000.0);
}

TEST(Histogram, PercentilesOrderedOnUniformSamples) {
  Histogram h(Histogram::exponential_bounds(1.0, 2.0, 10));
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  const double p50 = s.percentile(50);
  const double p95 = s.percentile(95);
  const double p99 = s.percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, s.min);
  EXPECT_LE(p99, s.max);
  // p50 of 1..100 must land in the right ballpark despite bucketing.
  EXPECT_GT(p50, 25.0);
  EXPECT_LT(p50, 75.0);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Histogram, ExponentialBoundsAreStrictlyAscending) {
  const std::vector<double> b = Histogram::exponential_bounds(0.001, 2.0, 22);
  ASSERT_EQ(b.size(), 22u);
  EXPECT_EQ(b[0], 0.001);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
}

// --- counters, gauges, registry ------------------------------------------

TEST(MetricsRegistry, ReturnsStableReferencesAndSnapshots) {
  MetricsRegistry reg;
  Counter& c = reg.counter("screen.pairs");
  c.add(3);
  reg.counter("screen.pairs").add(2);  // same counter by name
  reg.gauge("screen.gcups").set(1.5);
  reg.histogram("chunk.ms").observe(4.0);
  reg.histogram("chunk.ms").observe(8.0);  // layout fixed by first call

  const MetricsRegistry::Snapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.count("screen.pairs"), 1u);
  EXPECT_EQ(s.counters.at("screen.pairs"), 5u);
  EXPECT_EQ(s.gauges.at("screen.gcups"), 1.5);
  EXPECT_EQ(s.histograms.at("chunk.ms").count, 2u);
  EXPECT_EQ(s.histograms.at("chunk.ms").sum, 12.0);
}

// --- tracer and spans ----------------------------------------------------

TEST(Tracer, SpansRecordWithMonotoneNonNegativeTimestamps) {
  Tracer tracer(64);
  {
    Span outer(&tracer, "outer", "test");
    outer.arg("pairs", 42);
    Span inner(&tracer, "inner", "test", kTrackDevice);
  }
  ASSERT_EQ(tracer.size(), 2u);
  const std::vector<TraceEvent> events = tracer.events();
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  // The outer span encloses the inner one.
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "outer") outer = &e;
    if (std::string(e.name) == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_LE(outer->ts_us, inner->ts_us);
  EXPECT_GE(outer->ts_us + outer->dur_us, inner->ts_us + inner->dur_us);
  EXPECT_EQ(inner->track, kTrackDevice);
  ASSERT_STREQ(outer->arg_names[0], "pairs");
  EXPECT_EQ(outer->arg_values[0], 42);
}

TEST(Tracer, NullTracerSpanIsANoOp) {
  Span s(nullptr, "ghost", "test");
  s.arg("k", 1);
  s.finish();  // must not crash; double-finish below likewise
  s.finish();
}

TEST(Tracer, SpanArgKeepsOnlyFirstTwoArguments) {
  Tracer tracer(4);
  {
    Span s(&tracer, "argful", "test");
    s.arg("a", 1);
    s.arg("b", 2);
    s.arg("c", 3);  // no third slot: silently ignored
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_STREQ(events[0].arg_names[0], "a");
  ASSERT_STREQ(events[0].arg_names[1], "b");
  EXPECT_EQ(events[0].arg_values[0], 1);
  EXPECT_EQ(events[0].arg_values[1], 2);
}

TEST(Tracer, RingOverflowDropsOldestAndCountsTheLoss) {
  Tracer tracer(8);
  for (int i = 0; i < 20; ++i) {
    Span s(&tracer, "tick", "test");
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // The export still parses and reports the loss.
  const auto doc = json::parse(tracer.chrome_trace_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ((*doc)["swbpbc_dropped_events"].number_u64(), 12u);
}

TEST(Tracer, ChromeTraceJsonIsWellFormed) {
  Tracer tracer(64);
  tracer.set_track_name(kTrackScreen, "screen");
  tracer.set_track_name(kTrackDevice, "device");
  {
    Span a(&tracer, "H2G", "device", kTrackDevice);
    a.arg("words", 128);
  }
  { Span b(&tracer, "chunk", "screen"); }

  const std::string text = tracer.chrome_trace_json();
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value()) << doc.status().to_string();
  const json::Value& events = (*doc)["traceEvents"];
  ASSERT_TRUE(events.is_array());

  std::size_t x_events = 0, m_events = 0;
  std::uint64_t last_ts = 0;
  for (const json::Value& e : events.array()) {
    ASSERT_TRUE(e.is_object());
    const std::string& ph = e["ph"].str();
    EXPECT_EQ(e["pid"].number_u64(), 1u);
    if (ph == "M") {
      ++m_events;
      EXPECT_EQ(e["name"].str(), "thread_name");
      continue;
    }
    ASSERT_EQ(ph, "X");  // only complete events
    ++x_events;
    EXPECT_TRUE(e.has("name"));
    EXPECT_TRUE(e.has("cat"));
    ASSERT_TRUE(e["ts"].is_number());
    ASSERT_TRUE(e["dur"].is_number());
    EXPECT_GE(e["ts"].number(), 0.0);
    EXPECT_GE(e["dur"].number(), 0.0);
    EXPECT_GE(e["ts"].number_u64(), last_ts);  // exported in ts order
    last_ts = e["ts"].number_u64();
  }
  EXPECT_EQ(x_events, 2u);
  EXPECT_EQ(m_events, 2u);
}

TEST(Telemetry, DisabledSessionHasNullSink) {
  Telemetry off;  // default: disabled
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.sink(), nullptr);

  TelemetryConfig cfg;
  cfg.enabled = false;
  Telemetry explicit_off(cfg);
  EXPECT_EQ(explicit_off.sink(), nullptr);

  cfg.enabled = true;
  Telemetry on(cfg);
  EXPECT_EQ(on.sink(), &on);
  ASSERT_NE(on.tracer(), nullptr);
}

// --- JSON model ----------------------------------------------------------

TEST(Json, RoundTripsThroughDumpAndParse) {
  json::Object obj;
  obj["int"] = std::int64_t{-7};
  obj["big"] = std::uint64_t{1234567890123ull};
  obj["str"] = "quote\" slash\\ newline\n tab\t";
  obj["flag"] = true;
  obj["nil"] = json::Value();
  obj["arr"] = json::Array{json::Value(1.5), json::Value("x")};
  const std::string text = json::Value(std::move(obj)).dump();

  const auto back = json::parse(text);
  ASSERT_TRUE(back.has_value()) << back.status().to_string();
  const json::Value& v = *back;
  EXPECT_EQ(v["int"].number(), -7.0);
  EXPECT_EQ(v["big"].number_u64(), 1234567890123ull);
  EXPECT_EQ(v["str"].str(), "quote\" slash\\ newline\n tab\t");
  EXPECT_TRUE(v["flag"].boolean());
  EXPECT_TRUE(v["nil"].is_null());
  ASSERT_EQ(v["arr"].array().size(), 2u);
  EXPECT_EQ(v["arr"].array()[0].number(), 1.5);
  EXPECT_EQ(v["arr"].array()[1].str(), "x");
  // Missing keys chain to null instead of throwing.
  EXPECT_TRUE(v["absent"]["deeper"].is_null());
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "nul", "\"open",
                          "{\"a\":1} trailing", "+1"}) {
    const auto r = json::parse(bad);
    EXPECT_FALSE(r.has_value()) << "accepted: " << bad;
    EXPECT_EQ(r.status().code(), util::ErrorCode::kParseError);
  }
}

// --- RunReport round trip ------------------------------------------------

RunReport sample_report() {
  RunReport rep;
  rep.tool = "table4_runtime";
  rep.config_fingerprint = 0xdeadbeefcafe1234ull;
  rep.config["pairs"] = "512";
  rep.config["m"] = "64";

  RunReportRow row;
  row.impl = "GPUsim bitwise-32";
  row.pairs = 512;
  row.m = 64;
  row.n = 256;
  row.stages_ms = {{"H2G", 0.5}, {"W2B", 1.25}, {"SWA", 10.0},
                   {"B2W", 1.0}, {"G2H", 0.25}};
  row.total_ms = 13.0;
  row.gcups = 0.645;
  row.stage_metrics["SWA"]["global_read_transactions"] = 4096;
  row.stage_metrics["H2G"]["global_writes"] = 81920;
  rep.rows.push_back(row);

  MetricsRegistry reg;
  reg.counter("device.runs").add(6);
  reg.gauge("screen.gcups").set(0.645);
  reg.histogram("device.SWA.ms").observe(10.0);
  rep.metrics = reg.snapshot();
  return rep;
}

TEST(RunReport, RoundTripsThroughJson) {
  const RunReport rep = sample_report();
  const std::string text = rep.to_json();

  const auto back = parse_run_report(text);
  ASSERT_TRUE(back.has_value()) << back.status().to_string();
  const RunReport& r = *back;
  EXPECT_EQ(r.tool, "table4_runtime");
  EXPECT_EQ(r.config_fingerprint, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(r.config.at("pairs"), "512");
  ASSERT_EQ(r.rows.size(), 1u);
  const RunReportRow& row = r.rows[0];
  EXPECT_EQ(row.impl, "GPUsim bitwise-32");
  EXPECT_EQ(row.pairs, 512u);
  EXPECT_EQ(row.n, 256u);
  EXPECT_EQ(row.stages_ms.size(), 5u);
  EXPECT_EQ(row.stages_ms.at("SWA"), 10.0);
  EXPECT_EQ(row.total_ms, 13.0);
  EXPECT_NEAR(row.gcups, 0.645, 1e-12);
  EXPECT_EQ(row.stage_metrics.at("SWA").at("global_read_transactions"),
            4096u);
  EXPECT_EQ(row.stage_metrics.at("H2G").at("global_writes"), 81920u);
  EXPECT_EQ(r.metrics.counters.at("device.runs"), 6u);
  EXPECT_EQ(r.metrics.gauges.at("screen.gcups"), 0.645);
  EXPECT_EQ(r.metrics.histograms.at("device.SWA.ms").count, 1u);
}

TEST(RunReport, ExportCarriesSchemaAndVersion) {
  const auto doc = json::parse(sample_report().to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ((*doc)["schema"].str(), kRunReportSchema);
  EXPECT_EQ((*doc)["schema_version"].number_u64(),
            static_cast<std::uint64_t>(kRunReportSchemaVersion));
}

TEST(RunReport, RejectsWrongSchemaOrVersion) {
  const std::string text = sample_report().to_json();

  std::string wrong_schema = text;
  const auto at = wrong_schema.find(kRunReportSchema);
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, std::string(kRunReportSchema).size(),
                       "other.report");
  auto r = parse_run_report(wrong_schema);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kParseError);

  std::string wrong_version = text;
  const auto vat = wrong_version.find("\"schema_version\":1");
  ASSERT_NE(vat, std::string::npos);
  wrong_version.replace(vat, 18, "\"schema_version\":99");
  r = parse_run_report(wrong_version);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kParseError);

  r = parse_run_report("not json at all");
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kParseError);
}

}  // namespace
}  // namespace swbpbc::telemetry
