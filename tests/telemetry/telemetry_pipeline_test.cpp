// Telemetry wired through the screening stack: spans from the device
// stages / chunk loop / quarantine path, pool-worker spans via the
// process-wide observer, metrics absorption into the registry, the typed
// kCallbackError contract for throwing progress observers, and the
// telemetry-off guarantee that instrumentation never changes results.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "device/fault.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/pipeline.hpp"
#include "sw/scalar.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace swbpbc {
namespace {

using encoding::Sequence;

constexpr sw::ScoreParams kParams{2, 1, 1};

struct Batch {
  std::vector<Sequence> xs;
  std::vector<Sequence> ys;
};

Batch make_batch(std::uint64_t seed, std::size_t count, std::size_t m,
                 std::size_t n) {
  util::Xoshiro256 rng(seed);
  return {encoding::random_sequences(rng, count, m),
          encoding::random_sequences(rng, count, n)};
}

std::vector<std::uint32_t> scalar_refs(const Batch& b) {
  std::vector<std::uint32_t> refs;
  refs.reserve(b.xs.size());
  for (std::size_t k = 0; k < b.xs.size(); ++k)
    refs.push_back(sw::max_score(b.xs[k], b.ys[k], kParams));
  return refs;
}

std::set<std::string> span_names(telemetry::Telemetry& session) {
  std::set<std::string> names;
  for (const telemetry::TraceEvent& e : session.tracer()->events())
    names.insert(e.name);
  return names;
}

// --- screen loop spans and metrics ---------------------------------------

TEST(TelemetryPipeline, ScreenRecordsSpansAndRegistryTotals) {
  const Batch b = make_batch(7, 20, 8, 16);

  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = true;
  telemetry::Telemetry session(tcfg);

  sw::ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 10;
  cfg.chunk_pairs = 6;  // 20 pairs -> 4 chunks
  cfg.telemetry = session.sink();
  const sw::ScreenReport report = sw::screen(b.xs, b.ys, cfg);
  EXPECT_TRUE(report.status.ok());

  const std::set<std::string> names = span_names(session);
  EXPECT_TRUE(names.count("screen"));
  EXPECT_TRUE(names.count("chunk"));
  EXPECT_TRUE(names.count("chunk.backend"));

  const telemetry::MetricsRegistry::Snapshot s =
      session.registry().snapshot();
  EXPECT_EQ(s.counters.at("screen.runs"), 1u);
  EXPECT_EQ(s.counters.at("screen.pairs"), 20u);
  EXPECT_EQ(s.counters.at("screen.hits"), report.hits.size());
  EXPECT_EQ(s.histograms.at("screen.chunk.ms").count, 4u);
  EXPECT_GT(s.gauges.at("screen.gcups"), 0.0);
  EXPECT_GT(s.gauges.at("screen.pairs_per_s"), 0.0);
}

TEST(TelemetryPipeline, ScreenResultsIdenticalWithTelemetryOnAndOff) {
  const Batch b = make_batch(21, 33, 8, 16);

  sw::ScreenConfig off;
  off.params = kParams;
  off.threshold = 10;
  off.chunk_pairs = 8;
  const sw::ScreenReport plain = sw::screen(b.xs, b.ys, off);

  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = true;
  telemetry::Telemetry session(tcfg);
  sw::ScreenConfig on = off;
  on.telemetry = session.sink();
  const sw::ScreenReport traced = sw::screen(b.xs, b.ys, on);

  EXPECT_EQ(traced.scores, plain.scores);
  ASSERT_EQ(traced.hits.size(), plain.hits.size());
  for (std::size_t h = 0; h < plain.hits.size(); ++h) {
    EXPECT_EQ(traced.hits[h].index, plain.hits[h].index);
    EXPECT_EQ(traced.hits[h].bpbc_score, plain.hits[h].bpbc_score);
    EXPECT_EQ(traced.hits[h].detail.score, plain.hits[h].detail.score);
  }
  EXPECT_GT(session.tracer()->size(), 0u);
}

// --- fault injection: quarantine spans, bit-identical recovery -----------

sw::ScreenConfig fault_config(device::FaultInjector& injector,
                              telemetry::Telemetry* sink, std::size_t m,
                              std::size_t n) {
  device::GpuRunOptions run;
  run.faults = &injector;
  run.watchdog_phases = m + n + 16;
  run.telemetry = sink;

  sw::ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 12;
  cfg.width = sw::LaneWidth::k32;
  cfg.traceback = false;
  cfg.chunk_pairs = 8;
  cfg.chunk_retry_limit = 3;
  cfg.chunk_backend = device::make_chunk_backend(kParams, sw::LaneWidth::k32,
                                                 run);
  cfg.check.enabled = true;
  cfg.check.sample_every = 1;  // verify every lane -> catches every flip
  cfg.check.max_retries = 4;
  cfg.telemetry = sink;
  return cfg;
}

TEST(TelemetryPipeline, FaultInjectedScreenTracesQuarantineBitIdentically) {
  constexpr std::size_t kCount = 32, kM = 8, kN = 24;
  device::FaultConfig fault;
  fault.flip_probability = 5e-3;
  fault.copy_flip_probability = 5e-3;

  // Find a campaign where the self-check actually quarantines (near-
  // certain at these rates; the seed scan keeps the test deterministic).
  bool exercised = false;
  for (std::uint64_t seed = 0; seed < 30 && !exercised; ++seed) {
    const Batch b = make_batch(100 + seed, kCount, kM, kN);
    fault.seed = seed;

    telemetry::TelemetryConfig tcfg;
    tcfg.enabled = true;
    telemetry::Telemetry session(tcfg);
    device::FaultInjector traced_injector(fault);
    const auto traced = sw::try_screen(
        b.xs, b.ys,
        fault_config(traced_injector, session.sink(), kM, kN));
    ASSERT_TRUE(traced.has_value()) << traced.status().to_string();

    device::FaultInjector plain_injector(fault);
    const auto plain = sw::try_screen(
        b.xs, b.ys, fault_config(plain_injector, nullptr, kM, kN));
    ASSERT_TRUE(plain.has_value()) << plain.status().to_string();

    // Recovery must reconcile both runs with the scalar reference, so the
    // screened batch is bit-identical with telemetry on and off even while
    // faults fire.
    const std::vector<std::uint32_t> refs = scalar_refs(b);
    EXPECT_EQ(traced->scores, refs) << "seed " << seed;
    EXPECT_EQ(plain->scores, refs) << "seed " << seed;
    EXPECT_EQ(traced->scores, plain->scores);

    if (traced->reliability.retry_attempts == 0) continue;
    exercised = true;

    // The episode shows up on the timeline: all five device stages, the
    // chunk loop, the self-check, and at least one quarantine retry.
    const std::set<std::string> names = span_names(session);
    for (const char* expected : {"H2G", "W2B", "SWA", "B2W", "G2H", "screen",
                                 "chunk", "chunk.backend", "self_check",
                                 "quarantine.retry"}) {
      EXPECT_TRUE(names.count(expected)) << "missing span " << expected;
    }
    const telemetry::MetricsRegistry::Snapshot s =
        session.registry().snapshot();
    EXPECT_EQ(s.counters.at("screen.retry_attempts"),
              traced->reliability.retry_attempts);
    EXPECT_EQ(s.counters.at("screen.mismatches_detected"),
              traced->reliability.mismatches_detected);
    EXPECT_GT(s.counters.at("device.runs"), 0u);
  }
  EXPECT_TRUE(exercised)
      << "no campaign triggered a self-check retry in 30 seeds";
}

// --- throwing progress observers -----------------------------------------

TEST(TelemetryPipeline, ThrowingProgressObserverYieldsTypedPartialReport) {
  const Batch b = make_batch(13, 20, 8, 12);
  const std::vector<std::uint32_t> refs = scalar_refs(b);

  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = true;
  telemetry::Telemetry session(tcfg);

  sw::ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 8;
  cfg.chunk_pairs = 6;  // 20 pairs -> chunks of 6,6,6,2
  cfg.telemetry = session.sink();
  cfg.progress = [](const sw::ChunkProgress& p) {
    if (p.chunk == 1) throw std::runtime_error("observer exploded");
  };

  const auto result = sw::try_screen(b.xs, b.ys, cfg);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  const sw::ScreenReport& report = *result;

  EXPECT_EQ(report.status.code(), util::ErrorCode::kCallbackError);
  EXPECT_NE(report.status.message().find("chunk 1"), std::string::npos);
  EXPECT_NE(report.status.message().find("observer exploded"),
            std::string::npos);

  // Everything settled before the throw is preserved: the first two
  // chunks completed with correct scores, the rest were never touched.
  ASSERT_EQ(report.chunks.size(), 4u);
  EXPECT_TRUE(report.chunks[0].completed);
  EXPECT_TRUE(report.chunks[1].completed);
  EXPECT_FALSE(report.chunks[2].completed);
  EXPECT_FALSE(report.chunks[3].completed);
  EXPECT_FALSE(report.complete());
  for (std::size_t k = 0; k < 12; ++k)
    EXPECT_EQ(report.scores[k], refs[k]) << "pair " << k;

  // The callback itself was timed, and the failure counted.
  EXPECT_TRUE(span_names(session).count("progress.callback"));
  EXPECT_EQ(session.registry().snapshot().counters.at(
                "screen.callback_errors"),
            1u);
}

TEST(TelemetryPipeline, NonThrowingObserverLeavesRunOk) {
  const Batch b = make_batch(14, 12, 8, 12);
  std::size_t calls = 0;
  sw::ScreenConfig cfg;
  cfg.params = kParams;
  cfg.threshold = 8;
  cfg.chunk_pairs = 4;
  cfg.progress = [&calls](const sw::ChunkProgress&) { ++calls; };
  const sw::ScreenReport report = sw::screen(b.xs, b.ys, cfg);
  EXPECT_TRUE(report.status.ok());
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(calls, 3u);
}

// --- pool observer -------------------------------------------------------

TEST(TelemetryPipeline, PoolSpansAppearOnWorkerTracks) {
  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.pool_spans = true;
  telemetry::Telemetry session(tcfg);

  util::ThreadPool pool(2);
  std::vector<std::uint32_t> out(256, 0);
  pool.parallel_for(0, out.size(),
                    [&out](std::size_t i) {
                      out[i] = static_cast<std::uint32_t>(i * i);
                    },
                    /*grain=*/32);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<std::uint32_t>(i * i));

  std::size_t pool_chunks = 0;
  for (const telemetry::TraceEvent& e : session.tracer()->events()) {
    if (std::string(e.name) != "pool.chunk") continue;
    ++pool_chunks;
    // Caller-driven chunks sit one track below the worker block.
    EXPECT_GE(e.track, telemetry::kTrackPoolBase - 1);
  }
  EXPECT_GT(pool_chunks, 0u);
}

TEST(TelemetryPipeline, PoolObserverUninstalledWithSession) {
  {
    telemetry::TelemetryConfig tcfg;
    tcfg.enabled = true;
    tcfg.pool_spans = true;
    telemetry::Telemetry session(tcfg);
    EXPECT_NE(util::ThreadPool::observer(), nullptr);
  }
  EXPECT_EQ(util::ThreadPool::observer(), nullptr);
}

// --- device absorption ---------------------------------------------------

TEST(TelemetryPipeline, DeviceRunFeedsStageKeyedMetricsIntoRegistry) {
  const Batch b = make_batch(5, 16, 8, 32);

  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = true;
  telemetry::Telemetry session(tcfg);

  device::GpuRunOptions options;
  options.record_metrics = true;
  options.telemetry = session.sink();
  const device::GpuRunResult result = device::gpu_bpbc_max_scores(
      b.xs, b.ys, kParams, sw::LaneWidth::k32, options);
  EXPECT_EQ(result.scores, scalar_refs(b));

  // Every stage carries traffic, kernels and copies alike.
  EXPECT_GT(result.stage_metrics[sw::PipelineStage::kH2G].global_writes, 0u);
  EXPECT_GT(result.stage_metrics[sw::PipelineStage::kW2B].global_reads, 0u);
  EXPECT_GT(result.stage_metrics[sw::PipelineStage::kSWA].shared_accesses,
            0u);
  EXPECT_GT(result.stage_metrics[sw::PipelineStage::kB2W].global_writes, 0u);
  EXPECT_GT(result.stage_metrics[sw::PipelineStage::kG2H].global_reads, 0u);

  const telemetry::MetricsRegistry::Snapshot s =
      session.registry().snapshot();
  EXPECT_EQ(s.counters.at("device.runs"), 1u);
  for (const char* stage : {"H2G", "W2B", "SWA", "B2W", "G2H"}) {
    const std::string key = std::string("device.") + stage + ".ms";
    ASSERT_EQ(s.histograms.count(key), 1u) << "missing " << key;
    EXPECT_EQ(s.histograms.at(key).count, 1u);
  }
  EXPECT_EQ(s.counters.at("device.H2G.global_writes"),
            result.stage_metrics[sw::PipelineStage::kH2G].global_writes);
  EXPECT_EQ(s.counters.at("device.SWA.shared_accesses"),
            result.stage_metrics[sw::PipelineStage::kSWA].shared_accesses);
}

}  // namespace
}  // namespace swbpbc
