// Observability-layer units: request-scoped trace context propagation,
// rolling-window SLO histograms, Prometheus text exposition, and the
// crash flight recorder (including a real fork()+SIGABRT post-mortem).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/exposition.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/rolling.hpp"
#include "telemetry/trace.hpp"

namespace swbpbc::telemetry {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "swbpbc_obs_" + name;
}

// ---------------------------------------------------------------- trace

TEST(TraceContext, DefaultsToZero) {
  EXPECT_EQ(current_trace_context(), 0u);
}

TEST(TraceContext, ScopedInstallAndRestore) {
  {
    ScopedTraceContext outer(0xAAu);
    EXPECT_EQ(current_trace_context(), 0xAAu);
    {
      ScopedTraceContext inner(0xBBu);
      EXPECT_EQ(current_trace_context(), 0xBBu);
    }
    EXPECT_EQ(current_trace_context(), 0xAAu);
  }
  EXPECT_EQ(current_trace_context(), 0u);
}

TEST(TraceContext, DoesNotCrossThreads) {
  ScopedTraceContext ctx(0x77u);
  std::uint64_t seen = 0x77u;
  std::thread t([&] { seen = current_trace_context(); });
  t.join();
  EXPECT_EQ(seen, 0u);  // plain thread_local, not inherited
}

TEST(TraceContext, SpanCapturesInstalledContext) {
  Tracer tracer(16);
  {
    ScopedTraceContext ctx(0xDEADBEEFu);
    Span span(&tracer, "work", "test");
  }
  Span untagged(&tracer, "after", "test");
  untagged.finish();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, 0xDEADBEEFu);
  EXPECT_EQ(events[1].trace_id, 0u);
}

TEST(TraceContext, ExportCarriesHexTraceIdArg) {
  Tracer tracer(16);
  {
    ScopedTraceContext ctx(0x1234u);
    Span span(&tracer, "work", "test");
  }
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"trace_id\":\"0x0000000000001234\""),
            std::string::npos);
}

TEST(Tracer, TrackNamesRoundTrip) {
  Tracer tracer(4);
  tracer.set_track_name(3, "alpha");
  tracer.set_track_name(7, "beta");
  tracer.set_track_name(3, "alpha2");  // rename in place
  const auto names = tracer.track_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0].first, 3u);
  EXPECT_EQ(names[0].second, "alpha2");
  EXPECT_EQ(names[1].second, "beta");
}

// -------------------------------------------------------------- rolling

TEST(RollingHistogram, RejectsBadBounds) {
  EXPECT_THROW(RollingHistogram({}, 1000, 4), std::invalid_argument);
  EXPECT_THROW(RollingHistogram({2.0, 1.0}, 1000, 4), std::invalid_argument);
  // Degenerate slicing clamps instead of throwing: still a valid window.
  EXPECT_NO_THROW(RollingHistogram({1.0}, 0, 0));
}

TEST(RollingHistogram, MergesLiveSlices) {
  RollingHistogram h({1.0, 10.0, 100.0}, 1000, 4);
  h.observe(0.5, 0);
  h.observe(5.0, 1500);   // second slice
  h.observe(50.0, 2500);  // third slice
  const auto snap = h.snapshot(2500);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 55.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 50.0);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
}

TEST(RollingHistogram, OldSlicesAgeOut) {
  RollingHistogram h({1.0}, 1000, 2);  // 2-second window
  h.observe(0.5, 0);
  EXPECT_EQ(h.snapshot(0).count, 1u);
  EXPECT_EQ(h.snapshot(1999).count, 1u);   // still inside the window
  EXPECT_EQ(h.snapshot(10000).count, 0u);  // long gone
}

TEST(RollingHistogram, SlotRecycleDropsStaleCounts) {
  RollingHistogram h({1.0}, 1000, 2);
  h.observe(0.5, 0);      // slice 0
  h.observe(0.5, 2500);   // slice 2 recycles slot 0
  const auto snap = h.snapshot(2500);
  EXPECT_EQ(snap.count, 1u);  // the epoch-0 sample must not leak back in
}

TEST(RollingHistogram, PercentilesFromMergedWindow) {
  RollingHistogram h(Histogram::exponential_bounds(0.01, 2.0, 22), 10000, 6);
  for (int i = 0; i < 100; ++i)
    h.observe(static_cast<double>(i % 10) + 0.5, 1000);
  const auto snap = h.snapshot(2000);
  EXPECT_EQ(snap.count, 100u);
  EXPECT_GT(snap.percentile(95), snap.percentile(50));
}

// ----------------------------------------------------------- exposition

TEST(Exposition, SanitizesNames) {
  EXPECT_EQ(prometheus_name("service.queue.pairs", "swbpbc"),
            "swbpbc_service_queue_pairs");
  EXPECT_EQ(prometheus_name("slo.tenant-a.total_ms", "swbpbc"),
            "swbpbc_slo_tenant_a_total_ms");
  EXPECT_EQ(prometheus_name("9lives", ""), "_9lives");
}

TEST(Exposition, CountersAndGauges) {
  MetricsRegistry registry;
  registry.counter("service.requests").add(42);
  registry.gauge("service.occupancy.pairs").set(0.5);
  const std::string text = prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE swbpbc_service_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("swbpbc_service_requests 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE swbpbc_service_occupancy_pairs gauge"),
            std::string::npos);
  EXPECT_NE(text.find("swbpbc_service_occupancy_pairs 0.5"),
            std::string::npos);
}

TEST(Exposition, HistogramIsCumulative) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat_ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  const std::string text = prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("swbpbc_lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("swbpbc_lat_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("swbpbc_lat_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("swbpbc_lat_ms_count 3"), std::string::npos);
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorder, RecordsAndWraps) {
  FlightRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  for (int i = 0; i < 6; ++i)
    recorder.note("event", FlightRecorder::kMark, i, i * 10, 0);
  EXPECT_EQ(recorder.recorded(), 6u);
}

TEST(FlightRecorder, DumpIsOldestFirstAndParseable) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 6; ++i)
    recorder.note("ev", FlightRecorder::kMark, i, 0, 0);
  const std::string path = temp_path("dump.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(recorder.dump(path.c_str(), "unit test"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("swbpbc.flight_recorder v1"), std::string::npos);
  EXPECT_NE(header.find("reason=unit test"), std::string::npos);
  std::vector<std::uint64_t> seqs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::uint64_t seq = 0;
    fields >> seq;
    seqs.push_back(seq);
  }
  // Ring of 4: events 3..6 survive (1-based sequence), oldest first.
  ASSERT_EQ(seqs.size(), 4u);
  EXPECT_EQ(seqs.front(), 3u);
  EXPECT_EQ(seqs.back(), 6u);
  for (std::size_t i = 1; i < seqs.size(); ++i)
    EXPECT_LT(seqs[i - 1], seqs[i]);
  std::remove(path.c_str());
}

TEST(FlightRecorder, LongNamesTruncateSafely) {
  FlightRecorder recorder(2);
  const std::string longname(200, 'x');
  recorder.note(longname.c_str());
  const std::string path = temp_path("truncate.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(recorder.dump(path.c_str(), "t"));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("xxxx"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, TracerMirrorsSpans) {
  FlightRecorder recorder(8);
  Tracer tracer(8);
  tracer.set_flight_recorder(&recorder);
  {
    ScopedTraceContext ctx(0x42u);
    Span span(&tracer, "mirrored", "test", 5);
  }
  tracer.set_flight_recorder(nullptr);
  Span unmirrored(&tracer, "late", "test");
  unmirrored.finish();
  EXPECT_EQ(recorder.recorded(), 1u);
  const std::string path = temp_path("mirror.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(recorder.dump(path.c_str(), "t"));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("mirrored"), std::string::npos);
  EXPECT_EQ(all.find("late"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, InstallRejectsBadArguments) {
  FlightRecorder recorder(4);
  EXPECT_FALSE(
      FlightRecorder::install_crash_handler(nullptr, "/tmp/x").ok());
  EXPECT_FALSE(
      FlightRecorder::install_crash_handler(&recorder, std::string(600, 'p'))
          .ok());
}

// The real thing: a child process installs the handler, notes a few
// events, and dies on SIGABRT; the parent finds the post-mortem dump.
TEST(FlightRecorder, CrashHandlerDumpsOnAbort) {
  const std::string path = temp_path("crash.txt");
  std::remove(path.c_str());
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: no gtest from here on; raw exit paths only.
    static FlightRecorder recorder(16);
    if (!FlightRecorder::install_crash_handler(&recorder, path).ok())
      _exit(10);
    recorder.note("before.crash", FlightRecorder::kMark, 7, 123, 456);
    std::abort();
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler produced no dump at " << path;
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("swbpbc.flight_recorder v1"), std::string::npos);
  EXPECT_NE(all.find("signal"), std::string::npos);
  EXPECT_NE(all.find("before.crash"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swbpbc::telemetry
