#include <gtest/gtest.h>

#include "life/life.hpp"

namespace swbpbc::life {
namespace {

constexpr std::string_view kBlinker =
    ".....\n"
    ".###.\n"
    ".....\n";

constexpr std::string_view kBlock =
    "....\n"
    ".##.\n"
    ".##.\n"
    "....\n";

constexpr std::string_view kGlider =
    ".#....\n"
    "..#...\n"
    "###...\n"
    "......\n";

template <typename Grid>
std::string render(const Grid& g) {
  std::string out;
  for (std::size_t y = 0; y < g.height(); ++y) {
    for (std::size_t x = 0; x < g.width(); ++x) {
      out.push_back(g.get(x, y) ? '#' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

TEST(ScalarLife, BlockIsStill) {
  ScalarLife g(4, 4);
  load_picture(g, kBlock);
  const std::string before = render(g);
  g.step(5);
  EXPECT_EQ(render(g), before);
}

TEST(ScalarLife, BlinkerOscillatesWithPeriod2) {
  ScalarLife g(5, 3);
  load_picture(g, kBlinker);
  const std::string horizontal = render(g);
  g.step();
  EXPECT_NE(render(g), horizontal);
  EXPECT_EQ(g.population(), 3u);
  g.step();
  EXPECT_EQ(render(g), horizontal);
}

TEST(ScalarLife, BordersAreDead) {
  // A blinker against the edge loses cells (no wrap-around).
  ScalarLife g(3, 1);
  g.set(0, 0, true);
  g.set(1, 0, true);
  g.set(2, 0, true);
  g.step();
  EXPECT_EQ(g.population(), 1u);  // only the middle survives... and then
  g.step();
  EXPECT_EQ(g.population(), 0u);  // dies of loneliness
}

template <bitsim::LaneWord W>
void check_glider_translates() {
  BpbcLife<W> g(40, 40);
  load_picture(g, kGlider);
  BpbcLife<W> expect(40, 40);
  load_picture(expect, kGlider);
  g.step(4);  // a glider self-copies one cell diagonally every 4 steps
  for (std::size_t y = 0; y < 6; ++y) {
    for (std::size_t x = 0; x < 6; ++x) {
      EXPECT_EQ(g.get(x + 1, y + 1), expect.get(x, y))
          << "x=" << x << " y=" << y;
    }
  }
  EXPECT_EQ(g.population(), 5u);
}

TEST(BpbcLife, GliderTranslates32) {
  check_glider_translates<std::uint32_t>();
}

TEST(BpbcLife, GliderTranslates64) {
  check_glider_translates<std::uint64_t>();
}

template <bitsim::LaneWord W>
void check_random_vs_scalar(std::size_t w, std::size_t h,
                            std::uint64_t seed) {
  ScalarLife ref(w, h);
  BpbcLife<W> bpbc(w, h);
  util::Xoshiro256 rng_a(seed), rng_b(seed);
  randomize(ref, 0.35, rng_a);
  randomize(bpbc, 0.35, rng_b);
  ASSERT_EQ(render(bpbc), render(ref));
  for (int gen = 0; gen < 8; ++gen) {
    ref.step();
    bpbc.step();
    ASSERT_EQ(render(bpbc), render(ref)) << "generation " << gen;
  }
}

TEST(BpbcLife, MatchesScalarOnRandomGrids32) {
  // Widths straddling word boundaries exercise the cross-word carries.
  check_random_vs_scalar<std::uint32_t>(31, 17, 1);
  check_random_vs_scalar<std::uint32_t>(32, 9, 2);
  check_random_vs_scalar<std::uint32_t>(33, 12, 3);
  check_random_vs_scalar<std::uint32_t>(100, 20, 4);
}

TEST(BpbcLife, MatchesScalarOnRandomGrids64) {
  check_random_vs_scalar<std::uint64_t>(63, 11, 5);
  check_random_vs_scalar<std::uint64_t>(64, 11, 6);
  check_random_vs_scalar<std::uint64_t>(130, 14, 7);
}

TEST(BpbcLife, TinyGrids) {
  check_random_vs_scalar<std::uint32_t>(1, 1, 8);
  check_random_vs_scalar<std::uint32_t>(2, 2, 9);
  check_random_vs_scalar<std::uint32_t>(1, 5, 10);
}

TEST(BpbcLife, PopulationAndAccessors) {
  BpbcLife<std::uint32_t> g(10, 10);
  EXPECT_EQ(g.population(), 0u);
  g.set(3, 4, true);
  g.set(9, 9, true);
  EXPECT_TRUE(g.get(3, 4));
  EXPECT_EQ(g.population(), 2u);
  g.set(3, 4, false);
  EXPECT_FALSE(g.get(3, 4));
  EXPECT_EQ(g.population(), 1u);
}

TEST(Life, RejectsEmptyGrids) {
  EXPECT_THROW(ScalarLife(0, 4), std::invalid_argument);
  EXPECT_THROW(BpbcLife<std::uint32_t>(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace swbpbc::life
