// End-to-end cross-checks spanning every execution path in the library:
// scalar CPU, wordwise bulk, BPBC CPU (32/64-lane, serial/parallel),
// circuit simulation, and the simulated-GPU pipeline must all agree.
#include <gtest/gtest.h>

#include "bitops/arith.hpp"
#include "circuit/evaluate.hpp"
#include "circuit/optimize.hpp"
#include "circuit/sw_circuit.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/bpbc.hpp"
#include "sw/pipeline.hpp"
#include "sw/scalar.hpp"
#include "sw/wordwise.hpp"

namespace swbpbc {
namespace {

TEST(Integration, AllExecutionPathsAgree) {
  util::Xoshiro256 rng(31337);
  const std::size_t count = 80, m = 12, n = 48;
  auto xs = encoding::random_sequences(rng, count, m);
  auto ys = encoding::random_sequences(rng, count, n);
  for (std::size_t k = 0; k < count; k += 7) {
    encoding::plant_motif(ys[k], xs[k], k % (n - m));
  }
  const sw::ScoreParams params{2, 1, 1};

  const auto scalar = sw::wordwise_max_scores(xs, ys, params);
  const auto bpbc32 =
      sw::bpbc_max_scores(xs, ys, params, sw::LaneWidth::k32);
  const auto bpbc64 =
      sw::bpbc_max_scores(xs, ys, params, sw::LaneWidth::k64,
                          bulk::Mode::kParallel);
  device::GpuRunOptions options;
  options.mode = bulk::Mode::kSerial;
  const auto gpu32 =
      device::gpu_bpbc_max_scores(xs, ys, params, sw::LaneWidth::k32,
                                  options);
  const auto gpu_word = device::gpu_wordwise_max_scores(xs, ys, params,
                                                        options);

  EXPECT_EQ(scalar, bpbc32);
  EXPECT_EQ(scalar, bpbc64);
  EXPECT_EQ(scalar, gpu32.scores);
  EXPECT_EQ(scalar, gpu_word.scores);
}

TEST(Integration, CircuitSimulatedSwaMatchesBpbc) {
  // Run an entire (small) BPBC DP where every cell is evaluated by the
  // optimized constant-baked SW circuit instead of the inline arithmetic —
  // the paper's "convert the computation into a circuit simulation"
  // claim, end to end.
  util::Xoshiro256 rng(424242);
  const std::size_t m = 6, n = 14;
  const sw::ScoreParams params{2, 1, 1};
  const unsigned s = sw::required_slices(params, m, n);
  const auto xs = encoding::random_sequences(rng, 32, m);
  const auto ys = encoding::random_sequences(rng, 32, n);
  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);

  const circuit::Circuit cell =
      circuit::optimize(circuit::build_sw_cell_const(s, params));
  ASSERT_EQ(cell.input_count(), 3 * s + 4);

  // Row-major DP, every cell via circuit::evaluate_into (scratch reused
  // across cells, the intended hot-loop usage).
  std::vector<std::uint32_t> row((n + 1) * s, 0);
  std::vector<std::uint32_t> best(s, 0);
  std::vector<std::uint32_t> inputs(3 * s + 4);
  std::vector<std::uint32_t> value, out;
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<std::uint32_t> diag(s, 0);
    for (std::size_t j = 1; j <= n; ++j) {
      std::vector<std::uint32_t> old_up(row.begin() + static_cast<long>(j * s),
                                        row.begin() +
                                            static_cast<long>((j + 1) * s));
      // Pack inputs: A=up, B=left, C=diag, x(L,H), y(L,H).
      std::copy(old_up.begin(), old_up.end(), inputs.begin());
      std::copy(row.begin() + static_cast<long>((j - 1) * s),
                row.begin() + static_cast<long>(j * s),
                inputs.begin() + static_cast<long>(s));
      std::copy(diag.begin(), diag.end(),
                inputs.begin() + static_cast<long>(2 * s));
      inputs[3 * s + 0] = bx.groups[0].lo[i];
      inputs[3 * s + 1] = bx.groups[0].hi[i];
      inputs[3 * s + 2] = by.groups[0].lo[j - 1];
      inputs[3 * s + 3] = by.groups[0].hi[j - 1];
      circuit::evaluate_into<std::uint32_t>(cell, inputs, value, out);
      std::copy(out.begin(), out.end(),
                row.begin() + static_cast<long>(j * s));
      bitops::max_b<std::uint32_t>(
          std::span<const std::uint32_t>(best),
          std::span<const std::uint32_t>(out),
          std::span<std::uint32_t>(best));
      diag = old_up;
    }
  }
  const auto circuit_scores = encoding::untranspose_values<std::uint32_t>(
      std::span<const std::uint32_t>(best), s);

  for (std::size_t k = 0; k < 32; ++k) {
    EXPECT_EQ(circuit_scores[k], sw::max_score(xs[k], ys[k], params))
        << "instance " << k;
  }
}

TEST(Integration, ScreeningAgreesWithExhaustiveScalarScan) {
  util::Xoshiro256 rng(999);
  const std::size_t count = 48, m = 10, n = 64;
  auto xs = encoding::random_sequences(rng, count, m);
  auto ys = encoding::random_sequences(rng, count, n);
  for (std::size_t k = 1; k < count; k += 6) {
    auto noisy = encoding::mutate(xs[k], 0.1, rng);
    encoding::plant_motif(ys[k], noisy, 8);
  }
  sw::ScreenConfig config;
  config.params = {2, 1, 1};
  config.threshold = 14;
  config.mode = bulk::Mode::kParallel;
  const auto report = sw::screen(xs, ys, config);

  std::size_t expected_hits = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t truth = sw::max_score(xs[k], ys[k], config.params);
    EXPECT_EQ(report.scores[k], truth) << "instance " << k;
    if (truth >= config.threshold) ++expected_hits;
  }
  EXPECT_EQ(report.hits.size(), expected_hits);
}

TEST(Integration, LongerTextsNeverLowerTheScore) {
  // Monotonicity: extending Y cannot reduce the max local-alignment score.
  util::Xoshiro256 rng(5555);
  const auto x = encoding::random_sequence(rng, 12);
  auto y = encoding::random_sequence(rng, 32);
  const sw::ScoreParams params{2, 1, 1};
  std::uint32_t prev = 0;
  for (int grow = 0; grow < 6; ++grow) {
    const std::uint32_t score = sw::max_score(x, y, params);
    EXPECT_GE(score, prev);
    prev = score;
    const auto extra = encoding::random_sequence(rng, 16);
    y.insert(y.end(), extra.begin(), extra.end());
  }
}

}  // namespace
}  // namespace swbpbc
