// device::PipelineEngine: the overlapped chunk execution engine. The
// contract under test is bit-identity — overlapped execution (any depth,
// any submission order, fault injection on or off) must produce exactly
// the serial results — plus the per-stream trace structure and error
// surfacing at collect().
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "device/engine.hpp"
#include "device/fault.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/backend.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace swbpbc::device {
namespace {

using encoding::Sequence;

constexpr sw::ScoreParams kParams{2, 1, 1};

struct Batch {
  std::vector<Sequence> xs;
  std::vector<Sequence> ys;
};

Batch make_batch(std::uint64_t seed, std::size_t count, std::size_t m,
                 std::size_t n) {
  util::Xoshiro256 rng(seed);
  return {encoding::random_sequences(rng, count, m),
          encoding::random_sequences(rng, count, n)};
}

sw::ChunkJob make_job(const Batch& b, std::size_t chunk, std::size_t begin,
                      std::size_t len, unsigned attempt = 0) {
  sw::ChunkJob job;
  job.chunk = chunk;
  job.attempt = attempt;
  job.xs = std::span<const Sequence>(b.xs).subspan(begin, len);
  job.ys = std::span<const Sequence>(b.ys).subspan(begin, len);
  return job;
}

FaultConfig noisy_faults() {
  FaultConfig fc;
  fc.seed = 77;
  fc.flip_probability = 0.01;
  fc.drop_sync_probability = 0.05;
  fc.copy_flip_probability = 0.005;
  return fc;
}

IntegrityConfig full_integrity() {
  IntegrityConfig ic;
  ic.enabled = true;
  ic.sample_every = 4;
  ic.canary_lanes = true;
  ic.checksum_copies = true;
  return ic;
}

void expect_same_result(const sw::ChunkResult& a, const sw::ChunkResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.scores, b.scores) << what;
  ASSERT_EQ(a.faults.size(), b.faults.size()) << what;
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].stage, b.faults[i].stage) << what << " fault " << i;
    EXPECT_EQ(a.faults[i].block, b.faults[i].block) << what << " fault " << i;
  }
  EXPECT_EQ(a.integrity_checks, b.integrity_checks) << what;
}

TEST(PipelineEngine, RunMatchesOneShotDriver) {
  const Batch b = make_batch(1, 37, 8, 16);
  for (const sw::LaneWidth width : {sw::LaneWidth::k32, sw::LaneWidth::k64}) {
    EngineOptions opts;
    opts.params = kParams;
    opts.width = width;
    PipelineEngine engine(opts);
    const sw::ChunkResult r = engine.run(make_job(b, 0, 0, b.xs.size()));
    const GpuRunResult ref =
        gpu_bpbc_max_scores(b.xs, b.ys, kParams, width);
    EXPECT_EQ(r.scores, ref.scores);
    EXPECT_TRUE(r.has_phase_timings);
  }
}

TEST(PipelineEngine, DeclaresStreamCaps) {
  EngineOptions opts;
  opts.params = kParams;
  opts.integrity = full_integrity();
  const PipelineEngine engine(opts);
  EXPECT_TRUE(engine.caps().streams);
  EXPECT_TRUE(engine.caps().stop_polling);
  EXPECT_TRUE(engine.caps().integrity);
}

TEST(PipelineEngine, SubmitCollectMatchesRunAcrossArenaReuse) {
  // 6 chunks over 3 arena slots: every slot is reused at least once, and
  // the FIFO results must equal fresh synchronous runs of the same jobs.
  const Batch b = make_batch(2, 96, 8, 12);
  EngineOptions opts;
  opts.params = kParams;
  opts.overlap_depth = 3;
  PipelineEngine overlapped(opts);
  PipelineEngine serial(opts);
  const std::size_t chunk_pairs = 16;
  for (std::size_t c = 0; c < 6; ++c)
    overlapped.submit(make_job(b, c, c * chunk_pairs, chunk_pairs));
  for (std::size_t c = 0; c < 6; ++c) {
    const sw::ChunkResult got = overlapped.collect();
    const sw::ChunkResult want =
        serial.run(make_job(b, c, c * chunk_pairs, chunk_pairs));
    expect_same_result(got, want, "chunk " + std::to_string(c));
  }
}

TEST(PipelineEngine, OverlapDepthBitIdenticalUnderFaultInjection) {
  // The acceptance property: depth-1 and depth-4 executions of the same
  // faulty screen are bit-identical — scores, fault findings, and check
  // counts — because campaigns derive from (chunk, attempt), not from
  // execution order, and reused arenas are zero-filled per job.
  const Batch b = make_batch(3, 128, 8, 12);
  const std::size_t chunk_pairs = 16, n_chunks = 8;
  std::vector<sw::ChunkResult> results[2];
  std::uint64_t total_faults = 0;
  int variant = 0;
  for (const std::size_t depth : {std::size_t{1}, std::size_t{4}}) {
    FaultInjector faults(noisy_faults());
    EngineOptions opts;
    opts.params = kParams;
    opts.faults = &faults;
    opts.integrity = full_integrity();
    opts.overlap_depth = depth;
    PipelineEngine engine(opts);
    for (std::size_t c = 0; c < n_chunks; ++c)
      engine.submit(make_job(b, c, c * chunk_pairs, chunk_pairs));
    for (std::size_t c = 0; c < n_chunks; ++c) {
      results[variant].push_back(engine.collect());
      total_faults += results[variant].back().faults.size();
    }
    ++variant;
  }
  ASSERT_GT(total_faults, 0u) << "fault rates too low to exercise anything";
  for (std::size_t c = 0; c < n_chunks; ++c)
    expect_same_result(results[0][c], results[1][c],
                       "chunk " + std::to_string(c));
}

TEST(PipelineEngine, FaultCampaignIndependentOfSubmissionOrder) {
  // Chunk 2 scored alone must equal chunk 2 scored third in a pipeline:
  // its fault campaign is a function of its tag, not of injector history.
  const Batch b = make_batch(4, 64, 8, 12);
  const std::size_t chunk_pairs = 16;
  FaultInjector faults_a(noisy_faults());
  FaultInjector faults_b(noisy_faults());
  EngineOptions opts;
  opts.params = kParams;
  opts.integrity = full_integrity();
  opts.overlap_depth = 3;

  opts.faults = &faults_a;
  PipelineEngine pipelined(opts);
  for (std::size_t c = 0; c < 4; ++c)
    pipelined.submit(make_job(b, c, c * chunk_pairs, chunk_pairs));
  std::vector<sw::ChunkResult> piped;
  for (std::size_t c = 0; c < 4; ++c) piped.push_back(pipelined.collect());

  opts.faults = &faults_b;
  PipelineEngine solo(opts);
  const sw::ChunkResult alone =
      solo.run(make_job(b, 2, 2 * chunk_pairs, chunk_pairs));
  expect_same_result(piped[2], alone, "chunk 2");
}

TEST(PipelineEngine, TraceShowsStageSpansOnPerStreamTracks) {
  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = true;
  telemetry::Telemetry session(tcfg);
  const Batch b = make_batch(5, 48, 8, 12);
  EngineOptions opts;
  opts.params = kParams;
  opts.telemetry = session.sink();
  opts.overlap_depth = 3;
  PipelineEngine engine(opts);
  const std::size_t n_chunks = 3, chunk_pairs = 16;
  for (std::size_t c = 0; c < n_chunks; ++c)
    engine.submit(make_job(b, c, c * chunk_pairs, chunk_pairs));
  for (std::size_t c = 0; c < n_chunks; ++c) engine.collect();

  std::size_t copy_in = 0, compute = 0, copy_out = 0;
  for (const telemetry::TraceEvent& e : session.tracer()->events()) {
    const std::string name = e.name;
    if (e.track == telemetry::kTrackStreamBase + 0) {
      EXPECT_TRUE(name == "H2G" || name == "W2B") << name;
      ++copy_in;
    } else if (e.track == telemetry::kTrackStreamBase + 1) {
      EXPECT_EQ(name, "SWA");
      ++compute;
    } else if (e.track == telemetry::kTrackStreamBase + 2) {
      EXPECT_TRUE(name == "B2W" || name == "G2H") << name;
      ++copy_out;
    }
  }
  EXPECT_EQ(copy_in, 2 * n_chunks);   // H2G + W2B per chunk
  EXPECT_EQ(compute, n_chunks);       // SWA per chunk
  EXPECT_EQ(copy_out, 2 * n_chunks);  // B2W + G2H per chunk
}

TEST(PipelineEngine, StopErrorSurfacesAtCollect) {
  const Batch b = make_batch(6, 32, 8, 12);
  util::CancellationToken cancel;
  cancel.cancel();
  const util::StopCondition stop(&cancel, {});
  EngineOptions opts;
  opts.params = kParams;
  PipelineEngine engine(opts);
  sw::ChunkJob job = make_job(b, 0, 0, 16);
  job.stop = &stop;
  engine.submit(job);
  try {
    engine.collect();
    FAIL() << "collect did not rethrow the stop";
  } catch (const util::StatusError& e) {
    EXPECT_TRUE(util::is_stop_code(e.status().code())) << e.what();
  }
  // The engine stays usable after a stopped job.
  const sw::ChunkResult r = engine.run(make_job(b, 1, 16, 16));
  EXPECT_EQ(r.scores.size(), 16u);
}

TEST(PipelineEngine, CollectWithoutSubmitThrows) {
  EngineOptions opts;
  opts.params = kParams;
  PipelineEngine engine(opts);
  EXPECT_THROW(engine.collect(), util::StatusError);
}

TEST(PipelineEngine, ShapeChangeRequiresEmptyPipeline) {
  const Batch small = make_batch(7, 32, 8, 12);
  const Batch wide = make_batch(8, 32, 8, 24);
  EngineOptions opts;
  opts.params = kParams;
  opts.overlap_depth = 2;
  PipelineEngine engine(opts);
  engine.submit(make_job(small, 0, 0, 16));
  EXPECT_THROW(engine.submit(make_job(wide, 1, 0, 16)), util::StatusError);
  engine.collect();
  // Pipeline drained: the new shape is accepted and scores correctly.
  const sw::ChunkResult r = engine.run(make_job(wide, 1, 0, 16));
  const GpuRunResult ref = gpu_bpbc_max_scores(
      std::span<const Sequence>(wide.xs).subspan(0, 16),
      std::span<const Sequence>(wide.ys).subspan(0, 16), kParams,
      sw::LaneWidth::k32);
  EXPECT_EQ(r.scores, ref.scores);
}

}  // namespace
}  // namespace swbpbc::device
