#include <gtest/gtest.h>

#include "device/match_kernels.hpp"
#include "encoding/random.hpp"
#include "strmatch/exact.hpp"

namespace swbpbc::device {
namespace {

TEST(GpuMatchKernel, MatchesScalarFlags) {
  util::Xoshiro256 rng(42);
  const std::size_t count = 70, m = 6, n = 40;
  auto xs = encoding::random_sequences(rng, count, m);
  auto ys = encoding::random_sequences(rng, count, n);
  for (std::size_t k = 0; k < count; k += 4) {
    encoding::plant_motif(ys[k], xs[k], k % (n - m + 1));
  }
  const GpuMatchResult result =
      gpu_bpbc_match(xs, ys, /*block_dim=*/16, /*record_metrics=*/false,
                     bulk::Mode::kSerial);
  ASSERT_EQ(result.offsets, n - m + 1);
  for (std::size_t k = 0; k < count; ++k) {
    const auto scalar = strmatch::match_flags(xs[k], ys[k]);
    const std::size_t g = k / 32;
    const std::size_t lane = k % 32;
    for (std::size_t j = 0; j < result.offsets; ++j) {
      const std::uint32_t word =
          result.group_flags[g * result.offsets + j];
      EXPECT_EQ((word >> lane) & 1u, scalar[j])
          << "instance " << k << " offset " << j;
    }
  }
}

TEST(GpuMatchKernel, MetricsCountEveryCharacterRead) {
  util::Xoshiro256 rng(43);
  const std::size_t count = 32, m = 5, n = 20;
  const auto xs = encoding::random_sequences(rng, count, m);
  const auto ys = encoding::random_sequences(rng, count, n);
  const GpuMatchResult result =
      gpu_bpbc_match(xs, ys, 8, /*record_metrics=*/true,
                     bulk::Mode::kSerial);
  // Per offset: m positions x 4 slice reads; one flag write per offset.
  const std::uint64_t offsets = n - m + 1;
  EXPECT_EQ(result.metrics.global_reads, offsets * m * 4);
  EXPECT_EQ(result.metrics.global_writes, offsets);
  EXPECT_GT(result.metrics.global_read_transactions, 0u);
}

TEST(GpuMatchKernel, ValidatesInput) {
  util::Xoshiro256 rng(44);
  const auto xs = encoding::random_sequences(rng, 2, 8);
  const auto ys = encoding::random_sequences(rng, 2, 4);  // m > n
  EXPECT_THROW(gpu_bpbc_match(xs, ys), std::invalid_argument);
  const auto ys2 = encoding::random_sequences(rng, 3, 16);
  EXPECT_THROW(gpu_bpbc_match(xs, ys2), std::invalid_argument);
  const std::vector<encoding::Sequence> none;
  EXPECT_TRUE(gpu_bpbc_match(none, none).group_flags.empty());
}

TEST(GpuMatchKernel, ParallelMatchesSerial) {
  util::Xoshiro256 rng(45);
  const auto xs = encoding::random_sequences(rng, 96, 5);
  const auto ys = encoding::random_sequences(rng, 96, 24);
  const auto a = gpu_bpbc_match(xs, ys, 16, false, bulk::Mode::kSerial);
  const auto b = gpu_bpbc_match(xs, ys, 16, false, bulk::Mode::kParallel);
  EXPECT_EQ(a.group_flags, b.group_flags);
}

}  // namespace
}  // namespace swbpbc::device
