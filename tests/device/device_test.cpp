#include <gtest/gtest.h>

#include "device/launch.hpp"
#include "device/memory.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/scalar.hpp"

namespace swbpbc::device {
namespace {

// --- launch machinery -------------------------------------------------------

struct CountingKernel {
  std::vector<int>* cells;
  std::size_t block;
  unsigned dim;
  std::size_t phases;

  [[nodiscard]] unsigned block_dim() const { return dim; }
  [[nodiscard]] std::size_t num_phases() const { return phases; }
  void step(std::size_t, unsigned tid) {
    (*cells)[block * dim + tid] += 1;
  }
};

TEST(Launch, RunsEveryThreadEveryPhase) {
  std::vector<int> cells(4 * 8, 0);
  launch(LaunchConfig{4, false, bulk::Mode::kSerial},
         [&](std::size_t b, BlockRecorder&) {
           return CountingKernel{&cells, b, 8, 3};
         });
  for (int c : cells) EXPECT_EQ(c, 3);
}

struct BarrierKernel {
  // Verifies phase-boundary visibility: phase 0 writes, phase 1 reads.
  std::vector<std::uint32_t> shared;
  bool* ok;

  explicit BarrierKernel(bool* flag) : shared(32, 0), ok(flag) {}
  [[nodiscard]] unsigned block_dim() const { return 32; }
  [[nodiscard]] std::size_t num_phases() const { return 2; }
  void step(std::size_t phase, unsigned tid) {
    if (phase == 0) {
      shared[tid] = tid * 7u;
    } else {
      const unsigned neighbor = (tid + 1) % 32;
      if (shared[neighbor] != neighbor * 7u) *ok = false;
    }
  }
};

TEST(Launch, PhaseBoundaryActsAsBarrier) {
  bool ok = true;
  launch(LaunchConfig{1, false, bulk::Mode::kSerial},
         [&](std::size_t, BlockRecorder&) { return BarrierKernel(&ok); });
  EXPECT_TRUE(ok);
}

// --- metric machinery -------------------------------------------------------

TEST(Metrics, CoalescedWarpAccessIsOneTransaction) {
  BlockRecorder rec(true);
  // A full warp reading 32 consecutive 4-byte words = 128 bytes = 1 segment.
  for (unsigned tid = 0; tid < 32; ++tid) {
    rec.record_global_read(tid, tid * 4);
  }
  rec.end_phase();
  EXPECT_EQ(rec.totals().global_reads, 32u);
  EXPECT_EQ(rec.totals().global_read_transactions, 1u);
}

TEST(Metrics, StridedWarpAccessIsManyTransactions) {
  BlockRecorder rec(true);
  for (unsigned tid = 0; tid < 32; ++tid) {
    rec.record_global_read(tid, static_cast<std::uint64_t>(tid) * 4096);
  }
  rec.end_phase();
  EXPECT_EQ(rec.totals().global_read_transactions, 32u);
}

TEST(Metrics, SeparateWarpsDoNotCoalesceTogether) {
  BlockRecorder rec(true);
  rec.record_global_read(0, 0);
  rec.record_global_read(32, 0);  // second warp, same segment
  rec.end_phase();
  EXPECT_EQ(rec.totals().global_read_transactions, 2u);
}

TEST(Metrics, BankConflictsCounted) {
  BlockRecorder rec(true);
  // Two threads of one warp hitting bank 5 -> one conflict surplus.
  rec.record_shared(0, 5);
  rec.record_shared(1, 5);
  // Distinct banks -> no conflict.
  rec.record_shared(2, 6);
  rec.end_phase();
  EXPECT_EQ(rec.totals().shared_accesses, 3u);
  EXPECT_EQ(rec.totals().shared_bank_conflicts, 1u);
}

TEST(Metrics, DisabledRecorderStaysZero) {
  BlockRecorder rec(false);
  rec.record_global_read(0, 0);
  rec.record_shared(0, 0);
  rec.end_phase();
  EXPECT_EQ(rec.totals().global_reads, 0u);
  EXPECT_EQ(rec.totals().shared_accesses, 0u);
}

TEST(Metrics, SharedArrayReportsBanks) {
  BlockRecorder rec(true);
  SharedArray<std::uint64_t> arr(8, &rec);
  arr.store(0, 1, /*tid=*/0);  // 8-byte element -> banks 0 and 1
  rec.end_phase();
  EXPECT_EQ(rec.totals().shared_accesses, 2u);
}

// --- full pipelines ----------------------------------------------------------

class GpuPipeline : public ::testing::TestWithParam<sw::LaneWidth> {};

TEST_P(GpuPipeline, MatchesScalarReference) {
  util::Xoshiro256 rng(7001);
  const std::size_t count = 70, m = 9, n = 33;
  const auto xs = encoding::random_sequences(rng, count, m);
  const auto ys = encoding::random_sequences(rng, count, n);
  const sw::ScoreParams params{2, 1, 1};
  GpuRunOptions options;
  options.mode = bulk::Mode::kSerial;
  const GpuRunResult result =
      gpu_bpbc_max_scores(xs, ys, params, GetParam(), options);
  ASSERT_EQ(result.scores.size(), count);
  for (std::size_t k = 0; k < count; ++k) {
    EXPECT_EQ(result.scores[k], sw::max_score(xs[k], ys[k], params))
        << "instance " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(BothWidths, GpuPipeline,
                         ::testing::Values(sw::LaneWidth::k32,
                                           sw::LaneWidth::k64));

TEST(GpuPipelineMisc, WordwiseKernelMatchesScalar) {
  util::Xoshiro256 rng(7002);
  const std::size_t count = 17, m = 8, n = 21;
  const auto xs = encoding::random_sequences(rng, count, m);
  const auto ys = encoding::random_sequences(rng, count, n);
  const sw::ScoreParams params{2, 1, 1};
  GpuRunOptions options;
  options.mode = bulk::Mode::kSerial;
  const GpuRunResult result =
      gpu_wordwise_max_scores(xs, ys, params, options);
  for (std::size_t k = 0; k < count; ++k) {
    EXPECT_EQ(result.scores[k], sw::max_score(xs[k], ys[k], params))
        << "instance " << k;
  }
}

TEST(GpuPipelineMisc, ParallelBlocksMatchSerial) {
  util::Xoshiro256 rng(7003);
  const std::size_t count = 96, m = 7, n = 19;
  const auto xs = encoding::random_sequences(rng, count, m);
  const auto ys = encoding::random_sequences(rng, count, n);
  const sw::ScoreParams params{2, 1, 1};
  GpuRunOptions serial;
  serial.mode = bulk::Mode::kSerial;
  GpuRunOptions parallel;
  parallel.mode = bulk::Mode::kParallel;
  const auto a =
      gpu_bpbc_max_scores(xs, ys, params, sw::LaneWidth::k32, serial);
  const auto b =
      gpu_bpbc_max_scores(xs, ys, params, sw::LaneWidth::k32, parallel);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(GpuPipelineMisc, MetricsShowStridedW2bReads) {
  util::Xoshiro256 rng(7004);
  const std::size_t count = 32, m = 8, n = 16;
  const auto xs = encoding::random_sequences(rng, count, m);
  const auto ys = encoding::random_sequences(rng, count, n);
  const sw::ScoreParams params{2, 1, 1};
  GpuRunOptions options;
  options.record_metrics = true;
  options.mode = bulk::Mode::kSerial;
  const GpuRunResult result =
      gpu_bpbc_max_scores(xs, ys, params, sw::LaneWidth::k32, options);

  const MetricTotals& w2b = result.stage_metrics[sw::PipelineStage::kW2B];
  const MetricTotals& swa = result.stage_metrics[sw::PipelineStage::kSWA];
  const MetricTotals& b2w = result.stage_metrics[sw::PipelineStage::kB2W];
  // W2B reads every input character once: count * (m + n) word reads.
  EXPECT_EQ(w2b.global_reads, static_cast<std::uint64_t>(count) * (m + n));
  // Transactions can never beat the segment lower bound (4-byte words,
  // 128-byte segments). Per-instruction strided penalties are exercised
  // at the recorder level (Metrics.StridedWarpAccessIsManyTransactions);
  // the per-phase model merges a thread's accesses within one phase.
  EXPECT_GE(w2b.global_read_transactions,
            w2b.global_reads * 4 / kSegmentBytes);
  EXPECT_GT(w2b.global_writes, 0u);
  // The SWA kernel reads each y character slice pair once per row:
  // 2 slices * m * n loads (plus 2m x-reads).
  EXPECT_EQ(swa.global_reads, 2ull * m * n + 2ull * m);
  EXPECT_GT(swa.shared_accesses, 0u);
  // B2W writes one score per instance.
  EXPECT_EQ(b2w.global_writes, count);
  // The copy stages carry synthetic transfer traffic.
  EXPECT_EQ(result.stage_metrics[sw::PipelineStage::kH2G].global_writes,
            static_cast<std::uint64_t>(count) * (m + n));
  EXPECT_EQ(result.stage_metrics[sw::PipelineStage::kG2H].global_reads,
            count);
}

TEST(GpuPipelineMisc, TimingsArePopulated) {
  util::Xoshiro256 rng(7005);
  const auto xs = encoding::random_sequences(rng, 32, 8);
  const auto ys = encoding::random_sequences(rng, 32, 32);
  const auto result = gpu_bpbc_max_scores(xs, ys, {2, 1, 1},
                                          sw::LaneWidth::k32);
  EXPECT_GT(result.timings.swa_ms, 0.0);
  EXPECT_GE(result.timings.total_ms(), result.timings.swa_ms);
}

TEST(GpuPipelineMisc, RejectsMismatchedBatches) {
  util::Xoshiro256 rng(7006);
  const auto xs = encoding::random_sequences(rng, 3, 8);
  const auto ys = encoding::random_sequences(rng, 4, 16);
  EXPECT_THROW(
      gpu_bpbc_max_scores(xs, ys, {2, 1, 1}, sw::LaneWidth::k32),
      std::invalid_argument);
}

TEST(GpuPipelineMisc, EmptyBatch) {
  const std::vector<encoding::Sequence> none;
  const auto result =
      gpu_bpbc_max_scores(none, none, {2, 1, 1}, sw::LaneWidth::k32);
  EXPECT_TRUE(result.scores.empty());
}

}  // namespace
}  // namespace swbpbc::device
