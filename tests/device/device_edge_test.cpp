// Edge-case coverage for the GPU simulator pipelines.
#include <gtest/gtest.h>

#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/scalar.hpp"

namespace swbpbc::device {
namespace {

TEST(DeviceEdge, SingleRowPattern) {
  // m = 1: one thread per block; the pipelined max reduction reduces to
  // the single thread writing its own running max.
  util::Xoshiro256 rng(1);
  const auto xs = encoding::random_sequences(rng, 33, 1);
  const auto ys = encoding::random_sequences(rng, 33, 17);
  const sw::ScoreParams params{2, 1, 1};
  const auto result = gpu_bpbc_max_scores(xs, ys, params,
                                          sw::LaneWidth::k32);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    EXPECT_EQ(result.scores[k], sw::max_score(xs[k], ys[k], params));
  }
}

TEST(DeviceEdge, SingleColumnText) {
  util::Xoshiro256 rng(2);
  const auto xs = encoding::random_sequences(rng, 32, 9);
  const auto ys = encoding::random_sequences(rng, 32, 1);
  const sw::ScoreParams params{2, 1, 1};
  const auto result = gpu_bpbc_max_scores(xs, ys, params,
                                          sw::LaneWidth::k64);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    EXPECT_EQ(result.scores[k], sw::max_score(xs[k], ys[k], params));
  }
}

TEST(DeviceEdge, SquareProblem) {
  util::Xoshiro256 rng(3);
  const auto xs = encoding::random_sequences(rng, 40, 13);
  const auto ys = encoding::random_sequences(rng, 40, 13);
  const sw::ScoreParams params{3, 2, 1};
  const auto result = gpu_bpbc_max_scores(xs, ys, params,
                                          sw::LaneWidth::k32);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    EXPECT_EQ(result.scores[k], sw::max_score(xs[k], ys[k], params));
  }
}

TEST(DeviceEdge, WordwiseKernelSingleRow) {
  util::Xoshiro256 rng(4);
  const auto xs = encoding::random_sequences(rng, 5, 1);
  const auto ys = encoding::random_sequences(rng, 5, 9);
  const sw::ScoreParams params{2, 1, 1};
  const auto result = gpu_wordwise_max_scores(xs, ys, params);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    EXPECT_EQ(result.scores[k], sw::max_score(xs[k], ys[k], params));
  }
}

TEST(DeviceEdge, IdenticalPairsSaturate) {
  util::Xoshiro256 rng(5);
  const auto x = encoding::random_sequence(rng, 12);
  const std::vector<encoding::Sequence> xs(64, x);
  const std::vector<encoding::Sequence> ys(64, x);
  const sw::ScoreParams params{2, 1, 1};
  const auto result = gpu_bpbc_max_scores(xs, ys, params,
                                          sw::LaneWidth::k64);
  for (auto sc : result.scores) EXPECT_EQ(sc, 24u);
}

TEST(DeviceEdge, SmallW2bBlockDim) {
  // Block dim smaller than the position count exercises the grid-stride
  // loop of the W2B kernel.
  util::Xoshiro256 rng(6);
  const auto xs = encoding::random_sequences(rng, 32, 8);
  const auto ys = encoding::random_sequences(rng, 32, 24);
  const sw::ScoreParams params{2, 1, 1};
  GpuRunOptions options;
  options.w2b_block_dim = 4;
  options.mode = bulk::Mode::kSerial;
  const auto result =
      gpu_bpbc_max_scores(xs, ys, params, sw::LaneWidth::k32, options);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    EXPECT_EQ(result.scores[k], sw::max_score(xs[k], ys[k], params));
  }
}

}  // namespace
}  // namespace swbpbc::device
