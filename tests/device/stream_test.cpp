// device::Stream / device::Event: CUDA-style in-order async queues on
// host threads — ordering within a stream, event-chained ordering across
// streams, error capture at synchronize(), and destructor draining.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "device/stream.hpp"

namespace swbpbc::device {
namespace {

TEST(Stream, RunsClosuresInOrder) {
  Stream s("test");
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    s.enqueue([&order, i] { order.push_back(i); });
  s.synchronize();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Stream, WorkRunsOffTheCallingThread) {
  Stream s("test");
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id worker;
  s.enqueue([&worker] { worker = std::this_thread::get_id(); });
  s.synchronize();
  EXPECT_NE(worker, caller);
}

TEST(Event, DefaultConstructedIsComplete) {
  Event e;
  e.wait();  // must not block
}

TEST(Stream, RecordedEventCompletesAfterPriorWork) {
  Stream s("test");
  std::atomic<bool> ran{false};
  s.enqueue([&ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ran.store(true);
  });
  Event e = s.record();
  e.wait();
  EXPECT_TRUE(ran.load());
}

TEST(Stream, EventChainsOrderWorkAcrossStreams) {
  Stream a("a"), b("b"), c("c");
  std::atomic<int> step{0};
  a.enqueue([&step] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    int expected = 0;
    step.compare_exchange_strong(expected, 1);
  });
  const Event a_done = a.record();
  b.wait(a_done);
  b.enqueue([&step] {
    int expected = 1;
    step.compare_exchange_strong(expected, 2);
  });
  const Event b_done = b.record();
  c.wait(b_done);
  c.enqueue([&step] {
    int expected = 2;
    step.compare_exchange_strong(expected, 3);
  });
  c.synchronize();
  EXPECT_EQ(step.load(), 3);
}

TEST(Stream, StreamsRunConcurrently) {
  // b's first closure finishes only after a's does; if the two streams
  // shared a worker serially in the wrong order this would deadlock, so
  // guard with a generous timeout via event waiting on a third stream.
  Stream a("a"), b("b");
  std::atomic<bool> a_ran{false};
  a.enqueue([&a_ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    a_ran.store(true);
  });
  const Event a_done = a.record();
  b.wait(a_done);
  std::atomic<bool> b_saw_a{false};
  b.enqueue([&a_ran, &b_saw_a] { b_saw_a.store(a_ran.load()); });
  b.synchronize();
  EXPECT_TRUE(b_saw_a.load());
}

TEST(Stream, SynchronizeRethrowsFirstError) {
  Stream s("test");
  std::atomic<int> ran{0};
  s.enqueue([] { throw std::runtime_error("first"); });
  s.enqueue([&ran] { ++ran; });  // still runs: the queue keeps draining
  s.enqueue([] { throw std::runtime_error("second"); });
  try {
    s.synchronize();
    FAIL() << "synchronize did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(ran.load(), 1);
  // The error was consumed; the stream stays usable.
  s.enqueue([&ran] { ++ran; });
  s.synchronize();
  EXPECT_EQ(ran.load(), 2);
}

TEST(Stream, EventsCompleteEvenWhenAClosureThrew) {
  Stream a("a"), b("b");
  a.enqueue([] { throw std::runtime_error("boom"); });
  const Event a_done = a.record();
  b.wait(a_done);  // must not deadlock
  std::atomic<bool> b_ran{false};
  b.enqueue([&b_ran] { b_ran.store(true); });
  b.synchronize();
  EXPECT_TRUE(b_ran.load());
  EXPECT_THROW(a.synchronize(), std::runtime_error);
}

TEST(Stream, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    Stream s("test");
    for (int i = 0; i < 4; ++i)
      s.enqueue([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
  }
  EXPECT_EQ(ran.load(), 4);
}

TEST(Stream, DestructorSwallowsPendingError) {
  Stream s("test");
  s.enqueue([] { throw std::runtime_error("unobserved"); });
  // Destruction with a captured, never-synchronized error must not
  // terminate the process.
}

}  // namespace
}  // namespace swbpbc::device
