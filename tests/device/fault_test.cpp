#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "device/fault.hpp"
#include "device/launch.hpp"
#include "device/metrics.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/wordwise.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace swbpbc::device {
namespace {

constexpr sw::ScoreParams kParams{2, 1, 1};

struct Batch {
  std::vector<encoding::Sequence> xs;
  std::vector<encoding::Sequence> ys;
};

Batch make_batch(std::uint64_t seed, std::size_t count, std::size_t m,
                 std::size_t n) {
  util::Xoshiro256 rng(seed);
  return {encoding::random_sequences(rng, count, m),
          encoding::random_sequences(rng, count, n)};
}

GpuRunOptions serial_options() {
  GpuRunOptions opt;
  opt.mode = bulk::Mode::kSerial;
  return opt;
}

TEST(FaultInjector, ZeroConfigMatchesCleanRun) {
  const Batch b = make_batch(1, 40, 8, 20);
  const auto clean =
      gpu_bpbc_max_scores(b.xs, b.ys, kParams, sw::LaneWidth::k32,
                          serial_options());

  FaultInjector injector{FaultConfig{}};  // all probabilities zero
  GpuRunOptions opt = serial_options();
  opt.faults = &injector;
  const auto faulty =
      gpu_bpbc_max_scores(b.xs, b.ys, kParams, sw::LaneWidth::k32, opt);

  EXPECT_EQ(clean.scores, faulty.scores);
  EXPECT_TRUE(faulty.status.ok());
  EXPECT_EQ(injector.log().total(), 0u);
}

TEST(FaultInjector, SameSeedSameFaultsSameScores) {
  const Batch b = make_batch(2, 64, 8, 16);
  FaultConfig config;
  config.seed = 99;
  config.flip_probability = 0.01;
  config.drop_sync_probability = 0.2;

  std::vector<std::uint32_t> scores[2];
  FaultLog logs[2];
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(config);
    GpuRunOptions opt = serial_options();
    opt.faults = &injector;
    scores[run] =
        gpu_bpbc_max_scores(b.xs, b.ys, kParams, sw::LaneWidth::k32, opt)
            .scores;
    logs[run] = injector.log();
  }
  EXPECT_EQ(scores[0], scores[1]);
  EXPECT_EQ(logs[0].bit_flips, logs[1].bit_flips);
  EXPECT_EQ(logs[0].syncs_dropped, logs[1].syncs_dropped);
  EXPECT_EQ(logs[0].watchdog_trips, logs[1].watchdog_trips);
}

TEST(FaultInjector, RetryCampaignsDiffer) {
  // The same injector must not replay identical faults on a retry: the
  // campaign counter advances per run, giving recovery a fresh draw.
  const Batch b = make_batch(3, 32, 8, 16);
  FaultConfig config;
  config.seed = 7;
  config.flip_probability = 0.02;
  FaultInjector injector(config);
  GpuRunOptions opt = serial_options();
  opt.faults = &injector;

  const auto first =
      gpu_bpbc_max_scores(b.xs, b.ys, kParams, sw::LaneWidth::k32, opt)
          .scores;
  const std::uint64_t flips_first = injector.log().bit_flips;
  const auto second =
      gpu_bpbc_max_scores(b.xs, b.ys, kParams, sw::LaneWidth::k32, opt)
          .scores;
  const std::uint64_t flips_second =
      injector.log().bit_flips - flips_first;
  // Both runs saw flips, but not the same fault pattern (different scores
  // or different flip counts; with p = 2% collisions are implausible).
  EXPECT_GT(flips_first, 0u);
  EXPECT_GT(flips_second, 0u);
  EXPECT_TRUE(first != second || flips_first != flips_second);
}

TEST(FaultInjector, BitFlipsCorruptScoresAndAreLogged) {
  const Batch b = make_batch(4, 64, 10, 24);
  const auto clean =
      gpu_bpbc_max_scores(b.xs, b.ys, kParams, sw::LaneWidth::k32,
                          serial_options());

  FaultConfig config;
  config.seed = 11;
  config.flip_probability = 0.02;
  FaultInjector injector(config);
  GpuRunOptions opt = serial_options();
  opt.faults = &injector;
  const auto faulty =
      gpu_bpbc_max_scores(b.xs, b.ys, kParams, sw::LaneWidth::k32, opt);

  EXPECT_GT(injector.log().bit_flips, 0u);
  EXPECT_NE(clean.scores, faulty.scores);
}

TEST(FaultInjector, DroppedSyncIsLoggedOncePerBlock) {
  const Batch b = make_batch(5, 64, 8, 16);
  FaultConfig config;
  config.seed = 13;
  config.drop_sync_probability = 1.0;
  FaultInjector injector(config);
  GpuRunOptions opt = serial_options();
  opt.faults = &injector;
  gpu_bpbc_max_scores(b.xs, b.ys, kParams, sw::LaneWidth::k32, opt);
  // Only the SWA kernel issues shared-memory stores; with p = 1 each of
  // its blocks loses exactly one phase's stores, counted once per block.
  const std::size_t n_groups = (64 + 31) / 32;
  EXPECT_EQ(injector.log().syncs_dropped, n_groups);
}

TEST(FaultInjector, WatchdogKillsStalledBlocks) {
  const std::size_t count = 64, m = 8, n = 16;
  const Batch b = make_batch(6, count, m, n);
  FaultConfig config;
  config.seed = 17;
  config.stall_probability = 1.0;
  FaultInjector injector(config);
  GpuRunOptions opt = serial_options();
  opt.faults = &injector;
  opt.watchdog_phases = m + n + 8;  // SWA needs m+n-1; stall adds 2^20
  const auto result =
      gpu_bpbc_max_scores(b.xs, b.ys, kParams, sw::LaneWidth::k32, opt);

  const std::size_t n_groups = (count + 31) / 32;
  EXPECT_EQ(injector.log().watchdog_trips, n_groups);
  EXPECT_EQ(result.status.code(), util::ErrorCode::kKernelTimeout);
  // Killed blocks never wrote their score slices: every lane reads zero.
  for (std::uint32_t s : result.scores) EXPECT_EQ(s, 0u);
}

TEST(FaultInjector, WatchdogWithoutInjectorThrowsTyped) {
  const Batch b = make_batch(7, 8, 8, 16);
  GpuRunOptions opt = serial_options();
  opt.watchdog_phases = 2;  // SWA legitimately needs m+n-1 = 23 phases
  try {
    gpu_bpbc_max_scores(b.xs, b.ys, kParams, sw::LaneWidth::k32, opt);
    FAIL() << "expected StatusError";
  } catch (const util::StatusError& e) {
    EXPECT_EQ(e.status().code(), util::ErrorCode::kKernelTimeout);
  }
}

// Regression for the watchdog-timeout ergonomics: when exactly ONE block
// trips the watchdog (no injector attached), the parallel launch must
// surface a single clean StatusError(kKernelTimeout) naming that block —
// never an AggregateError bundling the surviving blocks' unwinds.
TEST(FaultInjector, SingleWatchdogTripIsOneCleanParallelError) {
  struct PhaseKernel {
    std::size_t phases;
    [[nodiscard]] unsigned block_dim() const { return 1; }
    [[nodiscard]] std::size_t num_phases() const { return phases; }
    void step(std::size_t, unsigned) {}
  };
  for (int round = 0; round < 20; ++round) {
    LaunchConfig cfg;
    cfg.grid_dim = 16;
    cfg.mode = bulk::Mode::kParallel;
    cfg.watchdog_phases = 8;
    bool caught = false;
    try {
      launch(cfg, [](std::size_t b, BlockRecorder&) {
        return PhaseKernel{b == 5 ? std::size_t{64} : std::size_t{4}};
      });
    } catch (const util::AggregateError& e) {
      FAIL() << "single watchdog trip wrapped in AggregateError: "
             << e.what();
    } catch (const util::StatusError& e) {
      caught = true;
      EXPECT_EQ(e.status().code(), util::ErrorCode::kKernelTimeout);
      EXPECT_NE(e.status().message().find("block 5"), std::string::npos);
    }
    EXPECT_TRUE(caught) << "round " << round;
  }
}

TEST(FaultInjector, WordwiseBaselineAlsoInjectable) {
  const Batch b = make_batch(8, 24, 8, 16);
  FaultConfig config;
  config.seed = 23;
  config.flip_probability = 0.05;
  FaultInjector injector(config);
  GpuRunOptions opt = serial_options();
  opt.faults = &injector;
  const auto faulty = gpu_wordwise_max_scores(b.xs, b.ys, kParams, opt);
  const auto clean =
      sw::wordwise_max_scores(b.xs, b.ys, kParams, bulk::Mode::kSerial);
  EXPECT_GT(injector.log().bit_flips, 0u);
  EXPECT_NE(clean, faulty.scores);
}

}  // namespace
}  // namespace swbpbc::device
