#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "bitsim/plan.hpp"
#include "bitsim/swapcopy.hpp"
#include "bitsim/transpose.hpp"

namespace swbpbc::bitsim {
namespace {

// --- swap/copy primitives -------------------------------------------------

TEST(SwapCopy, SwapExchangesMaskedBlocks) {
  std::uint8_t a = 0xAB;  // 1010 1011
  std::uint8_t b = 0xCD;  // 1100 1101
  swap_bits<std::uint8_t>(a, b, 4, 0x0F);
  // a's high nibble <-> b's low nibble.
  EXPECT_EQ(a, 0xDB);
  EXPECT_EQ(b, 0xCA);
}

TEST(SwapCopy, SwapIsInvolution) {
  std::mt19937 rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = static_cast<std::uint32_t>(rng());
    auto b = static_cast<std::uint32_t>(rng());
    const std::uint32_t a0 = a, b0 = b;
    const std::uint32_t mask = step_mask<std::uint32_t>(8);
    swap_bits(a, b, 8, mask);
    swap_bits(a, b, 8, mask);
    EXPECT_EQ(a, a0);
    EXPECT_EQ(b, b0);
  }
}

TEST(SwapCopy, CopyHiMatchesSwapEffectOnA) {
  std::mt19937 rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = static_cast<std::uint32_t>(rng());
    auto b = static_cast<std::uint32_t>(rng());
    std::uint32_t a_sw = a, b_sw = b;
    const unsigned k = 1u << (trial % 5);
    const std::uint32_t mask = step_mask<std::uint32_t>(k);
    swap_bits(a_sw, b_sw, k, mask);
    std::uint32_t a_cp = a;
    copy_hi(a_cp, b, k, mask);
    EXPECT_EQ(a_cp, a_sw);
  }
}

TEST(SwapCopy, CopyLoMatchesSwapEffectOnB) {
  std::mt19937 rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    auto a = static_cast<std::uint32_t>(rng());
    auto b = static_cast<std::uint32_t>(rng());
    std::uint32_t a_sw = a, b_sw = b;
    const unsigned k = 1u << (trial % 5);
    const std::uint32_t mask = step_mask<std::uint32_t>(k);
    swap_bits(a_sw, b_sw, k, mask);
    std::uint32_t b_cp = b;
    copy_lo(a, b_cp, k, mask);
    EXPECT_EQ(b_cp, b_sw);
  }
}

TEST(SwapCopy, StepMaskPatterns) {
  EXPECT_EQ(step_mask<std::uint8_t>(4), 0x0F);
  EXPECT_EQ(step_mask<std::uint8_t>(2), 0x33);
  EXPECT_EQ(step_mask<std::uint8_t>(1), 0x55);
  EXPECT_EQ(step_mask<std::uint32_t>(16), 0x0000FFFFu);
  EXPECT_EQ(step_mask<std::uint64_t>(32), 0x00000000FFFFFFFFull);
}

// --- full transpose ---------------------------------------------------------

template <LaneWord W>
void check_transpose_definition() {
  constexpr unsigned kBits = word_bits_v<W>;
  std::mt19937_64 rng(42);
  std::vector<W> a(kBits);
  for (auto& w : a) w = static_cast<W>(rng());
  const std::vector<W> orig = a;
  transpose_bits(std::span<W>(a));
  for (unsigned i = 0; i < kBits; ++i) {
    for (unsigned j = 0; j < kBits; ++j) {
      const unsigned bit_t = static_cast<unsigned>((a[i] >> j) & 1);
      const unsigned bit_o = static_cast<unsigned>((orig[j] >> i) & 1);
      ASSERT_EQ(bit_t, bit_o) << "i=" << i << " j=" << j;
    }
  }
}

TEST(Transpose, Definition8) { check_transpose_definition<std::uint8_t>(); }
TEST(Transpose, Definition32) { check_transpose_definition<std::uint32_t>(); }
TEST(Transpose, Definition64) { check_transpose_definition<std::uint64_t>(); }

TEST(Transpose, RoundTrip) {
  std::mt19937 rng(7);
  std::vector<std::uint32_t> a(32);
  for (auto& w : a) w = static_cast<std::uint32_t>(rng());
  const auto orig = a;
  transpose32(std::span<std::uint32_t>(a));
  untranspose32(std::span<std::uint32_t>(a));
  EXPECT_EQ(a, orig);
}

TEST(Transpose, TransposeTwiceIsIdentity) {
  // transpose is an involution as a matrix op.
  std::mt19937_64 rng(8);
  std::vector<std::uint64_t> a(64);
  for (auto& w : a) w = static_cast<std::uint32_t>(rng());
  const auto orig = a;
  transpose64(std::span<std::uint64_t>(a));
  transpose64(std::span<std::uint64_t>(a));
  EXPECT_EQ(a, orig);
}

TEST(Transpose, FullOpsCountLemma1) {
  // Lemma 1: a 32x32 bit matrix is transposed with 560 operations.
  EXPECT_EQ(full_transpose_ops<std::uint32_t>(), 560u);
  EXPECT_EQ(full_transpose_ops<std::uint8_t>(), 84u);   // paper: 8x8 = 84
  EXPECT_EQ(full_transpose_ops<std::uint64_t>(), 1344u);
}

// --- specialized plans (Table I) -------------------------------------------

struct TableRow {
  unsigned s;
  unsigned swaps;
  unsigned copies;
  unsigned total;
};

TEST(TransposePlan, MatchesPaperTable1Rows) {
  // Rows of Table I whose per-step breakdown our liveness planner
  // reproduces exactly. (Paper rows s=16 and s=3 are internally
  // inconsistent / use a different routing; s=6 differs by one op in our
  // favor — see EXPERIMENTS.md.)
  const TableRow rows[] = {
      {32, 80, 0, 560}, {8, 12, 24, 180}, {7, 11, 25, 177},
      {5, 8, 27, 164},  {4, 4, 28, 140},  {2, 1, 30, 127},
  };
  for (const TableRow& row : rows) {
    const TransposePlan plan = TransposePlan::transpose_low_bits(32, row.s);
    EXPECT_EQ(plan.swap_count(), row.swaps) << "s=" << row.s;
    EXPECT_EQ(plan.copy_count(), row.copies) << "s=" << row.s;
    EXPECT_EQ(plan.total_operations(), row.total) << "s=" << row.s;
  }
}

TEST(TransposePlan, S16MatchesPaperPerStepColumns) {
  // Paper Table I row s=16 per-step: step1 = 16 copies, steps 2-5 =
  // 8 swaps each (its printed totals column contradicts these; we assert
  // the per-step columns).
  const TransposePlan plan = TransposePlan::transpose_low_bits(32, 16);
  ASSERT_EQ(plan.steps().size(), 5u);
  EXPECT_EQ(plan.steps()[0].copies, 16u);
  EXPECT_EQ(plan.steps()[0].swaps, 0u);
  for (std::size_t st = 1; st < 5; ++st) {
    EXPECT_EQ(plan.steps()[st].swaps, 8u);
    EXPECT_EQ(plan.steps()[st].copies, 0u);
  }
}

TEST(TransposePlan, NeverWorseThanPaperTotals) {
  // For every Table I row, our planner is at most the paper's op count.
  const TableRow paper[] = {
      {32, 80, 0, 560}, {16, 0, 0, 288}, {8, 0, 0, 180}, {7, 0, 0, 177},
      {6, 0, 0, 168},   {5, 0, 0, 164},  {4, 0, 0, 140}, {3, 0, 0, 137},
      {2, 0, 0, 127},
  };
  for (const TableRow& row : paper) {
    const TransposePlan plan = TransposePlan::transpose_low_bits(32, row.s);
    EXPECT_LE(plan.total_operations(), row.total) << "s=" << row.s;
  }
}

template <LaneWord W>
void check_plan_matches_full(unsigned s, std::uint64_t seed) {
  constexpr unsigned kBits = word_bits_v<W>;
  std::mt19937_64 rng(seed);
  const W payload_mask =
      s >= kBits ? static_cast<W>(~W{0})
                 : static_cast<W>((W{1} << s) - 1);
  std::vector<W> a(kBits), full(kBits);
  for (auto& w : a) w = static_cast<W>(rng()) & payload_mask;
  full = a;
  transpose_bits(std::span<W>(full));
  const TransposePlan plan = TransposePlan::transpose_low_bits(kBits, s);
  plan.apply(std::span<W>(a));
  for (unsigned r = 0; r < s; ++r) {
    ASSERT_EQ(a[r], full[r]) << "s=" << s << " row=" << r;
  }
}

class PlanEquivalence32 : public ::testing::TestWithParam<unsigned> {};

TEST_P(PlanEquivalence32, LiveRowsMatchFullTranspose) {
  check_plan_matches_full<std::uint32_t>(GetParam(), 1000 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPayloadWidths, PlanEquivalence32,
                         ::testing::Range(1u, 33u));

class PlanEquivalence64 : public ::testing::TestWithParam<unsigned> {};

TEST_P(PlanEquivalence64, LiveRowsMatchFullTranspose) {
  check_plan_matches_full<std::uint64_t>(GetParam(), 2000 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(SelectedPayloadWidths, PlanEquivalence64,
                         ::testing::Values(1u, 2u, 3u, 9u, 16u, 33u, 64u));

template <LaneWord W>
void check_untranspose_plan(unsigned s, std::uint64_t seed) {
  constexpr unsigned kBits = word_bits_v<W>;
  std::mt19937_64 rng(seed);
  std::vector<W> rows(kBits, 0), ref(kBits, 0);
  for (unsigned r = 0; r < s; ++r) rows[r] = static_cast<W>(rng());
  ref = rows;
  untranspose_bits(std::span<W>(ref));
  const TransposePlan plan = TransposePlan::untranspose_low_bits(kBits, s);
  plan.apply(std::span<W>(rows));
  const W mask = s >= kBits ? static_cast<W>(~W{0})
                            : static_cast<W>((W{1} << s) - 1);
  for (unsigned w = 0; w < kBits; ++w) {
    ASSERT_EQ(rows[w] & mask, ref[w] & mask) << "s=" << s << " w=" << w;
  }
}

class UntransposePlan32 : public ::testing::TestWithParam<unsigned> {};

TEST_P(UntransposePlan32, LowBitsMatchFullUntranspose) {
  check_untranspose_plan<std::uint32_t>(GetParam(), 3000 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPayloadWidths, UntransposePlan32,
                         ::testing::Range(1u, 33u));

TEST(TransposePlan, UntransposeCheaperThanFull) {
  // B2W for s-bit scores must beat the 560-op dense network.
  for (unsigned s : {2u, 9u, 16u}) {
    const TransposePlan plan = TransposePlan::untranspose_low_bits(32, s);
    EXPECT_LT(plan.total_operations(), 560u) << "s=" << s;
  }
}

TEST(TransposePlan, FullWidthPlanEqualsDenseNetwork) {
  const TransposePlan plan = TransposePlan::transpose_low_bits(32, 32);
  EXPECT_EQ(plan.total_operations(), full_transpose_ops<std::uint32_t>());
}

TEST(TransposePlan, MonotoneInPayloadWidth) {
  unsigned prev = 0;
  for (unsigned s = 1; s <= 32; ++s) {
    const unsigned ops =
        TransposePlan::transpose_low_bits(32, s).total_operations();
    EXPECT_GE(ops, prev) << "s=" << s;
    prev = ops;
  }
}

}  // namespace
}  // namespace swbpbc::bitsim
