// Planner behaviour on the other word widths the library supports (the
// paper derives Table I for 32-bit words only; the 64-bit plans drive the
// bitwise-64 rows of Table IV).
#include <gtest/gtest.h>

#include "bitsim/plan.hpp"
#include "bitsim/transpose.hpp"

namespace swbpbc::bitsim {
namespace {

TEST(WidePlans, DnaPlanCosts) {
  // W2B for 2-bit characters across widths; each halving of s relative
  // to the word width keeps shaving swaps into copies.
  const TransposePlan p8 = TransposePlan::transpose_low_bits(8, 2);
  const TransposePlan p16 = TransposePlan::transpose_low_bits(16, 2);
  const TransposePlan p32 = TransposePlan::transpose_low_bits(32, 2);
  const TransposePlan p64 = TransposePlan::transpose_low_bits(64, 2);
  EXPECT_LT(p8.total_operations(), p16.total_operations());
  EXPECT_LT(p16.total_operations(), p32.total_operations());
  EXPECT_LT(p32.total_operations(), p64.total_operations());
  // 32-bit value matches Table I; the others follow the same recipe.
  EXPECT_EQ(p32.total_operations(), 127u);
  // Per transposed character the planned cost shrinks with lane width:
  // ops / lanes is the amortized cost of one instance's character.
  EXPECT_LT(static_cast<double>(p64.total_operations()) / 64.0,
            static_cast<double>(p32.total_operations()) / 32.0 + 1.0);
}

TEST(WidePlans, FullWidthEqualsDenseNetworkEverywhere) {
  EXPECT_EQ(TransposePlan::transpose_low_bits(8, 8).total_operations(),
            full_transpose_ops<std::uint8_t>());
  EXPECT_EQ(TransposePlan::transpose_low_bits(16, 16).total_operations(),
            16u / 2 * 4 * 7);  // 4 steps x 8 swaps
  EXPECT_EQ(TransposePlan::transpose_low_bits(64, 64).total_operations(),
            full_transpose_ops<std::uint64_t>());
}

TEST(WidePlans, SixteenBitFunctionalSweep) {
  for (unsigned s = 1; s <= 16; ++s) {
    const TransposePlan plan = TransposePlan::transpose_low_bits(16, s);
    std::vector<std::uint16_t> a(16), full(16);
    std::uint32_t seed = 0x1234u + s;
    const auto next = [&seed] {
      seed = seed * 1664525u + 1013904223u;
      return static_cast<std::uint16_t>(seed >> 16);
    };
    const auto mask = static_cast<std::uint16_t>(
        s >= 16 ? 0xFFFFu : ((1u << s) - 1));
    for (auto& w : a) w = static_cast<std::uint16_t>(next() & mask);
    full = a;
    transpose_bits(std::span<std::uint16_t>(full));
    plan.apply(std::span<std::uint16_t>(a));
    for (unsigned r = 0; r < s; ++r) {
      ASSERT_EQ(a[r], full[r]) << "s=" << s << " row=" << r;
    }
  }
}

TEST(WidePlans, EightBitPaperFigure1Shape) {
  // The paper's Fig. 1 walks an 8x8 transpose: 3 steps of 4 swaps = 84
  // ops (stated in §II).
  const TransposePlan plan = TransposePlan::transpose_low_bits(8, 8);
  ASSERT_EQ(plan.steps().size(), 3u);
  for (const auto& st : plan.steps()) {
    EXPECT_EQ(st.swaps, 4u);
    EXPECT_EQ(st.copies, 0u);
  }
  EXPECT_EQ(plan.total_operations(), 84u);
}

TEST(WidePlans, PaperCopyExample8x8TwoBit) {
  // §II's small example: eight 8-bit words holding 2-bit numbers can be
  // transposed with 6 copies and 1 swap = 31 operations.
  const TransposePlan plan = TransposePlan::transpose_low_bits(8, 2);
  EXPECT_EQ(plan.copy_count(), 6u);
  EXPECT_EQ(plan.swap_count(), 1u);
  EXPECT_EQ(plan.total_operations(), 31u);
}

TEST(WidePlans, UntransposeMirrorsTransposeCost) {
  for (unsigned s : {2u, 5u, 9u}) {
    const auto fwd = TransposePlan::transpose_low_bits(32, s);
    const auto bwd = TransposePlan::untranspose_low_bits(32, s);
    // Not necessarily identical op-for-op, but the same order of
    // magnitude and both below the dense network.
    EXPECT_LT(bwd.total_operations(), 560u);
    EXPECT_LE(fwd.total_operations(), 560u);
  }
}

}  // namespace
}  // namespace swbpbc::bitsim
