// bitsim::wide_word semantics: limb layout, logic/shift arithmetic against
// a per-limb uint64 reference, the generic popcount, and the wide payload
// transposes. Every check runs for both the SIMD representation and the
// forced-scalar (array) fallback, so the fallback stays exercised even on
// hosts where the vector path is the one that dispatches.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bitops/counting.hpp"
#include "bitops/slices.hpp"
#include "bitsim/wide_transpose.hpp"
#include "bitsim/wide_word.hpp"
#include "util/rng.hpp"

namespace swbpbc::bitsim {
namespace {

template <typename W>
class WideWord : public ::testing::Test {};

using WideTypes =
    ::testing::Types<simd_word<128>, simd_word<256>, simd_word<512>,
                     wide_word<128, false>, wide_word<256, false>,
                     wide_word<512, false>>;
TYPED_TEST_SUITE(WideWord, WideTypes);

template <typename W>
W random_word(util::Xoshiro256& rng) {
  W w{};
  for (unsigned t = 0; t < W::kLimbs; ++t) set_limb(w, t, rng.next());
  return w;
}

// Reference bit read straight off the limb layout: bit k = limb k/64,
// bit k%64.
template <typename W>
bool ref_bit(const W& w, unsigned k) {
  return ((get_limb(w, k / 64) >> (k % 64)) & 1) != 0;
}

TYPED_TEST(WideWord, TraitsAndLimbLayout) {
  using W = TypeParam;
  static_assert(is_wide_word_v<W>);
  static_assert(word_bits_v<W> == W::kBits);
  static_assert(lane_limbs_v<W> == W::kBits / 64);

  constexpr W zero = bitops::word_traits<W>::zero();
  constexpr W ones = bitops::word_traits<W>::ones();
  for (unsigned t = 0; t < W::kLimbs; ++t) {
    EXPECT_EQ(get_limb(zero, t), 0u);
    EXPECT_EQ(get_limb(ones, t), ~std::uint64_t{0});
  }

  // The implicit uint64 constructor fills limb 0 only.
  const W x{0xDEADBEEFu};
  EXPECT_EQ(get_limb(x, 0), 0xDEADBEEFu);
  for (unsigned t = 1; t < W::kLimbs; ++t) EXPECT_EQ(get_limb(x, t), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(x), 0xDEADBEEFu);
}

TYPED_TEST(WideWord, LogicOpsMatchPerLimbReference) {
  using W = TypeParam;
  util::Xoshiro256 rng(1);
  for (int trial = 0; trial < 16; ++trial) {
    const W a = random_word<W>(rng);
    const W b = random_word<W>(rng);
    const W land = a & b, lor = a | b, lxor = a ^ b, lnot = ~a;
    for (unsigned t = 0; t < W::kLimbs; ++t) {
      EXPECT_EQ(get_limb(land, t), get_limb(a, t) & get_limb(b, t));
      EXPECT_EQ(get_limb(lor, t), get_limb(a, t) | get_limb(b, t));
      EXPECT_EQ(get_limb(lxor, t), get_limb(a, t) ^ get_limb(b, t));
      EXPECT_EQ(get_limb(lnot, t), ~get_limb(a, t));
    }
    EXPECT_EQ(a, a);
    EXPECT_NE(a ^ b, a ^ b ^ W{1});
  }
}

TYPED_TEST(WideWord, ShiftsMatchBitLevelReference) {
  using W = TypeParam;
  util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    const W a = random_word<W>(rng);
    for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{17},
                          std::size_t{63}, std::size_t{64}, std::size_t{65},
                          std::size_t{W::kBits - 1}, std::size_t{W::kBits}}) {
      const W l = a << k, r = a >> k;
      for (unsigned bit = 0; bit < W::kBits; ++bit) {
        const bool want_l = bit >= k && ref_bit(a, bit - static_cast<unsigned>(k));
        const bool want_r =
            bit + k < W::kBits && ref_bit(a, bit + static_cast<unsigned>(k));
        ASSERT_EQ(ref_bit(l, bit), want_l) << "<< " << k << " bit " << bit;
        ASSERT_EQ(ref_bit(r, bit), want_r) << ">> " << k << " bit " << bit;
      }
    }
  }
}

TYPED_TEST(WideWord, PopcountSumsLimbs) {
  using W = TypeParam;
  EXPECT_EQ(bitops::popcount(W{}), 0u);
  EXPECT_EQ(bitops::popcount(~W{}), W::kBits);
  W w{};
  set_limb(w, 0, 0b1011u);
  set_limb(w, W::kLimbs - 1, std::uint64_t{1} << 63);
  EXPECT_EQ(bitops::popcount(w), 4u);
}

TYPED_TEST(WideWord, PayloadTransposeRoundTripsAndMatchesBitReference) {
  using W = TypeParam;
  constexpr unsigned kLanes = word_bits_v<W>;
  const unsigned s = 9;
  util::Xoshiro256 rng(3);

  std::vector<W> block(kLanes);
  std::vector<std::uint32_t> values(kLanes);
  for (unsigned k = 0; k < kLanes; ++k) {
    values[k] = static_cast<std::uint32_t>(rng.next()) & ((1u << s) - 1);
    block[k] = W{values[k]};
  }

  const auto fwd = PayloadTranspose<W>::forward(s);
  EXPECT_EQ(fwd.live_rows(), s);
  fwd.apply(std::span<W>(block));

  // Slice l, lane k must be bit l of instance k's value.
  for (unsigned l = 0; l < s; ++l) {
    for (unsigned k = 0; k < kLanes; ++k) {
      ASSERT_EQ(ref_bit(block[l], k), ((values[k] >> l) & 1u) != 0)
          << "slice " << l << " lane " << k;
    }
  }

  // Round trip: zero the dead rows (inverse requires rows >= s zero) and
  // untranspose back to the original values.
  for (unsigned k = s; k < kLanes; ++k) block[k] = W{};
  PayloadTranspose<W>::inverse(s).apply(std::span<W>(block));
  for (unsigned k = 0; k < kLanes; ++k) {
    // Bits >= s of the inverse output are unspecified, like the plans.
    ASSERT_EQ(get_limb(block[k], 0) & ((1u << s) - 1), values[k])
        << "lane " << k;
  }
}

TEST(WideWord, SimdAndScalarFallbackAgree) {
  // Same bits in, same bits out: the two representations of one width are
  // interchangeable (this is what makes kScalarWide a valid CI stand-in
  // for the SIMD path on any host).
  util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 16; ++trial) {
    simd_word<256> a{}, b{};
    wide_word<256, false> c{}, d{};
    for (unsigned t = 0; t < 4; ++t) {
      const std::uint64_t x = rng.next(), y = rng.next();
      set_limb(a, t, x);
      set_limb(c, t, x);
      set_limb(b, t, y);
      set_limb(d, t, y);
    }
    const auto e = (a & b) ^ (a | ~b) ^ (a << 37) ^ (b >> 129);
    const auto f = (c & d) ^ (c | ~d) ^ (c << 37) ^ (d >> 129);
    for (unsigned t = 0; t < 4; ++t) {
      ASSERT_EQ(get_limb(e, t), get_limb(f, t)) << "limb " << t;
    }
  }
}

}  // namespace
}  // namespace swbpbc::bitsim
