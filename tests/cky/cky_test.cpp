#include <gtest/gtest.h>

#include <random>

#include "cky/cky.hpp"
#include "cky/grammar.hpp"

namespace swbpbc::cky {
namespace {

TEST(Grammar, BuildsAndLooksUp) {
  Grammar g;
  const auto s = g.nonterminal("S");
  EXPECT_EQ(s, 0u);
  EXPECT_EQ(g.nonterminal("S"), 0u);  // idempotent
  g.add_terminal_rule("A", 'a');
  EXPECT_EQ(g.terminal_mask('a'), 1u << g.nonterminal("A"));
  EXPECT_EQ(g.terminal_mask('z'), 0u);
  g.add_binary_rule("S", "A", "A");
  ASSERT_EQ(g.binary_rules().size(), 1u);
  EXPECT_EQ(g.start_mask(), 1u);  // defaults to the first nonterminal
  g.set_start("A");
  EXPECT_EQ(g.start_mask(), 1u << g.nonterminal("A"));
}

TEST(Grammar, RejectsTooManyNonterminals) {
  Grammar g;
  for (int i = 0; i < 32; ++i) g.nonterminal("N" + std::to_string(i));
  EXPECT_THROW(g.nonterminal("overflow"), std::invalid_argument);
}

TEST(ScalarCky, BalancedParentheses) {
  const Grammar g = balanced_parentheses_grammar();
  EXPECT_TRUE(cky_accepts(g, "()"));
  EXPECT_TRUE(cky_accepts(g, "()()"));
  EXPECT_TRUE(cky_accepts(g, "(())"));
  EXPECT_TRUE(cky_accepts(g, "(()())()"));
  EXPECT_FALSE(cky_accepts(g, ""));
  EXPECT_FALSE(cky_accepts(g, "("));
  EXPECT_FALSE(cky_accepts(g, ")("));
  EXPECT_FALSE(cky_accepts(g, "(()"));
  EXPECT_FALSE(cky_accepts(g, "())("));
}

TEST(ScalarCky, EvenPalindromes) {
  const Grammar g = palindrome_grammar();
  EXPECT_TRUE(cky_accepts(g, "aa"));
  EXPECT_TRUE(cky_accepts(g, "abba"));
  EXPECT_TRUE(cky_accepts(g, "baab"));
  EXPECT_TRUE(cky_accepts(g, "abaaba"));
  EXPECT_FALSE(cky_accepts(g, "ab"));
  EXPECT_FALSE(cky_accepts(g, "aab"));   // odd length
  EXPECT_FALSE(cky_accepts(g, "abab"));
}

TEST(ScalarCky, TableSpansAreConsistent) {
  const Grammar g = balanced_parentheses_grammar();
  const auto table = cky_table(g, "(())");
  // Span [1,3) = "()" derives S.
  EXPECT_NE(table[2][1] & g.start_mask(), 0u);
  // Span [0,2) = "((" derives nothing.
  EXPECT_EQ(table[2][0], 0u);
}

std::string random_paren_string(std::mt19937& rng, std::size_t len,
                                bool balanced) {
  std::string s;
  if (balanced) {
    // Random balanced string via a counter walk.
    std::size_t open = 0;
    while (s.size() < len) {
      const std::size_t remaining = len - s.size();
      if (open == 0 || (open < remaining && (rng() & 1) != 0)) {
        s.push_back('(');
        ++open;
      } else {
        s.push_back(')');
        --open;
      }
    }
    return s;
  }
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back((rng() & 1) != 0 ? '(' : ')');
  }
  return s;
}

template <bitsim::LaneWord W>
void check_bulk_vs_scalar(std::size_t count, std::size_t len,
                          unsigned seed) {
  std::mt19937 rng(seed);
  const Grammar g = balanced_parentheses_grammar();
  std::vector<std::string> inputs;
  for (std::size_t k = 0; k < count; ++k) {
    inputs.push_back(random_paren_string(rng, len, (k % 2) == 0));
  }
  const W accept = bpbc_cky_accepts<W>(g, inputs);
  for (std::size_t k = 0; k < count; ++k) {
    EXPECT_EQ(((accept >> k) & 1u) != 0, cky_accepts(g, inputs[k]))
        << "instance " << k << ": " << inputs[k];
  }
}

TEST(BpbcCky, MatchesScalar32) { check_bulk_vs_scalar<std::uint32_t>(32, 12, 1); }
TEST(BpbcCky, MatchesScalar64) { check_bulk_vs_scalar<std::uint64_t>(64, 10, 2); }
TEST(BpbcCky, PartialLaneCount) { check_bulk_vs_scalar<std::uint32_t>(7, 8, 3); }

TEST(BpbcCky, PalindromesBulk) {
  const Grammar g = palindrome_grammar();
  const std::vector<std::string> inputs = {"abba", "aaaa", "abab", "bbbb",
                                           "baab", "abaa"};
  const auto accept = bpbc_cky_accepts<std::uint32_t>(g, inputs);
  // Lanes (5..0) = abaa, baab, bbbb, abab, aaaa, abba -> 0 1 1 0 1 1.
  EXPECT_EQ(accept & 0x3Fu, 0b011011u);
}

TEST(BpbcCky, ValidatesInput) {
  const Grammar g = balanced_parentheses_grammar();
  const std::vector<std::string> unequal = {"()", "()()"};
  EXPECT_THROW(bpbc_cky_accepts<std::uint32_t>(g, unequal),
               std::invalid_argument);
  const std::vector<std::string> too_many(33, "()");
  EXPECT_THROW(bpbc_cky_accepts<std::uint32_t>(g, too_many),
               std::invalid_argument);
  const std::vector<std::string> none;
  EXPECT_EQ(bpbc_cky_accepts<std::uint32_t>(g, none), 0u);
}

}  // namespace
}  // namespace swbpbc::cky
