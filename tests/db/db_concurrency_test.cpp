// Concurrent db::Reader drills: many threads racing the lazy
// checksum-verify-on-first-touch of the same shards. The contract under
// the race: every thread sees a fully verified view (or the same typed
// kDbCorrupt for a damaged shard), verification is counted once per
// shard no matter how many threads collide on the first touch, and
// quarantine is sticky across threads.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "db/builder.hpp"
#include "db/fault.hpp"
#include "db/reader.hpp"
#include "encoding/random.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace swbpbc::db {
namespace {

constexpr std::size_t kThreads = 16;
constexpr std::size_t kRounds = 8;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "swbpbc_dbconc_" + name;
}

std::vector<encoding::Sequence> make_batch(std::size_t count,
                                           std::size_t length) {
  util::Xoshiro256 rng(11);
  return encoding::random_sequences(rng, count, length);
}

TEST(DbConcurrency, RacingFirstTouchVerifiesEachShardOnce) {
  const std::string path = temp_path("race.swdb");
  const auto seqs = make_batch(130, 40);  // 3 shards
  ASSERT_TRUE(build_database(seqs, path).ok());
  auto reader = Reader::open(path);
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
  const std::size_t shards = reader->shard_count();
  ASSERT_EQ(shards, 3u);

  std::barrier gate(static_cast<std::ptrdiff_t>(kThreads));
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> views{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();  // all threads hit first-touch together
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t k = 0; k < shards; ++k) {
          // Each thread walks the shards in a different rotation so
          // every shard gets raced as somebody's first touch.
          const std::size_t s = (k + t) % shards;
          const auto view = reader->shard(s);
          if (!view.has_value() || view->data == nullptr ||
              view->plane(0).size() != reader->entry_length()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          views.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(views.load(), kThreads * kRounds * shards);
  // The whole point of the atomic shard-state: N racing threads still
  // pay for (and count) at most one verification per shard.
  const auto stats = reader->stats();
  EXPECT_EQ(stats.shards_verified, shards);
  EXPECT_EQ(stats.shards_corrupt, 0u);
  std::remove(path.c_str());
}

TEST(DbConcurrency, RacingThreadsAgreeOnTheSameQuarantine) {
  const std::string path = temp_path("quarantine.swdb");
  const auto seqs = make_batch(130, 40);
  ASSERT_TRUE(build_database(seqs, path).ok());

  FaultConfig fc;
  fc.seed = 42;
  fc.shard_flip_probability = 1.0;
  fc.target_shard = 1;  // damage exactly the middle shard's mapping
  FaultInjector injector(fc);
  ReaderOptions options;
  options.fault = &injector;
  auto reader = Reader::open(path, options);
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
  const std::size_t shards = reader->shard_count();

  std::barrier gate(static_cast<std::ptrdiff_t>(kThreads));
  std::atomic<std::uint64_t> wrong_verdicts{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t k = 0; k < shards; ++k) {
          const std::size_t s = (k + t) % shards;
          const auto view = reader->shard(s);
          // Shard 1 must fail kDbCorrupt for EVERY thread on EVERY
          // touch; the healthy shards must never fail.
          const bool want_corrupt = s == 1;
          const bool is_corrupt =
              !view.has_value() &&
              view.status().code() == util::ErrorCode::kDbCorrupt;
          if (is_corrupt != want_corrupt ||
              (!want_corrupt && !view.has_value()))
            wrong_verdicts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong_verdicts.load(), 0u);
  EXPECT_TRUE(reader->shard_quarantined(1));
  EXPECT_FALSE(reader->shard_quarantined(0));
  EXPECT_FALSE(reader->shard_quarantined(2));
  // Sticky failure: hashed once, failed once, never re-verified.
  const auto stats = reader->stats();
  EXPECT_EQ(stats.shards_corrupt, 1u);
  EXPECT_EQ(stats.shards_verified, shards - 1);
  std::remove(path.c_str());
}

TEST(DbConcurrency, MoveBeforeSharingKeepsCountersCoherent) {
  const std::string path = temp_path("moved.swdb");
  const auto seqs = make_batch(70, 32);  // 2 shards
  ASSERT_TRUE(build_database(seqs, path).ok());
  auto opened = Reader::open(path);
  ASSERT_TRUE(opened.has_value());
  // The daemon pattern: open, move into the serving object, then share.
  Reader reader(std::move(opened).value());

  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> failures{0};
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (std::size_t s = 0; s < reader.shard_count(); ++s)
        if (!reader.shard(s).has_value())
          failures.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(reader.stats().shards_verified, reader.shard_count());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swbpbc::db
