// Database store robustness: round trips at epsilon 2 and 5, the typed
// rejection matrix (missing file, bad magic, header/table checksum,
// version/endian/limb-width mismatch, truncation), per-shard lazy
// verification with quarantine, and the deterministic IO fault injector
// damaging only the private mapping.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "db/builder.hpp"
#include "db/fault.hpp"
#include "db/format.hpp"
#include "db/reader.hpp"
#include "encoding/batch.hpp"
#include "encoding/random.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace swbpbc::db {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "swbpbc_db_" + name;
}

std::vector<encoding::Sequence> make_batch(std::size_t count,
                                           std::size_t length,
                                           std::uint64_t seed = 11) {
  util::Xoshiro256 rng(seed);
  return encoding::random_sequences(rng, count, length);
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<char>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

// Patches a 4-byte header field and re-seals the header checksum, so the
// patched value survives validation far enough to hit its own typed check.
void patch_header_u32(const std::string& path, std::size_t offset,
                      std::uint32_t value) {
  std::vector<char> data = slurp(path);
  ASSERT_GE(data.size(), sizeof(FileHeader));
  std::memcpy(data.data() + offset, &value, sizeof(value));
  const std::uint64_t fnv =
      util::fnv1a_bytes(data.data(), sizeof(FileHeader) - sizeof(std::uint64_t));
  std::memcpy(data.data() + sizeof(FileHeader) - sizeof(std::uint64_t), &fnv,
              sizeof(fnv));
  dump(path, data);
}

TEST(DbStore, RoundTripServesIdenticalPlanes) {
  const std::string path = temp_path("roundtrip.swdb");
  const auto seqs = make_batch(130, 40);  // 3 shards, last uses 2 lanes
  ASSERT_TRUE(build_database(seqs, path).ok());

  auto reader = Reader::open(path);
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
  EXPECT_EQ(reader->entry_count(), 130u);
  EXPECT_EQ(reader->entry_length(), 40u);
  EXPECT_EQ(reader->plane_bits(), encoding::kBitsPerBase);
  EXPECT_EQ(reader->shard_count(), 3u);
  EXPECT_EQ(reader->content_fingerprint(), content_fingerprint(seqs));

  // Every shard's planes must equal the in-memory W2B of that 64-entry
  // slice — the bit-identity the db-backed screen path relies on.
  for (std::size_t s = 0; s < reader->shard_count(); ++s) {
    const auto view = reader->shard(s);
    ASSERT_TRUE(view.has_value()) << view.status().to_string();
    EXPECT_EQ(view->first_entry, s * kDbLanesPerShard);
    const std::size_t used =
        std::min<std::size_t>(kDbLanesPerShard, seqs.size() - s * 64);
    EXPECT_EQ(view->lanes_used, used);
    const auto slice = std::span<const encoding::Sequence>(seqs)
                           .subspan(s * 64, used);
    const auto expect = encoding::transpose_strings<std::uint64_t>(slice);
    ASSERT_EQ(expect.groups.size(), 1u);
    for (std::size_t i = 0; i < view->length; ++i) {
      EXPECT_EQ(view->plane(0)[i], expect.groups[0].lo[i]) << "shard " << s;
      EXPECT_EQ(view->plane(1)[i], expect.groups[0].hi[i]) << "shard " << s;
    }
  }
  const ReaderStats st = reader->stats();
  EXPECT_EQ(st.shards_verified, 3u);
  EXPECT_EQ(st.shards_corrupt, 0u);
  std::remove(path.c_str());
}

TEST(DbStore, EmptyDatabaseRoundTrips) {
  const std::string path = temp_path("empty.swdb");
  ASSERT_TRUE(build_database({}, path).ok());
  auto reader = Reader::open(path);
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
  EXPECT_EQ(reader->entry_count(), 0u);
  EXPECT_EQ(reader->shard_count(), 0u);
  std::remove(path.c_str());
}

TEST(DbStore, GenericEpsilonFiveRoundTrips) {
  const std::string path = temp_path("protein.swdb");
  util::Xoshiro256 rng(5);
  std::vector<encoding::GenericSequence> seqs(70);
  for (auto& s : seqs) {
    s.resize(33);
    for (auto& c : s) c = static_cast<std::uint8_t>(rng.below(20));
  }
  ASSERT_TRUE(build_generic_database(seqs, 5, path).ok());

  auto reader = Reader::open(path);
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
  EXPECT_EQ(reader->plane_bits(), 5u);
  ASSERT_EQ(reader->shard_count(), 2u);
  for (std::size_t s = 0; s < 2; ++s) {
    const auto view = reader->shard(s);
    ASSERT_TRUE(view.has_value());
    for (unsigned lane = 0; lane < view->lanes_used; ++lane) {
      const auto& orig = seqs[s * 64 + lane];
      for (std::size_t i = 0; i < view->length; ++i) {
        std::uint8_t code = 0;
        for (unsigned p = 0; p < view->plane_bits; ++p)
          code |= static_cast<std::uint8_t>(((view->plane(p)[i] >> lane) & 1)
                                            << p);
        ASSERT_EQ(code, orig[i]) << "shard " << s << " lane " << lane;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(DbStore, BuilderRejectsRaggedAndOversizedCodes) {
  std::vector<encoding::GenericSequence> ragged = {{1, 2, 3}, {1, 2}};
  EXPECT_EQ(build_generic_database(ragged, 2, temp_path("ragged.swdb"))
                .code(),
            util::ErrorCode::kInvalidInput);
  std::vector<encoding::GenericSequence> wide = {{1, 7, 3}};  // 7 needs 3 bits
  EXPECT_EQ(build_generic_database(wide, 2, temp_path("wide.swdb")).code(),
            util::ErrorCode::kInvalidInput);
}

TEST(DbStore, MissingFileIsCorrupt) {
  const auto reader = Reader::open(temp_path("nonexistent.swdb"));
  ASSERT_FALSE(reader.has_value());
  EXPECT_EQ(reader.status().code(), util::ErrorCode::kDbCorrupt);
}

TEST(DbStore, BadMagicIsCorrupt) {
  const std::string path = temp_path("magic.swdb");
  ASSERT_TRUE(build_database(make_batch(4, 8), path).ok());
  std::vector<char> data = slurp(path);
  data[0] ^= 0x7f;
  dump(path, data);
  const auto reader = Reader::open(path);
  ASSERT_FALSE(reader.has_value());
  EXPECT_EQ(reader.status().code(), util::ErrorCode::kDbCorrupt);
  std::remove(path.c_str());
}

TEST(DbStore, FlippedHeaderByteIsCorrupt) {
  const std::string path = temp_path("hdrflip.swdb");
  ASSERT_TRUE(build_database(make_batch(4, 8), path).ok());
  std::vector<char> data = slurp(path);
  data[24] = static_cast<char>(data[24] ^ 0x10);  // entry_count field
  dump(path, data);
  const auto reader = Reader::open(path);
  ASSERT_FALSE(reader.has_value());
  EXPECT_EQ(reader.status().code(), util::ErrorCode::kDbCorrupt);
  EXPECT_NE(reader.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DbStore, WrongVersionIsMismatch) {
  const std::string path = temp_path("version.swdb");
  ASSERT_TRUE(build_database(make_batch(4, 8), path).ok());
  patch_header_u32(path, offsetof(FileHeader, version), kDbVersion + 1);
  const auto reader = Reader::open(path);
  ASSERT_FALSE(reader.has_value());
  EXPECT_EQ(reader.status().code(), util::ErrorCode::kDbMismatch);
  std::remove(path.c_str());
}

TEST(DbStore, WrongEndiannessIsMismatch) {
  const std::string path = temp_path("endian.swdb");
  ASSERT_TRUE(build_database(make_batch(4, 8), path).ok());
  patch_header_u32(path, offsetof(FileHeader, endian), 0x04030201u);
  const auto reader = Reader::open(path);
  ASSERT_FALSE(reader.has_value());
  EXPECT_EQ(reader.status().code(), util::ErrorCode::kDbMismatch);
  std::remove(path.c_str());
}

TEST(DbStore, WrongLimbWidthIsMismatch) {
  const std::string path = temp_path("limb.swdb");
  ASSERT_TRUE(build_database(make_batch(4, 8), path).ok());
  patch_header_u32(path, offsetof(FileHeader, limb_bits), 128);
  const auto reader = Reader::open(path);
  ASSERT_FALSE(reader.has_value());
  EXPECT_EQ(reader.status().code(), util::ErrorCode::kDbMismatch);
  std::remove(path.c_str());
}

TEST(DbStore, FlippedShardTableByteIsCorrupt) {
  const std::string path = temp_path("table.swdb");
  ASSERT_TRUE(build_database(make_batch(70, 16), path).ok());
  std::vector<char> data = slurp(path);
  const std::size_t off = sizeof(FileHeader) + sizeof(ShardEntry) + 4;
  data[off] = static_cast<char>(data[off] ^ 0x01);
  dump(path, data);
  const auto reader = Reader::open(path);
  ASSERT_FALSE(reader.has_value());
  EXPECT_EQ(reader.status().code(), util::ErrorCode::kDbCorrupt);
  std::remove(path.c_str());
}

TEST(DbStore, ShardRotQuarantinesExactlyThatShard) {
  const std::string path = temp_path("rot.swdb");
  ASSERT_TRUE(build_database(make_batch(190, 24), path).ok());
  ASSERT_TRUE(corrupt_shard_for_testing(path, 1, 5, 2).ok());

  auto reader = Reader::open(path);
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
  const auto bad = reader->shard(1);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), util::ErrorCode::kDbCorrupt);
  EXPECT_NE(bad.status().message().find("checksum"), std::string::npos);
  EXPECT_TRUE(reader->shard_quarantined(1));

  // The failure sticks (no re-hash) and never spreads to healthy shards.
  EXPECT_FALSE(reader->shard(1).has_value());
  EXPECT_TRUE(reader->shard(0).has_value());
  EXPECT_TRUE(reader->shard(2).has_value());
  EXPECT_FALSE(reader->shard_quarantined(0));
  const ReaderStats st = reader->stats();
  EXPECT_EQ(st.shards_verified, 2u);
  EXPECT_EQ(st.shards_corrupt, 1u);
  std::remove(path.c_str());
}

TEST(DbStore, PhysicalTruncationQuarantinesTailShard) {
  const std::string path = temp_path("torn.swdb");
  ASSERT_TRUE(build_database(make_batch(128, 32), path).ok());
  std::vector<char> data = slurp(path);
  data.resize(data.size() - 17);  // tear into the last shard's payload
  dump(path, data);

  auto reader = Reader::open(path);
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
  EXPECT_TRUE(reader->shard(0).has_value());
  const auto torn = reader->shard(1);
  ASSERT_FALSE(torn.has_value());
  EXPECT_EQ(torn.status().code(), util::ErrorCode::kDbCorrupt);
  EXPECT_NE(torn.status().message().find("truncat"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DbStore, OutOfRangeShardIndexIsInvalid) {
  const std::string path = temp_path("range.swdb");
  ASSERT_TRUE(build_database(make_batch(10, 8), path).ok());
  auto reader = Reader::open(path);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->shard(1).status().code(),
            util::ErrorCode::kInvalidInput);
  EXPECT_EQ(corrupt_shard_for_testing(path, 9, 0, 0).code(),
            util::ErrorCode::kInvalidInput);
  std::remove(path.c_str());
}

TEST(DbFault, InjectedFlipDamagesMappingNotFile) {
  const std::string path = temp_path("inject.swdb");
  ASSERT_TRUE(build_database(make_batch(200, 24), path).ok());
  const std::vector<char> before = slurp(path);

  FaultConfig fc;
  fc.seed = 99;
  fc.shard_flip_probability = 1.0;
  fc.target_shard = 2;
  FaultInjector injector(fc);
  auto reader = Reader::open(path, {.fault = &injector});
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();

  EXPECT_TRUE(reader->shard(0).has_value());
  EXPECT_FALSE(reader->shard(2).has_value());
  EXPECT_TRUE(reader->shard_quarantined(2));
  EXPECT_EQ(injector.log().shard_flips, 1u);

  // Copy-on-write: the file on disk is untouched, and a clean re-open
  // serves every shard.
  EXPECT_EQ(slurp(path), before);
  auto clean = Reader::open(path);
  ASSERT_TRUE(clean.has_value());
  EXPECT_TRUE(clean->shard(2).has_value());
  std::remove(path.c_str());
}

TEST(DbFault, SameSeedSameCampaignIsDeterministic) {
  const std::string path = temp_path("determ.swdb");
  ASSERT_TRUE(build_database(make_batch(256, 16), path).ok());

  FaultConfig fc;
  fc.seed = 1234;
  fc.shard_flip_probability = 0.5;
  const auto quarantines = [&](FaultInjector& injector) {
    auto reader = Reader::open(path, {.fault = &injector});
    EXPECT_TRUE(reader.has_value());
    std::vector<bool> q;
    for (std::size_t s = 0; s < reader->shard_count(); ++s)
      q.push_back(!reader->shard(s).has_value());
    return q;
  };
  FaultInjector a(fc), b(fc);
  EXPECT_EQ(quarantines(a), quarantines(b));  // campaign 1 vs campaign 1
  std::remove(path.c_str());
}

TEST(DbFault, InjectedTruncationIsPerShardCorrupt) {
  const std::string path = temp_path("trunc.swdb");
  ASSERT_TRUE(build_database(make_batch(128, 32), path).ok());
  FaultConfig fc;
  fc.seed = 7;
  fc.shard_truncate_probability = 1.0;
  fc.target_shard = 0;
  FaultInjector injector(fc);
  auto reader = Reader::open(path, {.fault = &injector});
  ASSERT_TRUE(reader.has_value()) << reader.status().to_string();
  const auto torn = reader->shard(0);
  ASSERT_FALSE(torn.has_value());
  EXPECT_EQ(torn.status().code(), util::ErrorCode::kDbCorrupt);
  EXPECT_TRUE(reader->shard(1).has_value());
  EXPECT_EQ(injector.log().shard_truncations, 1u);
  std::remove(path.c_str());
}

TEST(DbFault, HeaderFlipFailsOpenWithTypedError) {
  const std::string path = temp_path("hdrfault.swdb");
  ASSERT_TRUE(build_database(make_batch(64, 16), path).ok());
  FaultConfig fc;
  fc.seed = 3;
  fc.header_flip_probability = 1.0;
  FaultInjector injector(fc);
  const auto reader = Reader::open(path, {.fault = &injector});
  ASSERT_FALSE(reader.has_value());
  const auto code = reader.status().code();
  EXPECT_TRUE(code == util::ErrorCode::kDbCorrupt ||
              code == util::ErrorCode::kDbMismatch)
      << reader.status().to_string();
  EXPECT_EQ(injector.log().header_flips, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swbpbc::db
