// End-to-end daemon drills, in process: a real ScreenServer on its own
// thread serving a real UNIX-domain socket, a real ScreenClient (or a raw
// socket when the typed rejection itself is the assertion). Covers
// bit-identity against the direct sw::screen path, journaled idempotent
// retries, typed admission rejections with retry hints, deadline shedding,
// journal-backed restart recovery, and the full fault-injected transport
// under client backoff.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "encoding/random.hpp"
#include "service/client.hpp"
#include "service/frame.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sw/pipeline.hpp"
#include "sw/scalar.hpp"
#include "sw/scoring.hpp"
#include "util/cancel.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace swbpbc::service {
namespace {

constexpr sw::ScoreParams kParams{2, 1, 1};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "swbpbc_e2e_" + name;
}

ScreenRequest make_request(const std::string& id, std::size_t pairs,
                           std::uint64_t seed, std::size_t m = 8,
                           std::size_t n = 24) {
  util::Xoshiro256 rng(seed);
  ScreenRequest req;
  req.id = id;
  req.tenant = "tenant-a";
  req.xs = encoding::random_sequences(rng, pairs, m);
  req.ys = encoding::random_sequences(rng, pairs, n);
  return req;
}

std::vector<std::uint32_t> reference_scores(const ScreenRequest& req) {
  sw::ScreenConfig config;
  config.params = kParams;
  config.width = sw::LaneWidth::k64;
  config.traceback = false;
  config.threshold = ~std::uint32_t{0};
  return sw::screen(req.xs, req.ys, config).scores;
}

/// One daemon on one thread. Stats are only read after stop() joins —
/// the server is single-threaded and its counters are not synchronized.
class ServerHarness {
 public:
  explicit ServerHarness(ServerConfig config) {
    config.stop = &stop_;
    auto created = ScreenServer::create(std::move(config));
    if (!created.has_value()) {
      create_status_ = created.status();
      return;
    }
    server_.emplace(std::move(created).value());
    thread_ = std::thread([this] { run_status_ = server_->run(); });
  }

  ~ServerHarness() { stop(); }

  [[nodiscard]] bool started() const { return server_.has_value(); }
  [[nodiscard]] const util::Status& create_status() const {
    return create_status_;
  }

  /// Drains the daemon and returns run()'s verdict.
  util::Status stop() {
    if (thread_.joinable()) {
      stop_.cancel();
      thread_.join();
    }
    return run_status_;
  }

  [[nodiscard]] const ServerStats& stats() const { return server_->stats(); }

 private:
  util::CancellationToken stop_;
  std::optional<ScreenServer> server_;
  std::thread thread_;
  util::Status create_status_;
  util::Status run_status_;
};

ServerConfig base_config(const std::string& tag) {
  ServerConfig cfg;
  cfg.socket_path = temp_path(tag + ".sock");
  cfg.journal_path = temp_path(tag + ".journal");
  std::remove(cfg.socket_path.c_str());
  std::remove(cfg.journal_path.c_str());
  cfg.params = kParams;
  cfg.width = sw::LaneWidth::k64;
  cfg.lane_group = 8;
  cfg.linger_ms = 0.5;
  return cfg;
}

ClientConfig client_config(const ServerConfig& server) {
  ClientConfig cfg;
  cfg.socket_path = server.socket_path;
  cfg.backoff.initial_ms = 1.0;
  cfg.backoff.max_ms = 20.0;
  cfg.backoff.max_attempts = 24;
  return cfg;
}

/// Raw single exchange, no retries: for asserting the typed rejection
/// frame itself rather than the client's recovery from it.
util::Expected<ScreenResponse> raw_exchange(const std::string& socket_path,
                                            const ScreenRequest& request) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    return util::Status::invalid_input("socket path too long");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  util::UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return util::Status::internal("socket() failed");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    return util::Status::internal("connect() failed");
  const auto payload = encode_request(request);
  if (auto s = write_frame(fd.get(), FrameType::kScreenRequest, payload);
      !s.ok())
    return s;
  auto frame = read_frame(fd.get());
  if (!frame.has_value()) return frame.status();
  if (!frame->has_value())
    return util::Status::internal("daemon closed without responding");
  return decode_response((*frame)->payload);
}

TEST(ServiceE2E, ScoresAreBitIdenticalToDirectScreen) {
  const auto cfg = base_config("basic");
  ServerHarness harness(cfg);
  ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
  ScreenClient client(client_config(cfg));
  ASSERT_TRUE(client.wait_ready().ok());

  for (int k = 0; k < 4; ++k) {
    const auto req =
        make_request("basic-" + std::to_string(k), 2, 100 + k);
    const auto resp = client.screen(req);
    ASSERT_TRUE(resp.has_value()) << resp.status().to_string();
    EXPECT_EQ(resp->code, util::ErrorCode::kOk);
    EXPECT_EQ(resp->id, req.id);
    EXPECT_EQ(resp->scores, reference_scores(req));
  }

  EXPECT_TRUE(harness.stop().ok());
  EXPECT_EQ(harness.stats().completed, 4u);
  EXPECT_EQ(harness.stats().protocol_errors, 0u);
}

TEST(ServiceE2E, DuplicateIdIsServedFromTheJournalCache) {
  const auto cfg = base_config("dup");
  ServerHarness harness(cfg);
  ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
  ScreenClient client(client_config(cfg));
  ASSERT_TRUE(client.wait_ready().ok());

  const auto req = make_request("dup-1", 3, 55);
  const auto first = client.screen(req);
  ASSERT_TRUE(first.has_value()) << first.status().to_string();
  const auto second = client.screen(req);  // same idempotency id
  ASSERT_TRUE(second.has_value()) << second.status().to_string();
  EXPECT_EQ(first->scores, second->scores);

  EXPECT_TRUE(harness.stop().ok());
  EXPECT_EQ(harness.stats().completed, 1u);   // computed exactly once
  EXPECT_GE(harness.stats().cache_hits, 1u);  // the retry hit the journal
}

TEST(ServiceE2E, QuotaRejectionIsTypedWithARetryHint) {
  auto cfg = base_config("quota");
  cfg.admission.tenant_quota_pairs = 4;
  ServerHarness harness(cfg);
  ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
  ScreenClient probe(client_config(cfg));
  ASSERT_TRUE(probe.wait_ready().ok());

  const auto resp =
      raw_exchange(cfg.socket_path, make_request("too-big", 8, 7));
  ASSERT_TRUE(resp.has_value()) << resp.status().to_string();
  EXPECT_EQ(resp->code, util::ErrorCode::kQuotaExceeded);
  EXPECT_GT(resp->retry_after_ms, 0.0);
  EXPECT_TRUE(resp->scores.empty());

  EXPECT_TRUE(harness.stop().ok());
  EXPECT_EQ(harness.stats().rejected_quota, 1u);
  EXPECT_EQ(harness.stats().completed, 0u);
}

TEST(ServiceE2E, PinnedSchemeFingerprintIsEnforced) {
  // The daemon scores with an affine scheme; a client that pins the
  // matching fingerprint is served, one that pins a different scheme's
  // fingerprint gets a typed rejection instead of silently-wrong scores,
  // and an unpinned legacy client is served as before.
  auto cfg = base_config("schemepin");
  sw::ScoringScheme affine;
  affine.gap_model = sw::GapModel::kAffine;
  affine.gap_open = 3;
  affine.gap_extend = 1;
  cfg.scheme = affine;
  ServerHarness harness(cfg);
  ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
  ScreenClient probe(client_config(cfg));
  ASSERT_TRUE(probe.wait_ready().ok());

  auto pinned = make_request("pin-ok", 2, 91);
  pinned.scheme_fingerprint = sw::fingerprint_scheme(affine);
  const auto ok = raw_exchange(cfg.socket_path, pinned);
  ASSERT_TRUE(ok.has_value()) << ok.status().to_string();
  EXPECT_EQ(ok->code, util::ErrorCode::kOk);
  ASSERT_EQ(ok->scores.size(), 2u);
  for (std::size_t k = 0; k < pinned.xs.size(); ++k)
    EXPECT_EQ(ok->scores[k],
              sw::scheme_max_score(pinned.xs[k], pinned.ys[k], affine));

  auto mismatched = make_request("pin-bad", 2, 92);
  mismatched.scheme_fingerprint =
      sw::fingerprint_scheme(sw::ScoringScheme::from_params(kParams));
  const auto rejected = raw_exchange(cfg.socket_path, mismatched);
  ASSERT_TRUE(rejected.has_value()) << rejected.status().to_string();
  EXPECT_EQ(rejected->code, util::ErrorCode::kInvalidInput);
  EXPECT_NE(rejected->message.find("fingerprint"), std::string::npos);
  EXPECT_TRUE(rejected->scores.empty());

  const auto unpinned =
      raw_exchange(cfg.socket_path, make_request("pin-none", 2, 93));
  ASSERT_TRUE(unpinned.has_value()) << unpinned.status().to_string();
  EXPECT_EQ(unpinned->code, util::ErrorCode::kOk);

  EXPECT_TRUE(harness.stop().ok());
  EXPECT_EQ(harness.stats().rejected_scheme, 1u);
  EXPECT_EQ(harness.stats().completed, 2u);
}

TEST(ServiceE2E, ClientGivesUpTypedAfterRetryExhaustion) {
  auto cfg = base_config("exhaust");
  cfg.admission.tenant_quota_pairs = 4;
  ServerHarness harness(cfg);
  ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
  auto ccfg = client_config(cfg);
  ccfg.backoff.max_attempts = 3;
  ScreenClient client(ccfg);
  ASSERT_TRUE(client.wait_ready().ok());

  const auto resp = client.screen(make_request("too-big", 8, 7));
  ASSERT_FALSE(resp.has_value());
  EXPECT_EQ(resp.status().code(), util::ErrorCode::kRetryExhausted);
  EXPECT_GE(client.counters().quota_rejections, 1u);
  EXPECT_GE(client.counters().backoff_sleeps, 1u);
  harness.stop();
}

TEST(ServiceE2E, ExpiredDeadlineBudgetIsShedNotScoredLate) {
  auto cfg = base_config("deadline");
  cfg.lane_group = 64;     // never fills from one tiny request
  cfg.linger_ms = 1e6;     // and the linger never flushes it
  ServerHarness harness(cfg);
  ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
  ScreenClient client(client_config(cfg));
  ASSERT_TRUE(client.wait_ready().ok());

  auto req = make_request("impatient", 2, 9);
  req.deadline_budget_ms = 0.01;  // expires while queued
  const auto resp = client.screen(req);
  ASSERT_TRUE(resp.has_value()) << resp.status().to_string();
  EXPECT_EQ(resp->code, util::ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(resp->scores.empty());

  EXPECT_TRUE(harness.stop().ok());
  EXPECT_EQ(harness.stats().shed_deadline, 1u);
  EXPECT_EQ(harness.stats().completed, 0u);
}

TEST(ServiceE2E, RestartRecoversCompletedResponsesFromTheJournal) {
  const auto cfg = base_config("restart");
  const auto req = make_request("persist-1", 2, 31);
  std::vector<std::uint32_t> first_scores;
  {
    ServerHarness harness(cfg);
    ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
    ScreenClient client(client_config(cfg));
    ASSERT_TRUE(client.wait_ready().ok());
    const auto resp = client.screen(req);
    ASSERT_TRUE(resp.has_value()) << resp.status().to_string();
    first_scores = resp->scores;
    EXPECT_TRUE(harness.stop().ok());
  }

  // Same journal, fresh process (as far as the daemon can tell): the
  // completed response replays into the cache and the retried id is
  // served without recomputation.
  ServerHarness harness(cfg);
  ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
  ScreenClient client(client_config(cfg));
  ASSERT_TRUE(client.wait_ready().ok());
  const auto resp = client.screen(req);
  ASSERT_TRUE(resp.has_value()) << resp.status().to_string();
  EXPECT_EQ(resp->scores, first_scores);
  EXPECT_EQ(resp->scores, reference_scores(req));

  EXPECT_TRUE(harness.stop().ok());
  EXPECT_GE(harness.stats().recovered_completed, 1u);
  EXPECT_GE(harness.stats().cache_hits, 1u);
  EXPECT_EQ(harness.stats().completed, 0u);  // nothing recomputed
}

TEST(ServiceE2E, RestartRefusesAJournalFromOtherScoringRules) {
  auto cfg = base_config("rules");
  {
    ServerHarness harness(cfg);
    ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
    ScreenClient client(client_config(cfg));
    ASSERT_TRUE(client.wait_ready().ok());
    ASSERT_TRUE(client.screen(make_request("r", 2, 1)).has_value());
    EXPECT_TRUE(harness.stop().ok());
  }
  cfg.params.match = 3;  // different scoring rules, same journal
  auto created = ScreenServer::create(cfg);
  ASSERT_FALSE(created.has_value());
  EXPECT_EQ(created.status().code(),
            util::ErrorCode::kCheckpointMismatch);
}

TEST(ServiceE2E, FaultInjectedTransportStillConvergesBitIdentical) {
  auto cfg = base_config("faults");
  cfg.faults.seed = 42;
  cfg.faults.tear_probability = 0.2;
  cfg.faults.flip_probability = 0.2;
  cfg.faults.disconnect_probability = 0.15;
  cfg.faults.stall_probability = 0.1;
  cfg.faults.stall_ms = 1.0;
  ServerHarness harness(cfg);
  ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
  ScreenClient client(client_config(cfg));
  ASSERT_TRUE(client.wait_ready().ok());

  for (int k = 0; k < 8; ++k) {
    const auto req = make_request("fault-" + std::to_string(k), 2, 500 + k);
    const auto resp = client.screen(req);
    ASSERT_TRUE(resp.has_value()) << resp.status().to_string();
    EXPECT_EQ(resp->code, util::ErrorCode::kOk);
    EXPECT_EQ(resp->scores, reference_scores(req));
  }

  EXPECT_TRUE(harness.stop().ok());
  // The drill is only evidence if faults actually fired and the client
  // actually recovered through them.
  EXPECT_GT(harness.stats().faults.total(), 0u);
  EXPECT_GT(client.counters().transport_faults +
                client.counters().backoff_sleeps,
            0u);
}

TEST(ServiceE2E, MalformedPayloadGetsTypedResponseNotSilence) {
  const auto cfg = base_config("malformed");
  ServerHarness harness(cfg);
  ASSERT_TRUE(harness.started()) << harness.create_status().to_string();
  ScreenClient probe(client_config(cfg));
  ASSERT_TRUE(probe.wait_ready().ok());

  // A checksum-valid frame whose payload is not a ScreenRequest.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(cfg.socket_path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, cfg.socket_path.c_str(),
              cfg.socket_path.size() + 1);
  util::UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  ASSERT_TRUE(fd.valid());
  ASSERT_EQ(::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  ASSERT_TRUE(write_frame(fd.get(), FrameType::kScreenRequest, junk).ok());
  auto frame = read_frame(fd.get());
  ASSERT_TRUE(frame.has_value()) << frame.status().to_string();
  ASSERT_TRUE(frame->has_value());
  const auto resp = decode_response((*frame)->payload);
  ASSERT_TRUE(resp.has_value()) << resp.status().to_string();
  EXPECT_EQ(resp->code, util::ErrorCode::kInvalidInput);

  EXPECT_TRUE(harness.stop().ok());
  EXPECT_GE(harness.stats().protocol_errors, 1u);
}

}  // namespace
}  // namespace swbpbc::service
