// Crash-safe request journal: admitted/completed replay, the
// admitted-minus-completed pending set, torn-tail salvage after a
// simulated kill mid-append, and the typed rejections — foreign
// fingerprint (scoring config changed) and records damaged beyond the
// torn tail.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "encoding/random.hpp"
#include "service/journal.hpp"
#include "service/protocol.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace swbpbc::service {
namespace {

constexpr std::uint64_t kFp = 0xFEEDBEEF;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "swbpbc_journal_" + name;
}

ScreenRequest make_request(const std::string& id, std::uint64_t seed = 3) {
  util::Xoshiro256 rng(seed);
  ScreenRequest req;
  req.id = id;
  req.tenant = "acme";
  req.xs = encoding::random_sequences(rng, 2, 8);
  req.ys = encoding::random_sequences(rng, 2, 24);
  return req;
}

ScreenResponse make_response(const std::string& id) {
  ScreenResponse resp;
  resp.id = id;
  resp.scores = {11, 7};
  return resp;
}

TEST(Journal, FreshJournalStartsEmpty) {
  const std::string path = temp_path("fresh.journal");
  std::remove(path.c_str());
  auto journal = RequestJournal::open(path, kFp);
  ASSERT_TRUE(journal.has_value()) << journal.status().to_string();
  EXPECT_EQ(journal->replayed(), 0u);
  EXPECT_TRUE(journal->take_pending().empty());
  EXPECT_TRUE(journal->take_completed().empty());
  std::remove(path.c_str());
}

TEST(Journal, ReplaysAdmittedMinusCompletedAsPending) {
  const std::string path = temp_path("replay.journal");
  std::remove(path.c_str());
  {
    auto journal = RequestJournal::open(path, kFp);
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal->record_admitted(make_request("done")).ok());
    ASSERT_TRUE(journal->record_admitted(make_request("pending")).ok());
    ASSERT_TRUE(journal->record_completed(make_response("done")).ok());
    EXPECT_EQ(journal->appended(), 3u);
  }  // "crash": destructor closes, no graceful shutdown bookkeeping

  auto journal = RequestJournal::open(path, kFp);
  ASSERT_TRUE(journal.has_value()) << journal.status().to_string();
  EXPECT_EQ(journal->replayed(), 3u);

  const auto pending = journal->take_pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, "pending");
  EXPECT_EQ(pending[0].xs, make_request("pending").xs);

  const auto completed = journal->take_completed();
  ASSERT_EQ(completed.size(), 1u);
  ASSERT_TRUE(completed.contains("done"));
  EXPECT_EQ(completed.at("done").scores, make_response("done").scores);
  std::remove(path.c_str());
}

TEST(Journal, SurvivesRepeatedRestarts) {
  const std::string path = temp_path("restart.journal");
  std::remove(path.c_str());
  // Three generations, each appending after a replay — the sequence
  // numbering must keep advancing or records would overwrite.
  for (int gen = 0; gen < 3; ++gen) {
    auto journal = RequestJournal::open(path, kFp);
    ASSERT_TRUE(journal.has_value()) << journal.status().to_string();
    EXPECT_EQ(journal->replayed(), static_cast<std::uint64_t>(gen));
    ASSERT_TRUE(
        journal->record_admitted(make_request("g" + std::to_string(gen)))
            .ok());
  }
  auto journal = RequestJournal::open(path, kFp);
  ASSERT_TRUE(journal.has_value());
  const auto pending = journal->take_pending();
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_EQ(pending[0].id, "g0");
  EXPECT_EQ(pending[2].id, "g2");
  std::remove(path.c_str());
}

TEST(Journal, DropsTornTailRecord) {
  const std::string path = temp_path("torn.journal");
  std::remove(path.c_str());
  {
    auto journal = RequestJournal::open(path, kFp);
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal->record_admitted(make_request("whole")).ok());
  }
  // A kill -9 mid-append leaves a partial record at the tail; fake one.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = {0x52, 0x45, 0x43, 0x00, 0x01};  // record marker...
    out.write(torn, sizeof(torn));
  }
  auto journal = RequestJournal::open(path, kFp);
  ASSERT_TRUE(journal.has_value()) << journal.status().to_string();
  EXPECT_EQ(journal->replayed(), 1u);
  const auto pending = journal->take_pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, "whole");
  // The tail was physically truncated: a new append then a clean reopen.
  ASSERT_TRUE(journal->record_admitted(make_request("after")).ok());
  auto reopened = RequestJournal::open(path, kFp);
  ASSERT_TRUE(reopened.has_value()) << reopened.status().to_string();
  EXPECT_EQ(reopened->take_pending().size(), 2u);
  std::remove(path.c_str());
}

TEST(Journal, RejectsForeignFingerprint) {
  const std::string path = temp_path("foreign.journal");
  std::remove(path.c_str());
  {
    auto journal = RequestJournal::open(path, kFp);
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal->record_admitted(make_request("r")).ok());
  }
  // Restarting under different scoring rules must refuse the journal
  // rather than serve scores computed under the old ones.
  auto journal = RequestJournal::open(path, kFp + 1);
  ASSERT_FALSE(journal.has_value());
  EXPECT_EQ(journal.status().code(), util::ErrorCode::kCheckpointMismatch);
  std::remove(path.c_str());
}

TEST(Journal, RejectsUndecodableRecordPayload) {
  const std::string path = temp_path("garbage.journal");
  std::remove(path.c_str());
  {
    // A checksum-valid record whose payload is not a journal record: the
    // stream layer accepts it, the journal layer must refuse to replay.
    auto writer = util::CheckpointWriter::try_create(path, kFp);
    ASSERT_TRUE(writer.has_value());
    const std::vector<std::uint8_t> garbage = {0x7F, 0x00, 0x01, 0x02};
    ASSERT_TRUE(writer->append(0, garbage).ok());
  }
  auto journal = RequestJournal::open(path, kFp);
  ASSERT_FALSE(journal.has_value());
  EXPECT_EQ(journal.status().code(), util::ErrorCode::kCheckpointCorrupt);
  std::remove(path.c_str());
}

TEST(Journal, CompletedResponsesRoundTripExactly) {
  const std::string path = temp_path("bits.journal");
  std::remove(path.c_str());
  ScreenResponse resp;
  resp.id = "bits";
  resp.code = util::ErrorCode::kOk;
  resp.scores = {0, 1, 0xFFFFFFFFu, 42};
  {
    auto journal = RequestJournal::open(path, kFp);
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal->record_admitted(make_request("bits")).ok());
    ASSERT_TRUE(journal->record_completed(resp).ok());
  }
  auto journal = RequestJournal::open(path, kFp);
  ASSERT_TRUE(journal.has_value());
  const auto completed = journal->take_completed();
  ASSERT_TRUE(completed.contains("bits"));
  // Bit-identical: the retrying client receives exactly the bytes the
  // crashed daemon would have sent.
  EXPECT_EQ(encode_response(completed.at("bits")), encode_response(resp));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swbpbc::service
