// Wire framing and payload codec robustness: round trips, incremental
// byte-dribble decoding, and the typed rejection matrix — bad magic,
// wrong protocol version, flipped payload byte, implausible length,
// unknown frame type, torn tail — each a precise kParseError instead of
// a desynchronized stream. Payload codecs (ScreenRequest/ScreenResponse)
// get the same treatment: every limit violation is a typed rejection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "encoding/random.hpp"
#include "service/frame.hpp"
#include "service/protocol.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace swbpbc::service {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

ScreenRequest make_request(std::size_t pairs = 3, std::size_t m = 8,
                           std::size_t n = 24) {
  util::Xoshiro256 rng(99);
  ScreenRequest req;
  req.id = "req-frame-test";
  req.tenant = "acme";
  req.deadline_budget_ms = 125.0;
  req.xs = encoding::random_sequences(rng, pairs, m);
  req.ys = encoding::random_sequences(rng, pairs, n);
  return req;
}

TEST(Frame, RoundTripsThroughDecoder) {
  const auto payload = bytes({1, 2, 3, 4, 5});
  const auto encoded = encode_frame(FrameType::kScreenRequest, payload);

  FrameDecoder decoder;
  decoder.feed(encoded);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value()) << frame.status().to_string();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kScreenRequest);
  EXPECT_EQ((*frame)->payload, payload);
  EXPECT_EQ(decoder.pending_bytes(), 0u);

  // No second frame, and the decoder is not poisoned by emptiness.
  const auto again = decoder.next();
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->has_value());
}

TEST(Frame, EmptyPayloadRoundTrips) {
  const auto encoded = encode_frame(FrameType::kPing, {});
  FrameDecoder decoder;
  decoder.feed(encoded);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kPing);
  EXPECT_TRUE((*frame)->payload.empty());
}

TEST(Frame, DecodesByteByByteDribble) {
  // A non-blocking socket delivers bytes in arbitrary slices; the decoder
  // must yield exactly the same frames when fed one byte at a time.
  const auto a = encode_frame(FrameType::kScreenRequest, bytes({7, 7, 7}));
  const auto b = encode_frame(FrameType::kPong, {});
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  FrameDecoder decoder;
  std::vector<Frame> seen;
  for (std::uint8_t byte : stream) {
    decoder.feed({&byte, 1});
    for (;;) {
      auto next = decoder.next();
      ASSERT_TRUE(next.has_value()) << next.status().to_string();
      if (!next->has_value()) break;
      seen.push_back(std::move(**next));
    }
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].type, FrameType::kScreenRequest);
  EXPECT_EQ(seen[0].payload, bytes({7, 7, 7}));
  EXPECT_EQ(seen[1].type, FrameType::kPong);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(Frame, RejectsBadMagic) {
  auto encoded = encode_frame(FrameType::kPing, {});
  encoded[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.feed(encoded);
  const auto frame = decoder.next();
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.status().code(), util::ErrorCode::kParseError);
}

TEST(Frame, RejectsWrongVersion) {
  auto encoded = encode_frame(FrameType::kPing, {});
  // version is the u16 right after the 8-byte magic.
  const std::uint16_t bogus = kProtocolVersion + 1;
  std::memcpy(encoded.data() + 8, &bogus, sizeof(bogus));
  FrameDecoder decoder;
  decoder.feed(encoded);
  const auto frame = decoder.next();
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.status().code(), util::ErrorCode::kParseError);
}

TEST(Frame, RejectsUnknownType) {
  auto encoded = encode_frame(FrameType::kPing, {});
  const std::uint16_t bogus = 999;
  std::memcpy(encoded.data() + 10, &bogus, sizeof(bogus));
  FrameDecoder decoder;
  decoder.feed(encoded);
  const auto frame = decoder.next();
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.status().code(), util::ErrorCode::kParseError);
}

TEST(Frame, RejectsFlippedPayloadByte) {
  auto encoded = encode_frame(FrameType::kScreenResponse,
                              bytes({10, 20, 30, 40}));
  encoded.back() ^= 0x04;  // damage the payload, not the header
  FrameDecoder decoder;
  decoder.feed(encoded);
  const auto frame = decoder.next();
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.status().code(), util::ErrorCode::kParseError);
}

TEST(Frame, RejectsImplausibleLength) {
  auto encoded = encode_frame(FrameType::kPing, {});
  // payload_bytes is the u64 at offset 16; declare half an exabyte.
  const std::uint64_t bogus = 1ull << 60;
  std::memcpy(encoded.data() + 16, &bogus, sizeof(bogus));
  FrameDecoder decoder;
  decoder.feed(encoded);
  const auto frame = decoder.next();
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.status().code(), util::ErrorCode::kParseError);
}

TEST(Frame, ParseErrorIsSticky) {
  auto bad = encode_frame(FrameType::kPing, {});
  bad[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.feed(bad);
  ASSERT_FALSE(decoder.next().has_value());
  // Even a pristine frame after the poison pill is refused: frame
  // boundaries are lost, the connection must drop.
  decoder.feed(encode_frame(FrameType::kPing, {}));
  const auto after = decoder.next();
  ASSERT_FALSE(after.has_value());
  EXPECT_EQ(after.status().code(), util::ErrorCode::kParseError);
}

TEST(Frame, TornFrameLeavesPendingBytes) {
  const auto encoded = encode_frame(FrameType::kScreenRequest,
                                    bytes({1, 2, 3, 4, 5, 6, 7, 8}));
  FrameDecoder decoder;
  decoder.feed({encoded.data(), encoded.size() - 3});
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(frame->has_value());  // incomplete, not an error
  EXPECT_GT(decoder.pending_bytes(), 0u);  // the tear is observable
}

TEST(Protocol, RequestRoundTrips) {
  const ScreenRequest req = make_request();
  const auto decoded = decode_request(encode_request(req));
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->id, req.id);
  EXPECT_EQ(decoded->tenant, req.tenant);
  EXPECT_EQ(decoded->deadline_budget_ms, req.deadline_budget_ms);
  ASSERT_EQ(decoded->pair_count(), req.pair_count());
  for (std::size_t k = 0; k < req.pair_count(); ++k) {
    EXPECT_EQ(decoded->xs[k], req.xs[k]);
    EXPECT_EQ(decoded->ys[k], req.ys[k]);
  }
}

TEST(Protocol, ResponseRoundTrips) {
  ScreenResponse resp;
  resp.id = "req-9";
  resp.code = util::ErrorCode::kQuotaExceeded;
  resp.message = "tenant over quota";
  resp.retry_after_ms = 42.5;
  resp.scores = {};
  const auto decoded = decode_response(encode_response(resp));
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->id, resp.id);
  EXPECT_EQ(decoded->code, util::ErrorCode::kQuotaExceeded);
  EXPECT_EQ(decoded->message, resp.message);
  EXPECT_EQ(decoded->retry_after_ms, resp.retry_after_ms);

  ScreenResponse ok;
  ok.id = "req-10";
  ok.scores = {3, 1, 4, 1, 5};
  const auto decoded_ok = decode_response(encode_response(ok));
  ASSERT_TRUE(decoded_ok.has_value());
  EXPECT_EQ(decoded_ok->code, util::ErrorCode::kOk);
  EXPECT_EQ(decoded_ok->scores, ok.scores);
}

TEST(Protocol, RejectsEmptyIdAndOversizedTenant) {
  ScreenRequest req = make_request();
  req.id.clear();
  auto decoded = decode_request(encode_request(req));
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), util::ErrorCode::kInvalidInput);

  req = make_request();
  req.tenant.assign(kMaxTenantBytes + 1, 't');
  decoded = decode_request(encode_request(req));
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), util::ErrorCode::kInvalidInput);
}

TEST(Protocol, RejectsTruncatedAndTrailingGarbage) {
  const auto payload = encode_request(make_request());
  auto truncated = payload;
  truncated.resize(truncated.size() - 5);
  auto decoded = decode_request(truncated);
  ASSERT_FALSE(decoded.has_value());

  auto padded = payload;
  padded.push_back(0);
  decoded = decode_request(padded);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), util::ErrorCode::kParseError);
}

TEST(Protocol, RejectsNonDnaCode) {
  auto payload = encode_request(make_request(1, 4, 4));
  // The last 8 bytes are the single y's codes; 0xFF is not a 2-bit base.
  payload[payload.size() - 1] = 0xFF;
  const auto decoded = decode_request(payload);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), util::ErrorCode::kInvalidInput);
}

TEST(Protocol, RejectsNegativeAndNaNDeadline) {
  ScreenRequest req = make_request();
  req.deadline_budget_ms = -1.0;
  auto decoded = decode_request(encode_request(req));
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), util::ErrorCode::kInvalidInput);

  req.deadline_budget_ms = std::nan("");
  decoded = decode_request(encode_request(req));
  ASSERT_FALSE(decoded.has_value());
}

TEST(Protocol, RejectsOutOfRangeResponseCode) {
  ScreenResponse resp;
  resp.id = "x";
  auto payload = encode_response(resp);
  // code is the u64 after the id (u64 len + bytes); stamp a bogus value.
  const std::uint64_t bogus = 0xDEAD;
  std::memcpy(payload.data() + 8 + resp.id.size(), &bogus, sizeof(bogus));
  const auto decoded = decode_response(payload);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), util::ErrorCode::kParseError);
}

}  // namespace
}  // namespace swbpbc::service
