// Live observability drills against a real daemon on a real socket:
// stats scrapes racing a request flood (counter monotonicity, schema),
// end-to-end trace propagation (client trace id on server admission /
// queue / engine stage spans), per-tenant SLO windows in the scrape, and
// the telemetry-off zero-cost contract (bit-identical scores with the
// whole observability layer disabled).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "encoding/random.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sw/pipeline.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace swbpbc::service {
namespace {

constexpr sw::ScoreParams kParams{2, 1, 1};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "swbpbc_stats_" + name;
}

ScreenRequest make_request(const std::string& id, std::size_t pairs,
                           std::uint64_t seed, std::size_t m = 8,
                           std::size_t n = 24) {
  util::Xoshiro256 rng(seed);
  ScreenRequest req;
  req.id = id;
  req.tenant = "tenant-a";
  req.xs = encoding::random_sequences(rng, pairs, m);
  req.ys = encoding::random_sequences(rng, pairs, n);
  return req;
}

std::vector<std::uint32_t> reference_scores(const ScreenRequest& req) {
  sw::ScreenConfig config;
  config.params = kParams;
  config.width = sw::LaneWidth::k64;
  config.traceback = false;
  config.threshold = ~std::uint32_t{0};
  return sw::screen(req.xs, req.ys, config).scores;
}

class ServerHarness {
 public:
  explicit ServerHarness(ServerConfig config) {
    config.stop = &stop_;
    auto created = ScreenServer::create(std::move(config));
    if (!created.has_value()) {
      create_status_ = created.status();
      return;
    }
    server_.emplace(std::move(created).value());
    thread_ = std::thread([this] { run_status_ = server_->run(); });
  }

  ~ServerHarness() { stop(); }

  [[nodiscard]] bool started() const { return server_.has_value(); }
  [[nodiscard]] const util::Status& create_status() const {
    return create_status_;
  }

  util::Status stop() {
    if (thread_.joinable()) {
      stop_.cancel();
      thread_.join();
    }
    return run_status_;
  }

  [[nodiscard]] const ServerStats& stats() const { return server_->stats(); }

 private:
  util::CancellationToken stop_;
  std::optional<ScreenServer> server_;
  std::thread thread_;
  util::Status create_status_;
  util::Status run_status_;
};

ServerConfig base_config(const std::string& tag) {
  ServerConfig cfg;
  cfg.socket_path = temp_path(tag + ".sock");
  std::remove(cfg.socket_path.c_str());
  cfg.params = kParams;
  cfg.width = sw::LaneWidth::k64;
  cfg.lane_group = 8;
  cfg.linger_ms = 0.5;
  return cfg;
}

ClientConfig client_config(const ServerConfig& server) {
  ClientConfig cfg;
  cfg.socket_path = server.socket_path;
  cfg.backoff.initial_ms = 1.0;
  cfg.backoff.max_ms = 20.0;
  cfg.backoff.max_attempts = 24;
  return cfg;
}

TEST(StatsScrape, LiveScrapesStayMonotoneDuringFlood) {
  const ServerConfig cfg = base_config("flood");
  ServerHarness server(cfg);
  ASSERT_TRUE(server.started()) << server.create_status().to_string();

  // Worker: a stream of requests through the full reliability loop.
  std::atomic<bool> done{false};
  std::thread worker([&] {
    ScreenClient client(client_config(cfg));
    ASSERT_TRUE(client.wait_ready().ok());
    for (int k = 0; k < 24; ++k) {
      auto response =
          client.screen(make_request("flood-" + std::to_string(k), 4,
                                     static_cast<std::uint64_t>(k)));
      ASSERT_TRUE(response.has_value()) << response.status().to_string();
    }
    done.store(true);
  });

  // Scraper: repeated kStatRequest frames racing the flood. Every scrape
  // must parse, and every service counter must be monotone between
  // consecutive scrapes (they are all lifetime totals).
  ScreenClient scraper(client_config(cfg));
  ASSERT_TRUE(scraper.wait_ready().ok());
  std::map<std::string, std::uint64_t> last_counters;
  std::uint64_t scrapes = 0;
  while (!done.load()) {
    auto text = scraper.stats();
    ASSERT_TRUE(text.has_value()) << text.status().to_string();
    auto report = telemetry::parse_run_report(*text);
    ASSERT_TRUE(report.has_value()) << report.status().to_string();
    EXPECT_EQ(report->tool, "screen_serve");
    for (const auto& [name, value] : report->metrics.counters) {
      const auto it = last_counters.find(name);
      if (it != last_counters.end())
        EXPECT_GE(value, it->second) << name << " went backwards";
      last_counters[name] = value;
    }
    ++scrapes;
  }
  worker.join();
  EXPECT_GE(scrapes, 2u);

  // A final scrape must dominate everything seen mid-flood and reconcile
  // with what the workload actually did.
  auto text = scraper.stats();
  ASSERT_TRUE(text.has_value());
  auto final_report = telemetry::parse_run_report(*text);
  ASSERT_TRUE(final_report.has_value());
  const auto& counters = final_report->metrics.counters;
  for (const auto& [name, value] : last_counters) {
    const auto it = counters.find(name);
    ASSERT_NE(it, counters.end()) << name << " vanished from the report";
    EXPECT_GE(it->second, value) << name;
  }
  EXPECT_EQ(counters.at("service.admitted"), 24u);
  EXPECT_EQ(counters.at("service.completed"), 24u);
  EXPECT_GE(counters.at("service.stat_scrapes"), scrapes);
  // The SLO window saw every completion.
  EXPECT_EQ(counters.at("slo.tenant-a.completed"), 24u);
  const auto hist =
      final_report->metrics.histograms.find("slo.tenant-a.total_ms");
  ASSERT_NE(hist, final_report->metrics.histograms.end());
  EXPECT_EQ(hist->second.count, 24u);
  // Occupancy gauges exist and are sane after the drain of the queue.
  EXPECT_GE(final_report->metrics.gauges.at("service.uptime_ms"), 0.0);
  EXPECT_EQ(final_report->metrics.gauges.at("service.queue.requests"), 0.0);

  ASSERT_TRUE(server.stop().ok());
}

TEST(TracePropagation, ClientTraceIdReachesServerSpans) {
  telemetry::Telemetry server_session({.enabled = true});
  ServerConfig cfg = base_config("trace");
  cfg.telemetry = server_session.sink();
  cfg.use_engine = true;
  ServerHarness server(cfg);
  ASSERT_TRUE(server.started()) << server.create_status().to_string();

  telemetry::Telemetry client_session({.enabled = true});
  ClientConfig ccfg = client_config(cfg);
  ccfg.telemetry = client_session.sink();
  ScreenClient client(ccfg);
  ASSERT_TRUE(client.wait_ready().ok());

  constexpr std::uint64_t kTraceId = 0x5EEDCAFEF00D0001ULL;
  ScreenRequest request = make_request("traced-1", 8, 99);
  request.trace_id = kTraceId;
  request.parent_span = 1;
  auto response = client.screen(request);
  ASSERT_TRUE(response.has_value()) << response.status().to_string();
  ASSERT_EQ(response->code, util::ErrorCode::kOk);
  EXPECT_EQ(response->scores, reference_scores(request));

  // Client-side spans carry the id...
  bool client_span_tagged = false;
  for (const auto& e : client_session.tracer()->events())
    if (std::string(e.name) == "client.screen" && e.trace_id == kTraceId)
      client_span_tagged = true;
  EXPECT_TRUE(client_span_tagged);

  // ...and so do the server's admission, queue, compute, and engine
  // stage spans, fetched over the wire like a real merged export would.
  auto dump = client.fetch_trace();
  ASSERT_TRUE(dump.has_value()) << dump.status().to_string();
  std::map<std::string, std::uint64_t> tagged;
  for (const TraceDump::Event& e : dump->events)
    if (e.trace_id == kTraceId) ++tagged[e.name];
  EXPECT_GE(tagged["admit"], 1u) << "admission span missing the trace id";
  EXPECT_GE(tagged["queue.wait"], 1u) << "queue span missing the trace id";
  for (const char* stage : {"H2G", "W2B", "SWA", "B2W", "G2H"})
    EXPECT_GE(tagged[stage], 1u)
        << "engine stage " << stage << " missing the trace id";
  // The tenant track made it into the dump's track table.
  bool tenant_track_named = false;
  for (const auto& [track, name] : dump->tracks)
    if (name == "tenant:tenant-a") tenant_track_named = true;
  EXPECT_TRUE(tenant_track_named);

  ASSERT_TRUE(server.stop().ok());
  const ServerStats& stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GE(stats.trace_scrapes, 1u);
}

TEST(TelemetryOff, ScoresBitIdenticalAndTraceDumpEmpty) {
  // Observability off must be invisible in the results: same scores as
  // the direct path, and the trace endpoint answers with a valid empty
  // dump rather than an error.
  const ServerConfig cfg = base_config("dark");
  ASSERT_EQ(cfg.telemetry, nullptr);
  ServerHarness server(cfg);
  ASSERT_TRUE(server.started()) << server.create_status().to_string();

  ScreenClient client(client_config(cfg));
  ASSERT_TRUE(client.wait_ready().ok());
  const ScreenRequest request = make_request("dark-1", 8, 123);
  auto response = client.screen(request);
  ASSERT_TRUE(response.has_value()) << response.status().to_string();
  ASSERT_EQ(response->code, util::ErrorCode::kOk);
  EXPECT_EQ(response->scores, reference_scores(request));

  auto dump = client.fetch_trace();
  ASSERT_TRUE(dump.has_value()) << dump.status().to_string();
  EXPECT_TRUE(dump->events.empty());
  EXPECT_EQ(dump->dropped, 0u);

  // Stats still answer (counters only, no session metrics).
  auto text = client.stats();
  ASSERT_TRUE(text.has_value());
  auto report = telemetry::parse_run_report(*text);
  ASSERT_TRUE(report.has_value()) << report.status().to_string();
  EXPECT_EQ(report->metrics.counters.at("service.completed"), 1u);
  EXPECT_EQ(report->metrics.counters.count("telemetry.trace.dropped"), 0u);

  ASSERT_TRUE(server.stop().ok());
}

TEST(EngineBackend, ScoresMatchHostPathBitForBit) {
  // The persistent-engine serving path is an observability/throughput
  // choice, never a numerics one: byte-identical responses for the same
  // requests, across several batch shapes through one engine.
  telemetry::Telemetry session({.enabled = true});
  ServerConfig cfg = base_config("engine");
  cfg.telemetry = session.sink();
  cfg.use_engine = true;
  ServerHarness server(cfg);
  ASSERT_TRUE(server.started()) << server.create_status().to_string();

  ScreenClient client(client_config(cfg));
  ASSERT_TRUE(client.wait_ready().ok());
  // Different (m, n) shapes force the engine to reshape between batches.
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {8, 24}, {12, 16}, {8, 24}};
  for (std::size_t k = 0; k < shapes.size(); ++k) {
    const ScreenRequest request =
        make_request("engine-" + std::to_string(k), 8, 7 + k,
                     shapes[k].first, shapes[k].second);
    auto response = client.screen(request);
    ASSERT_TRUE(response.has_value()) << response.status().to_string();
    ASSERT_EQ(response->code, util::ErrorCode::kOk) << response->message;
    EXPECT_EQ(response->scores, reference_scores(request)) << k;
  }
  ASSERT_TRUE(server.stop().ok());
  EXPECT_EQ(server.stats().completed, 3u);
}

}  // namespace
}  // namespace swbpbc::service
