// Admission control, batch planning, and the transport fault injector:
// the pure-logic heart of the daemon. Global caps shed kOverloaded,
// tenant quotas shed kQuotaExceeded, drain rejects everything new;
// plan_batch packs uniform shapes FIFO into lane groups and sheds
// expired budgets; fault decisions are a pure function of the seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "encoding/random.hpp"
#include "service/admission.hpp"
#include "service/batch.hpp"
#include "service/fault.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace swbpbc::service {
namespace {

AdmissionConfig small_config() {
  AdmissionConfig cfg;
  cfg.max_queued_requests = 4;
  cfg.max_queued_pairs = 100;
  cfg.tenant_quota_pairs = 60;
  cfg.retry_hint_base_ms = 10.0;
  return cfg;
}

TEST(Admission, AdmitsUntilGlobalRequestCap) {
  AdmissionController ctl(small_config());
  for (int k = 0; k < 4; ++k)
    ASSERT_TRUE(ctl.admit("t" + std::to_string(k), 10).status.ok());
  const auto decision = ctl.admit("t9", 10);
  EXPECT_EQ(decision.status.code(), util::ErrorCode::kOverloaded);
  EXPECT_GT(decision.retry_after_ms, 0.0);
  EXPECT_EQ(ctl.queued_requests(), 4u);
  EXPECT_EQ(ctl.queued_pairs(), 40u);
}

TEST(Admission, AdmitsUntilGlobalPairCap) {
  AdmissionController ctl(small_config());
  ASSERT_TRUE(ctl.admit("a", 60).status.ok());
  ASSERT_TRUE(ctl.admit("b", 40).status.ok());  // exactly at the cap
  const auto decision = ctl.admit("c", 1);
  EXPECT_EQ(decision.status.code(), util::ErrorCode::kOverloaded);
}

TEST(Admission, TenantQuotaShedsBeforeStarvingOthers) {
  AdmissionController ctl(small_config());
  ASSERT_TRUE(ctl.admit("greedy", 60).status.ok());  // at quota
  const auto decision = ctl.admit("greedy", 1);
  EXPECT_EQ(decision.status.code(), util::ErrorCode::kQuotaExceeded);
  EXPECT_GT(decision.retry_after_ms, 0.0);
  // The other tenant still gets in: the queue has room the greedy tenant
  // may not take.
  EXPECT_TRUE(ctl.admit("patient", 40).status.ok());
}

TEST(Admission, ReleaseReopensQuotaAndCaps) {
  AdmissionController ctl(small_config());
  ASSERT_TRUE(ctl.admit("a", 60).status.ok());
  ASSERT_EQ(ctl.admit("a", 10).status.code(),
            util::ErrorCode::kQuotaExceeded);
  ctl.release("a", 60);
  EXPECT_EQ(ctl.queued_requests(), 0u);
  EXPECT_EQ(ctl.queued_pairs(), 0u);
  EXPECT_TRUE(ctl.admit("a", 60).status.ok());
}

TEST(Admission, DrainingRejectsEverythingNew) {
  AdmissionController ctl(small_config());
  ASSERT_TRUE(ctl.admit("a", 1).status.ok());
  ctl.set_draining();
  const auto decision = ctl.admit("b", 1);
  EXPECT_EQ(decision.status.code(), util::ErrorCode::kOverloaded);
  EXPECT_NE(decision.status.to_string().find("drain"), std::string::npos);
}

TEST(Admission, HintGrowsWithOccupancy) {
  AdmissionController ctl(small_config());
  ctl.set_draining();
  const double empty_hint = ctl.admit("a", 1).retry_after_ms;
  AdmissionController full(small_config());
  for (int k = 0; k < 4; ++k)
    ASSERT_TRUE(full.admit("t" + std::to_string(k), 25).status.ok());
  const double full_hint = full.admit("z", 1).retry_after_ms;
  EXPECT_GT(full_hint, empty_hint);
}

TEST(Admission, TenantStatsAccount) {
  AdmissionController ctl(small_config());
  ASSERT_TRUE(ctl.admit("a", 30).status.ok());
  ASSERT_TRUE(ctl.admit("a", 30).status.ok());
  ctl.admit("a", 30);  // quota reject
  ctl.release("a", 30);
  const auto& stats = ctl.tenants().at("a");
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected_quota, 1u);
  EXPECT_EQ(stats.pairs_admitted, 60u);
  EXPECT_EQ(stats.queued_pairs, 30u);
}

PendingRequest pending(const std::string& id, std::size_t pairs,
                       std::size_t m, std::size_t n, double enqueued_ms,
                       double budget_ms = 0.0) {
  util::Xoshiro256 rng(7);
  PendingRequest p;
  p.request.id = id;
  p.request.tenant = "t";
  p.request.deadline_budget_ms = budget_ms;
  p.request.xs = encoding::random_sequences(rng, pairs, m);
  p.request.ys = encoding::random_sequences(rng, pairs, n);
  p.enqueued_ms = enqueued_ms;
  return p;
}

TEST(BatchPlan, WaitsForAFullLaneGroupUnlessFlushed) {
  std::deque<PendingRequest> queue;
  queue.push_back(pending("a", 3, 8, 16, 0.0));
  // Partial and not flushing: hold for more work.
  auto plan = plan_batch(queue, 1.0, 8, /*flush=*/false);
  EXPECT_TRUE(plan.take.empty());
  EXPECT_TRUE(plan.shed.empty());
  // Same queue under flush (linger expired / draining): cut the partial.
  plan = plan_batch(queue, 1.0, 8, /*flush=*/true);
  ASSERT_EQ(plan.take.size(), 1u);
  EXPECT_EQ(plan.pairs, 3u);
}

TEST(BatchPlan, PacksFifoUntilLaneGroupFull) {
  std::deque<PendingRequest> queue;
  queue.push_back(pending("a", 3, 8, 16, 0.0));
  queue.push_back(pending("b", 3, 8, 16, 0.1));
  queue.push_back(pending("c", 3, 8, 16, 0.2));
  const auto plan = plan_batch(queue, 1.0, 8, /*flush=*/false);
  // 3 + 3 + 3 = 9 >= 8: the group fills, all three ride along.
  ASSERT_EQ(plan.take.size(), 3u);
  EXPECT_EQ(plan.take, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(plan.pairs, 9u);
}

TEST(BatchPlan, AnchorsShapeOnOldestSurvivor) {
  std::deque<PendingRequest> queue;
  queue.push_back(pending("a", 4, 8, 16, 0.0));
  queue.push_back(pending("odd", 4, 12, 20, 0.1));  // different (m, n)
  queue.push_back(pending("b", 4, 8, 16, 0.2));
  const auto plan = plan_batch(queue, 1.0, 8, /*flush=*/false);
  // The mismatched shape waits for its own batch; a and b pack together.
  ASSERT_EQ(plan.take.size(), 2u);
  EXPECT_EQ(plan.take, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(plan.pairs, 8u);
}

TEST(BatchPlan, ShedsExpiredBudgetsEvenWithoutFlush) {
  std::deque<PendingRequest> queue;
  queue.push_back(pending("expired", 4, 8, 16, 0.0, /*budget=*/5.0));
  queue.push_back(pending("alive", 8, 8, 16, 8.0, /*budget=*/50.0));
  queue.push_back(pending("unlimited", 4, 8, 16, 0.0, /*budget=*/0.0));
  const auto plan = plan_batch(queue, 10.0, 8, /*flush=*/false);
  ASSERT_EQ(plan.shed.size(), 1u);
  EXPECT_EQ(plan.shed[0], 0u);
  // The oldest survivor alone fills the group of 8; packing stops there
  // and the third request waits for the next cut.
  ASSERT_EQ(plan.take.size(), 1u);
  EXPECT_EQ(plan.take[0], 1u);
  EXPECT_EQ(plan.pairs, 8u);
}

TEST(FaultInjector, DecisionsAreSeedDeterministic) {
  FaultConfig cfg;
  cfg.seed = 1234;
  cfg.tear_probability = 0.3;
  cfg.flip_probability = 0.3;
  cfg.disconnect_probability = 0.2;
  cfg.stall_probability = 0.2;
  FaultInjector a(cfg), b(cfg);
  const std::uint64_t campaign_a = a.begin_run();
  const std::uint64_t campaign_b = b.begin_run();
  ASSERT_EQ(campaign_a, campaign_b);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto fa = a.frame_fault(campaign_a, i, 96);
    const auto fb = b.frame_fault(campaign_b, i, 96);
    EXPECT_EQ(fa.disconnect, fb.disconnect);
    EXPECT_EQ(fa.tear, fb.tear);
    EXPECT_EQ(fa.keep_bytes, fb.keep_bytes);
    EXPECT_EQ(fa.flip, fb.flip);
    EXPECT_EQ(fa.flip_offset, fb.flip_offset);
    EXPECT_EQ(fa.flip_bit, fb.flip_bit);
    EXPECT_EQ(fa.stall, fb.stall);
  }
  EXPECT_EQ(a.log().total(), b.log().total());
  EXPECT_GT(a.log().total(), 0u);
}

TEST(FaultInjector, AtMostOneDestructiveFaultPerFrame) {
  FaultConfig cfg;
  cfg.seed = 9;
  cfg.tear_probability = 1.0;
  cfg.flip_probability = 1.0;
  cfg.disconnect_probability = 1.0;
  FaultInjector injector(cfg);
  const auto campaign = injector.begin_run();
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto fault = injector.frame_fault(campaign, i, 64);
    const int destructive = (fault.disconnect ? 1 : 0) +
                            (fault.tear ? 1 : 0) + (fault.flip ? 1 : 0);
    EXPECT_EQ(destructive, 1);  // disconnect wins at p=1
    EXPECT_TRUE(fault.disconnect);
  }
}

TEST(FaultInjector, RestartDrawsAFreshCampaign) {
  FaultConfig cfg;
  cfg.seed = 77;
  cfg.flip_probability = 0.5;
  FaultInjector injector(cfg);
  const auto first = injector.begin_run();
  std::vector<bool> flips_first;
  for (std::uint64_t i = 0; i < 64; ++i)
    flips_first.push_back(injector.frame_fault(first, i, 64).flip);
  const auto second = injector.begin_run();
  EXPECT_NE(first, second);
  std::vector<bool> flips_second;
  for (std::uint64_t i = 0; i < 64; ++i)
    flips_second.push_back(injector.frame_fault(second, i, 64).flip);
  EXPECT_NE(flips_first, flips_second);
}

TEST(FaultInjector, ZeroProbabilitiesInjectNothing) {
  FaultInjector injector(FaultConfig{});
  const auto campaign = injector.begin_run();
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto fault = injector.frame_fault(campaign, i, 128);
    EXPECT_FALSE(fault.disconnect || fault.tear || fault.flip ||
                 fault.stall);
  }
  EXPECT_EQ(injector.log().total(), 0u);
}

}  // namespace
}  // namespace swbpbc::service
