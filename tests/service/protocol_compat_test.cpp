// Frame-protocol compatibility: the optional request trailer must keep
// old and new peers interoperable in both directions, and the trace-dump
// codec must round-trip and reject garbage. "Old" payloads are the exact
// byte layout the pre-trailer encoder produced: the mandatory fields and
// nothing after them.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "encoding/random.hpp"
#include "service/frame.hpp"
#include "service/protocol.hpp"
#include "util/rng.hpp"

namespace swbpbc::service {
namespace {

ScreenRequest sample_request(std::uint64_t trace_id = 0,
                             std::uint64_t parent_span = 0) {
  util::Xoshiro256 rng(11);
  ScreenRequest req;
  req.id = "compat-1";
  req.tenant = "tenant-a";
  req.deadline_budget_ms = 12.5;
  req.xs = encoding::random_sequences(rng, 4, 8);
  req.ys = encoding::random_sequences(rng, 4, 24);
  req.trace_id = trace_id;
  req.parent_span = parent_span;
  return req;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

TEST(ProtocolCompat, UntracedRequestHasNoTrailer) {
  // A new client with no trace context must produce bytes an old server
  // decodes: i.e. byte-identical to the traced encoding minus the
  // 32-byte trailer, and decodable either way.
  const auto untraced = encode_request(sample_request());
  const auto traced = encode_request(sample_request(0xABCDu, 0x1234u));
  ASSERT_EQ(traced.size(), untraced.size() + 32);
  EXPECT_TRUE(std::equal(untraced.begin(), untraced.end(), traced.begin()));
}

TEST(ProtocolCompat, OldPayloadDecodesOnNewServer) {
  // An old client's payload is exactly the trailer-free encoding.
  const auto old_payload = encode_request(sample_request());
  auto decoded = decode_request(old_payload);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->id, "compat-1");
  EXPECT_EQ(decoded->trace_id, 0u);
  EXPECT_EQ(decoded->parent_span, 0u);
}

TEST(ProtocolCompat, TraceContextRoundTrips) {
  const auto payload = encode_request(sample_request(0xFEEDFACEu, 0x77u));
  auto decoded = decode_request(payload);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->trace_id, 0xFEEDFACEu);
  EXPECT_EQ(decoded->parent_span, 0x77u);
  EXPECT_EQ(decoded->id, "compat-1");
  EXPECT_EQ(decoded->pair_count(), 4u);
}

TEST(ProtocolCompat, UnknownTrailerTagIsSkipped) {
  // A future client may append tags this server has never heard of; they
  // must be skipped, not rejected — never kParseError.
  auto payload = encode_request(sample_request(0x1u, 0x2u));
  put_u64(payload, 999);  // unknown tag
  put_u64(payload, 5);    // 5 payload bytes
  for (int i = 0; i < 5; ++i) payload.push_back(0xEE);
  auto decoded = decode_request(payload);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->trace_id, 0x1u);  // known tag before it still lands
}

TEST(ProtocolCompat, KnownTagWithWrongLengthIsSkipped) {
  // A longer-than-expected trace-context entry (a future revision) is
  // skipped wholesale rather than misparsed.
  auto payload = encode_request(sample_request());
  put_u64(payload, kRequestFieldTraceContext);
  put_u64(payload, 24);  // not the 16 this decoder understands
  for (int i = 0; i < 24; ++i) payload.push_back(0x55);
  auto decoded = decode_request(payload);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->trace_id, 0u);
}

TEST(ProtocolCompat, UnpinnedSchemeFingerprintAddsNoBytes) {
  // A client that does not pin a scoring scheme (fingerprint 0) must
  // stay byte-identical to the pre-scheme encoder, and a pinned request
  // is exactly one 24-byte trailer entry longer.
  ScreenRequest unpinned = sample_request();
  ScreenRequest pinned = sample_request();
  pinned.scheme_fingerprint = 0xDEADBEEFCAFEBABEull;
  const auto a = encode_request(unpinned);
  const auto b = encode_request(pinned);
  ASSERT_EQ(b.size(), a.size() + 24);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(ProtocolCompat, SchemeFingerprintRoundTrips) {
  ScreenRequest req = sample_request(0x10u, 0x20u);
  req.scheme_fingerprint = 0x123456789ABCDEF0ull;
  auto decoded = decode_request(encode_request(req));
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->scheme_fingerprint, 0x123456789ABCDEF0ull);
  EXPECT_EQ(decoded->trace_id, 0x10u);  // coexists with the trace entry
}

TEST(ProtocolCompat, SchemeFingerprintWithWrongLengthIsSkipped) {
  auto payload = encode_request(sample_request());
  put_u64(payload, kRequestFieldSchemeFingerprint);
  put_u64(payload, 16);  // a future revision; this decoder expects 8
  for (int i = 0; i < 16; ++i) payload.push_back(0x42);
  auto decoded = decode_request(payload);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->scheme_fingerprint, 0u);
}

TEST(ProtocolCompat, UnhintedBackendAddsNoBytes) {
  // No backend hint (0) stays byte-identical to the pre-hint encoder; a
  // hinted request is exactly one 24-byte trailer entry longer.
  ScreenRequest unhinted = sample_request();
  ScreenRequest hinted = sample_request();
  hinted.backend_hint = 3;  // striped
  const auto a = encode_request(unhinted);
  const auto b = encode_request(hinted);
  ASSERT_EQ(b.size(), a.size() + 24);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(ProtocolCompat, BackendHintRoundTripsEveryEngine) {
  for (std::uint8_t hint = 1; hint <= 4; ++hint) {
    ScreenRequest req = sample_request(0x10u, 0x20u);
    req.scheme_fingerprint = 0x1ull;
    req.backend_hint = hint;
    auto decoded = decode_request(encode_request(req));
    ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
    EXPECT_EQ(decoded->backend_hint, hint);
    EXPECT_EQ(decoded->trace_id, 0x10u);  // coexists with the other tags
    EXPECT_EQ(decoded->scheme_fingerprint, 0x1ull);
  }
}

TEST(ProtocolCompat, OutOfRangeBackendHintIsInvalidInput) {
  // Unlike an unknown tag (skippable), a known tag with a nonsense value
  // is a client bug: typed rejection, never a silent engine default.
  for (const std::uint64_t bad : {std::uint64_t{0}, std::uint64_t{5},
                                  std::uint64_t{0xFF}}) {
    auto payload = encode_request(sample_request());
    put_u64(payload, kRequestFieldBackendChoice);
    put_u64(payload, 8);
    put_u64(payload, bad);
    auto decoded = decode_request(payload);
    ASSERT_FALSE(decoded.has_value()) << bad;
    EXPECT_EQ(decoded.status().code(), util::ErrorCode::kInvalidInput) << bad;
  }
}

TEST(ProtocolCompat, BackendHintWithWrongLengthIsSkipped) {
  auto payload = encode_request(sample_request());
  put_u64(payload, kRequestFieldBackendChoice);
  put_u64(payload, 16);  // a future revision; this decoder expects 8
  for (int i = 0; i < 16; ++i) payload.push_back(0x03);
  auto decoded = decode_request(payload);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->backend_hint, 0u);
}

TEST(ProtocolCompat, TruncatedTrailerIsParseError) {
  auto payload = encode_request(sample_request(0x1u, 0x2u));
  payload.pop_back();  // tear the last trailer byte off
  auto decoded = decode_request(payload);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), util::ErrorCode::kParseError);
}

TEST(ProtocolCompat, TrailerLengthOverrunIsParseError) {
  auto payload = encode_request(sample_request());
  put_u64(payload, 999);
  put_u64(payload, 1 << 20);  // claims far more bytes than exist
  auto decoded = decode_request(payload);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), util::ErrorCode::kParseError);
}

TEST(ProtocolCompat, NewFrameTypesAreKnown) {
  // The framing layer must pass scrape frames through rather than
  // treating them as stream desync.
  for (const FrameType t :
       {FrameType::kStatRequest, FrameType::kStatResponse,
        FrameType::kTraceRequest, FrameType::kTraceResponse}) {
    const auto bytes = encode_frame(t, {});
    FrameDecoder decoder;
    decoder.feed(bytes);
    auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    ASSERT_TRUE(frame->has_value());
    EXPECT_EQ((*frame)->type, t);
  }
}

// ------------------------------------------------------------ TraceDump

TraceDump sample_dump() {
  TraceDump dump;
  dump.dropped = 3;
  dump.tracks = {{0, "screen"}, {32, "tenant:tenant-a"}};
  TraceDump::Event e1;
  e1.name = "admit";
  e1.cat = "service";
  e1.ts_us = 100;
  e1.dur_us = 5;
  e1.track = 32;
  e1.trace_id = 0xFACEu;
  e1.args = {{"pairs", 16}};
  TraceDump::Event e2;
  e2.name = "H2G";
  e2.cat = "device";
  e2.ts_us = 110;
  e2.dur_us = 42;
  e2.track = 8;
  dump.events = {e1, e2};
  return dump;
}

TEST(TraceDumpCodec, RoundTrips) {
  const TraceDump dump = sample_dump();
  auto decoded = decode_trace_dump(encode_trace_dump(dump));
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(decoded->dropped, 3u);
  ASSERT_EQ(decoded->tracks.size(), 2u);
  EXPECT_EQ(decoded->tracks[1].first, 32u);
  EXPECT_EQ(decoded->tracks[1].second, "tenant:tenant-a");
  ASSERT_EQ(decoded->events.size(), 2u);
  EXPECT_EQ(decoded->events[0].name, "admit");
  EXPECT_EQ(decoded->events[0].trace_id, 0xFACEu);
  ASSERT_EQ(decoded->events[0].args.size(), 1u);
  EXPECT_EQ(decoded->events[0].args[0].first, "pairs");
  EXPECT_EQ(decoded->events[0].args[0].second, 16);
  EXPECT_EQ(decoded->events[1].name, "H2G");
  EXPECT_EQ(decoded->events[1].trace_id, 0u);
}

TEST(TraceDumpCodec, EmptyDumpRoundTrips) {
  auto decoded = decode_trace_dump(encode_trace_dump(TraceDump{}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->events.empty());
  EXPECT_TRUE(decoded->tracks.empty());
  EXPECT_EQ(decoded->dropped, 0u);
}

TEST(TraceDumpCodec, RejectsTrailingGarbage) {
  auto payload = encode_trace_dump(sample_dump());
  payload.push_back(0x00);
  EXPECT_FALSE(decode_trace_dump(payload).has_value());
}

TEST(TraceDumpCodec, RejectsTruncation) {
  const auto payload = encode_trace_dump(sample_dump());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{7},
                                 payload.size() / 2, payload.size() - 1}) {
    const std::span<const std::uint8_t> torn(payload.data(), keep);
    EXPECT_FALSE(decode_trace_dump(torn).has_value()) << keep;
  }
}

TEST(TraceDumpCodec, RejectsAbsurdEventCount) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, 0);                      // dropped
  put_u64(payload, 0);                      // tracks
  put_u64(payload, kMaxTraceDumpEvents + 1);  // events: over the limit
  EXPECT_FALSE(decode_trace_dump(payload).has_value());
}

}  // namespace
}  // namespace swbpbc::service
