// Checkpoint stream robustness: round-trips, and the ISSUE's negative
// cases — truncated file, flipped byte, wrong version, wrong fingerprint —
// each rejected with a precise typed error instead of resuming garbage.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/checkpoint.hpp"
#include "util/status.hpp"

namespace swbpbc::util {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "swbpbc_ckpt_" + name;
}

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<char>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

void write_stream(const std::string& path, std::uint64_t fingerprint) {
  auto writer = CheckpointWriter::try_create(path, fingerprint);
  ASSERT_TRUE(writer.has_value()) << writer.status().to_string();
  ASSERT_TRUE(writer->append(0, bytes({1, 2, 3, 4})).ok());
  ASSERT_TRUE(writer->append(2, bytes({9, 8, 7, 6, 5})).ok());
}

TEST(Checkpoint, RoundTripsRecords) {
  const std::string path = temp_path("roundtrip.bin");
  write_stream(path, 0xABCDu);

  const auto loaded = read_checkpoint(path, 0xABCDu);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_string();
  EXPECT_EQ(loaded->fingerprint, 0xABCDu);
  ASSERT_EQ(loaded->records.size(), 2u);
  ASSERT_NE(loaded->find(0), nullptr);
  EXPECT_EQ(loaded->find(0)->payload, bytes({1, 2, 3, 4}));
  ASSERT_NE(loaded->find(2), nullptr);
  EXPECT_EQ(loaded->find(2)->payload, bytes({9, 8, 7, 6, 5}));
  EXPECT_EQ(loaded->find(1), nullptr);
  std::remove(path.c_str());
}

TEST(Checkpoint, RewrittenChunkLastRecordWins) {
  const std::string path = temp_path("rewrite.bin");
  auto writer = CheckpointWriter::try_create(path, 7);
  ASSERT_TRUE(writer.has_value());
  ASSERT_TRUE(writer->append(4, bytes({1})).ok());
  ASSERT_TRUE(writer->append(4, bytes({2})).ok());
  const auto loaded = read_checkpoint(path, 7);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_NE(loaded->find(4), nullptr);
  EXPECT_EQ(loaded->find(4)->payload, bytes({2}));
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsCorrupt) {
  const auto loaded = read_checkpoint(temp_path("nonexistent.bin"), 1);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCheckpointCorrupt);
}

TEST(Checkpoint, TruncatedFileIsCorrupt) {
  const std::string path = temp_path("truncated.bin");
  write_stream(path, 42);
  std::vector<char> data = slurp(path);
  ASSERT_GT(data.size(), 5u);
  data.resize(data.size() - 5);  // cut into the final record
  dump(path, data);

  const auto loaded = read_checkpoint(path, 42);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCheckpointCorrupt);
  std::remove(path.c_str());
}

TEST(Checkpoint, FlippedPayloadByteIsCorrupt) {
  const std::string path = temp_path("flipped.bin");
  write_stream(path, 42);
  std::vector<char> data = slurp(path);
  // Flip one byte in the middle of the first record's payload (header is
  // 24 bytes, record head 24 bytes).
  data[24 + 24 + 1] = static_cast<char>(data[24 + 24 + 1] ^ 0x40);
  dump(path, data);

  const auto loaded = read_checkpoint(path, 42);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCheckpointCorrupt);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Checkpoint, WrongVersionIsMismatch) {
  const std::string path = temp_path("version.bin");
  write_stream(path, 42);
  std::vector<char> data = slurp(path);
  data[8] = static_cast<char>(kCheckpointVersion + 1);  // version u32 @ 8
  dump(path, data);

  const auto loaded = read_checkpoint(path, 42);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCheckpointMismatch);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Checkpoint, WrongFingerprintIsMismatch) {
  const std::string path = temp_path("fingerprint.bin");
  write_stream(path, 42);
  const auto loaded = read_checkpoint(path, 43);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCheckpointMismatch);
  std::remove(path.c_str());
}

TEST(Checkpoint, GarbageMagicIsCorrupt) {
  const std::string path = temp_path("magic.bin");
  write_stream(path, 42);
  std::vector<char> data = slurp(path);
  data[0] = static_cast<char>(data[0] ^ 0xFF);
  dump(path, data);

  const auto loaded = read_checkpoint(path, 42);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCheckpointCorrupt);
  std::remove(path.c_str());
}

TEST(Checkpoint, UnwritablePathIsTypedError) {
  const auto writer =
      CheckpointWriter::try_create("/nonexistent-dir/x/ckpt.bin", 1);
  ASSERT_FALSE(writer.has_value());
  EXPECT_FALSE(writer.status().ok());
}

TEST(Checkpoint, EmptyStreamLoadsWithNoRecords) {
  const std::string path = temp_path("empty.bin");
  { auto writer = CheckpointWriter::try_create(path, 9); ASSERT_TRUE(writer.has_value()); }
  const auto loaded = read_checkpoint(path, 9);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->records.empty());
  std::remove(path.c_str());
}

// --- torn-tail salvage ---------------------------------------------------

TEST(CheckpointSalvage, TornTailYieldsCleanPrefix) {
  const std::string path = temp_path("salvage_tail.bin");
  write_stream(path, 42);
  std::vector<char> data = slurp(path);
  data.resize(data.size() - 5);  // writer died mid-append of record 2
  dump(path, data);

  // Strict load rejects; salvage recovers the complete first record and
  // drops the torn tail.
  EXPECT_EQ(read_checkpoint(path, 42).status().code(),
            ErrorCode::kCheckpointCorrupt);
  const auto salvaged = read_checkpoint_salvage(path, 42);
  ASSERT_TRUE(salvaged.has_value()) << salvaged.status().to_string();
  ASSERT_EQ(salvaged->records.size(), 1u);
  ASSERT_NE(salvaged->find(0), nullptr);
  EXPECT_EQ(salvaged->find(0)->payload, bytes({1, 2, 3, 4}));
  EXPECT_EQ(salvaged->find(2), nullptr);
  std::remove(path.c_str());
}

TEST(CheckpointSalvage, TornRecordHeadAlsoSalvages) {
  const std::string path = temp_path("salvage_head.bin");
  write_stream(path, 42);
  std::vector<char> data = slurp(path);
  // Keep the header, record 0 (24B head + 4B payload + 8B crc), and only
  // 7 bytes of record 1's head.
  data.resize(24 + (24 + 4 + 8) + 7);
  dump(path, data);

  const auto salvaged = read_checkpoint_salvage(path, 42);
  ASSERT_TRUE(salvaged.has_value()) << salvaged.status().to_string();
  ASSERT_EQ(salvaged->records.size(), 1u);
  EXPECT_EQ(salvaged->find(0)->payload, bytes({1, 2, 3, 4}));
  std::remove(path.c_str());
}

TEST(CheckpointSalvage, IntactStreamSalvagesIdentically) {
  const std::string path = temp_path("salvage_intact.bin");
  write_stream(path, 42);
  const auto strict = read_checkpoint(path, 42);
  const auto salvaged = read_checkpoint_salvage(path, 42);
  ASSERT_TRUE(strict.has_value());
  ASSERT_TRUE(salvaged.has_value());
  ASSERT_EQ(salvaged->records.size(), strict->records.size());
  for (std::size_t i = 0; i < strict->records.size(); ++i) {
    EXPECT_EQ(salvaged->records[i].chunk_index,
              strict->records[i].chunk_index);
    EXPECT_EQ(salvaged->records[i].payload, strict->records[i].payload);
  }
  std::remove(path.c_str());
}

TEST(CheckpointSalvage, BitRotInCompleteRecordStillRejects) {
  const std::string path = temp_path("salvage_rot.bin");
  write_stream(path, 42);
  std::vector<char> data = slurp(path);
  // Flip a payload byte of record 0 — the record is fully present, so this
  // is rot, not a torn write, and salvage must NOT paper over it.
  data[24 + 24 + 1] = static_cast<char>(data[24 + 24 + 1] ^ 0x40);
  dump(path, data);
  const auto salvaged = read_checkpoint_salvage(path, 42);
  ASSERT_FALSE(salvaged.has_value());
  EXPECT_EQ(salvaged.status().code(), ErrorCode::kCheckpointCorrupt);
  std::remove(path.c_str());
}

TEST(CheckpointSalvage, HeaderDefectsStillReject) {
  const std::string path = temp_path("salvage_hdr.bin");
  write_stream(path, 42);
  EXPECT_EQ(read_checkpoint_salvage(path, 43).status().code(),
            ErrorCode::kCheckpointMismatch);  // wrong batch
  std::vector<char> data = slurp(path);
  data[0] = static_cast<char>(data[0] ^ 0xFF);
  dump(path, data);
  EXPECT_EQ(read_checkpoint_salvage(path, 42).status().code(),
            ErrorCode::kCheckpointCorrupt);  // bad magic
  std::remove(path.c_str());
}

TEST(CheckpointSalvage, TruncatedInsideFileHeaderRejects) {
  const std::string path = temp_path("salvage_shorthdr.bin");
  write_stream(path, 42);
  std::vector<char> data = slurp(path);
  data.resize(10);  // not even a full stream header: nothing to salvage
  dump(path, data);
  EXPECT_EQ(read_checkpoint_salvage(path, 42).status().code(),
            ErrorCode::kCheckpointCorrupt);
  std::remove(path.c_str());
}

// --- append-reopen (the request-journal restart path) --------------------

TEST(CheckpointAppend, CreatesAFreshStreamWhenMissing) {
  const std::string path = temp_path("append_fresh.bin");
  std::remove(path.c_str());
  CheckpointData replayed;
  auto writer = CheckpointWriter::try_append(path, 7, &replayed);
  ASSERT_TRUE(writer.has_value()) << writer.status().to_string();
  EXPECT_TRUE(replayed.records.empty());
  ASSERT_TRUE(writer->append(0, bytes({5})).ok());
  const auto loaded = read_checkpoint(path, 7);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->records.size(), 1u);
  std::remove(path.c_str());
}

TEST(CheckpointAppend, ReplaysAndExtendsAnExistingStream) {
  const std::string path = temp_path("append_extend.bin");
  write_stream(path, 42);  // records 0 and 2
  CheckpointData replayed;
  auto writer = CheckpointWriter::try_append(path, 42, &replayed);
  ASSERT_TRUE(writer.has_value()) << writer.status().to_string();
  ASSERT_EQ(replayed.records.size(), 2u);
  EXPECT_EQ(replayed.find(0)->payload, bytes({1, 2, 3, 4}));
  ASSERT_TRUE(writer->append(3, bytes({6, 6})).ok());

  const auto loaded = read_checkpoint(path, 42);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_string();
  ASSERT_EQ(loaded->records.size(), 3u);
  EXPECT_EQ(loaded->find(3)->payload, bytes({6, 6}));
  std::remove(path.c_str());
}

TEST(CheckpointAppend, TruncatesTheTornTailBeforeAppending) {
  const std::string path = temp_path("append_torn.bin");
  write_stream(path, 42);
  std::vector<char> data = slurp(path);
  data.resize(data.size() - 5);  // crash mid-append of record 2
  dump(path, data);

  CheckpointData replayed;
  auto writer = CheckpointWriter::try_append(path, 42, &replayed);
  ASSERT_TRUE(writer.has_value()) << writer.status().to_string();
  ASSERT_EQ(replayed.records.size(), 1u);  // the clean prefix
  ASSERT_TRUE(writer->append(9, bytes({9})).ok());

  // The new record must land where the torn bytes were, leaving a stream
  // the STRICT reader accepts — physical truncation, not papering over.
  const auto loaded = read_checkpoint(path, 42);
  ASSERT_TRUE(loaded.has_value()) << loaded.status().to_string();
  ASSERT_EQ(loaded->records.size(), 2u);
  EXPECT_EQ(loaded->records[0].chunk_index, 0u);
  EXPECT_EQ(loaded->records[1].chunk_index, 9u);
  std::remove(path.c_str());
}

TEST(CheckpointAppend, RejectsForeignFingerprintAndRot) {
  const std::string path = temp_path("append_reject.bin");
  write_stream(path, 42);
  EXPECT_EQ(CheckpointWriter::try_append(path, 43, nullptr).status().code(),
            ErrorCode::kCheckpointMismatch);
  std::vector<char> data = slurp(path);
  data[24 + 24 + 1] = static_cast<char>(data[24 + 24 + 1] ^ 0x01);
  dump(path, data);
  EXPECT_EQ(CheckpointWriter::try_append(path, 42, nullptr).status().code(),
            ErrorCode::kCheckpointCorrupt);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swbpbc::util
