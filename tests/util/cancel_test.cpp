// Cooperative cancellation and deadlines: StopCondition semantics, the
// stop-aware thread pool (error collapse: real failures beat concurrent
// stop unwinds, several stop unwinds collapse to one), and stop
// propagation through bulk::for_each_instance and device::launch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "bulk/executor.hpp"
#include "device/launch.hpp"
#include "device/memory.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace swbpbc::util {
namespace {

TEST(StopCondition, UnarmedNeverTriggers) {
  const StopCondition stop;
  EXPECT_FALSE(stop.armed());
  EXPECT_FALSE(stop.triggered());
  EXPECT_EQ(stop.poll(), ErrorCode::kOk);
}

TEST(StopCondition, CancelledTokenTriggersKCancelled) {
  CancellationToken token;
  const StopCondition stop(&token, Deadline::never());
  EXPECT_TRUE(stop.armed());
  EXPECT_FALSE(stop.triggered());
  token.cancel();
  EXPECT_TRUE(stop.triggered());
  EXPECT_EQ(stop.poll(), ErrorCode::kCancelled);
  const Status s = stop.status("unit test");
  EXPECT_EQ(s.code(), ErrorCode::kCancelled);
  EXPECT_NE(s.message().find("unit test"), std::string::npos);
}

TEST(StopCondition, ExpiredDeadlineTriggersKDeadlineExceeded) {
  const StopCondition stop(nullptr, Deadline::after_ms(0.0));
  EXPECT_TRUE(stop.armed());
  EXPECT_TRUE(stop.triggered());
  EXPECT_EQ(stop.poll(), ErrorCode::kDeadlineExceeded);
}

TEST(StopCondition, CancellationWinsOverDeadline) {
  CancellationToken token;
  token.cancel();
  const StopCondition stop(&token, Deadline::after_ms(0.0));
  EXPECT_EQ(stop.poll(), ErrorCode::kCancelled);
}

TEST(Deadline, NeverIsUnlimited) {
  const Deadline d = Deadline::never();
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.remaining_ms() > 1e30);
}

TEST(Deadline, FutureDeadlineReportsRemaining) {
  const Deadline d = Deadline::after_ms(60'000.0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
}

// --- parallel_for --------------------------------------------------------

TEST(ParallelForStop, PreCancelledLoopThrowsBeforeAnyIteration) {
  CancellationToken token;
  token.cancel();
  const StopCondition stop(&token, Deadline::never());
  std::atomic<std::size_t> ran{0};
  try {
    ThreadPool::global().parallel_for(
        0, 1024, [&](std::size_t) { ran.fetch_add(1); }, 1, &stop);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kCancelled);
  }
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ParallelForStop, MidRunCancelStopsEarlyWithSingleStopError) {
  CancellationToken token;
  const StopCondition stop(&token, Deadline::never());
  std::atomic<std::size_t> ran{0};
  try {
    ThreadPool::global().parallel_for(
        0, 100'000,
        [&](std::size_t) {
          if (ran.fetch_add(1) == 10) token.cancel();
        },
        1, &stop);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kCancelled);
  }
  // The point of cooperative stop: the loop did not run to completion.
  EXPECT_LT(ran.load(), 100'000u);
}

// The ISSUE's interplay case: one worker throws a real error while another
// observes the cancellation. The real failure must win (not be wrapped in
// an AggregateError with the stop unwinds, not be masked by kCancelled).
TEST(ParallelForStop, RealErrorBeatsConcurrentCancellation) {
  for (int round = 0; round < 20; ++round) {
    CancellationToken token;
    const StopCondition stop(&token, Deadline::never());
    std::atomic<std::size_t> ran{0};
    bool caught_real = false;
    try {
      ThreadPool::global().parallel_for(
          0, 50'000,
          [&](std::size_t i) {
            const std::size_t n = ran.fetch_add(1);
            if (n == 5) token.cancel();
            if (i == 0) throw std::runtime_error("real failure");
          },
          1, &stop);
    } catch (const std::runtime_error& e) {
      if (const auto* se = dynamic_cast<const StatusError*>(&e)) {
        // A stop unwind is only acceptable if the throwing iteration was
        // never claimed (the stop pre-empted it).
        EXPECT_TRUE(is_stop_code(se->status().code()));
      } else {
        EXPECT_STREQ(e.what(), "real failure");
        caught_real = true;
      }
    }
    // Iteration 0 runs almost always (claimed first); when it ran, the
    // real error must have surfaced.
    if (ran.load() > 0 && !caught_real) {
      // Allowed only when iteration 0 itself was pre-empted — rare; no
      // assertion beyond type checks above.
    }
  }
}

TEST(ParallelForStop, SerialFallbackHonorsStop) {
  // n <= grain forces the inline serial path.
  CancellationToken token;
  const StopCondition stop(&token, Deadline::never());
  std::size_t ran = 0;
  try {
    ThreadPool::global().parallel_for(
        0, 8,
        [&](std::size_t) {
          if (++ran == 3) token.cancel();
        },
        /*grain=*/1024, &stop);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kCancelled);
  }
  EXPECT_EQ(ran, 3u);
}

// --- bulk::for_each_instance --------------------------------------------

TEST(BulkStop, SerialModeStopsBetweenInstances) {
  CancellationToken token;
  const StopCondition stop(&token, Deadline::never());
  std::size_t ran = 0;
  try {
    bulk::for_each_instance(
        100, bulk::Mode::kSerial,
        [&](std::size_t) {
          if (++ran == 7) token.cancel();
        },
        &stop);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kCancelled);
  }
  EXPECT_EQ(ran, 7u);
}

// --- device::launch ------------------------------------------------------

// Minimal many-phase kernel for stop tests.
class SpinKernel {
 public:
  SpinKernel(std::size_t phases, std::atomic<std::size_t>* steps)
      : phases_(phases), steps_(steps) {}
  [[nodiscard]] unsigned block_dim() const { return 1; }
  [[nodiscard]] std::size_t num_phases() const { return phases_; }
  void step(std::size_t, unsigned) { steps_->fetch_add(1); }

 private:
  std::size_t phases_;
  std::atomic<std::size_t>* steps_;
};

TEST(LaunchStop, CancelBetweenPhasesAbortsLaunch) {
  CancellationToken token;
  const StopCondition stop(&token, Deadline::never());
  std::atomic<std::size_t> steps{0};
  device::LaunchConfig cfg;
  cfg.grid_dim = 1;
  cfg.mode = bulk::Mode::kSerial;
  cfg.stop = &stop;
  try {
    device::launch(cfg, [&](std::size_t, device::BlockRecorder&) {
      token.cancel();  // trip before the first phase boundary poll
      return SpinKernel(1000, &steps);
    });
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kCancelled);
  }
  EXPECT_EQ(steps.load(), 0u);
}

TEST(LaunchStop, DeadlineSurfacesAsDeadlineExceeded) {
  const StopCondition stop(nullptr, Deadline::after_ms(0.0));
  std::atomic<std::size_t> steps{0};
  device::LaunchConfig cfg;
  cfg.grid_dim = 2;
  cfg.mode = bulk::Mode::kSerial;
  cfg.stop = &stop;
  try {
    device::launch(cfg, [&](std::size_t, device::BlockRecorder&) {
      return SpinKernel(10, &steps);
    });
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kDeadlineExceeded);
  }
}

}  // namespace
}  // namespace swbpbc::util
