// Jittered exponential backoff: deterministic schedules per seed,
// exponential growth under the cap, downward-only jitter, server
// retry-after hints that raise (never lower) the next delay, bounded
// attempts, and config sanitization.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "util/backoff.hpp"

namespace swbpbc::util {
namespace {

TEST(Backoff, SameSeedReplaysTheExactSchedule) {
  BackoffConfig config;
  config.max_attempts = 6;
  Backoff a(config, 123), b(config, 123);
  for (int k = 0; k < 6; ++k) {
    const auto da = a.next_delay_ms();
    const auto db = b.next_delay_ms();
    ASSERT_TRUE(da.has_value());
    EXPECT_EQ(*da, *db);
  }
}

TEST(Backoff, DifferentSeedsDecorrelate) {
  BackoffConfig config;
  config.max_attempts = 0;
  Backoff a(config, 1), b(config, 2);
  bool any_differ = false;
  for (int k = 0; k < 8; ++k)
    any_differ = any_differ || *a.next_delay_ms() != *b.next_delay_ms();
  EXPECT_TRUE(any_differ);
}

TEST(Backoff, GrowsExponentiallyUpToTheCap) {
  BackoffConfig config;
  config.initial_ms = 2.0;
  config.multiplier = 2.0;
  config.max_ms = 16.0;
  config.jitter = 0.0;  // deterministic bases: 2, 4, 8, 16, 16, ...
  config.max_attempts = 0;
  Backoff backoff(config, 0);
  const std::vector<double> expected = {2, 4, 8, 16, 16, 16};
  for (double want : expected) {
    const auto delay = backoff.next_delay_ms();
    ASSERT_TRUE(delay.has_value());
    EXPECT_EQ(*delay, want);
  }
}

TEST(Backoff, JitterOnlyShrinksWithinOneBase) {
  BackoffConfig config;
  config.initial_ms = 100.0;
  config.multiplier = 1.0;
  config.max_ms = 100.0;
  config.jitter = 0.5;
  config.max_attempts = 0;
  Backoff backoff(config, 99);
  for (int k = 0; k < 32; ++k) {
    const auto delay = backoff.next_delay_ms();
    ASSERT_TRUE(delay.has_value());
    EXPECT_LE(*delay, 100.0);
    EXPECT_GE(*delay, 50.0);  // jitter 0.5: at most halved
  }
}

TEST(Backoff, ServerHintRaisesTheNextDelayOnce) {
  BackoffConfig config;
  config.initial_ms = 1.0;
  config.max_ms = 1.0;
  config.multiplier = 1.0;
  config.jitter = 0.0;
  config.max_attempts = 0;
  Backoff backoff(config, 0);
  backoff.suggest(50.0);
  backoff.suggest(25.0);  // a smaller hint never lowers a larger one
  EXPECT_EQ(*backoff.next_delay_ms(), 50.0);
  // The hint is consumed: the following delay is back on the schedule.
  EXPECT_EQ(*backoff.next_delay_ms(), 1.0);
}

TEST(Backoff, HintBelowScheduleIsIgnored) {
  BackoffConfig config;
  config.initial_ms = 40.0;
  config.jitter = 0.0;
  config.max_attempts = 0;
  Backoff backoff(config, 0);
  backoff.suggest(5.0);  // schedule already asks for more patience
  EXPECT_EQ(*backoff.next_delay_ms(), 40.0);
}

TEST(Backoff, ExhaustsAfterMaxAttempts) {
  BackoffConfig config;
  config.max_attempts = 3;
  Backoff backoff(config, 7);
  EXPECT_FALSE(backoff.exhausted());
  for (int k = 0; k < 3; ++k)
    EXPECT_TRUE(backoff.next_delay_ms().has_value());
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_FALSE(backoff.next_delay_ms().has_value());
  EXPECT_EQ(backoff.attempts(), 3u);
}

TEST(Backoff, ResetRestartsTheScheduleNotTheStream) {
  BackoffConfig config;
  config.initial_ms = 2.0;
  config.multiplier = 4.0;
  config.jitter = 0.0;
  config.max_attempts = 2;
  Backoff backoff(config, 5);
  EXPECT_EQ(*backoff.next_delay_ms(), 2.0);
  EXPECT_EQ(*backoff.next_delay_ms(), 8.0);
  EXPECT_TRUE(backoff.exhausted());
  backoff.reset();
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_EQ(backoff.attempts(), 0u);
  EXPECT_EQ(*backoff.next_delay_ms(), 2.0);  // schedule restarted
}

TEST(Backoff, SanitizesHostileConfig) {
  BackoffConfig config;
  config.initial_ms = -5.0;   // -> 0
  config.max_ms = -10.0;      // -> >= initial
  config.multiplier = 0.1;    // -> 1
  config.jitter = 7.0;        // -> 1
  config.max_attempts = 0;
  Backoff backoff(config, 3);
  for (int k = 0; k < 8; ++k) {
    const auto delay = backoff.next_delay_ms();
    ASSERT_TRUE(delay.has_value());
    EXPECT_GE(*delay, 0.0);
    EXPECT_LE(*delay, 0.0);  // base pinned at 0
  }
}

}  // namespace
}  // namespace swbpbc::util
