#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace swbpbc::util {
namespace {

TEST(ThreadPool, SerialModeRunsAllIterations) {
  ThreadPool pool(0);
  std::vector<int> hits(100, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, ParallelRunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RespectsBeginOffset) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10 + 11 + ... + 19
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 57)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, AggregatesConcurrentExceptions) {
  // Two iterations rendezvous before throwing, so both are in flight on
  // distinct threads and BOTH failures must be captured — the old behavior
  // silently dropped all but the first.
  ThreadPool pool(2);
  std::atomic<int> entered{0};
  try {
    pool.parallel_for(0, 2, [&](std::size_t i) {
      entered.fetch_add(1);
      while (entered.load() < 2) std::this_thread::yield();
      throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected AggregateError";
  } catch (const AggregateError& e) {
    EXPECT_EQ(e.errors().size(), 2u);
    EXPECT_EQ(e.dropped(), 0u);
    const std::string what = e.what();
    EXPECT_NE(what.find("2 parallel_for iterations threw"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("boom 0"), std::string::npos) << what;
    EXPECT_NE(what.find("boom 1"), std::string::npos) << what;
  }
}

TEST(ThreadPool, SingleExceptionKeepsOriginalType) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 100, [&](std::size_t i) {
      if (i == 31) throw std::out_of_range("only one");
    });
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "only one");
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(7);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 1000; ++i) seen[rng.below(8)]++;
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_EQ(s.count, 4u);
}

TEST(Stats, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"n", "ms"});
  t.add_row({"1024", "1.50"});
  t.add_row({"65536", "95.25"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| n "), std::string::npos);
  EXPECT_NE(out.find("| 65536 "), std::string::npos);
  EXPECT_NE(out.find("+-"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Options, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--n=42", "--name=abc", "--flag",
                        "positional"};
  Options opt(5, const_cast<char**>(argv));
  EXPECT_EQ(opt.get_int("n", 0), 42);
  EXPECT_EQ(opt.get("name", ""), "abc");
  EXPECT_TRUE(opt.get_bool("flag", false));
  EXPECT_FALSE(opt.get_bool("other", false));
  ASSERT_EQ(opt.positional().size(), 1u);
  EXPECT_EQ(opt.positional()[0], "positional");
}

TEST(Options, IntListParsing) {
  const char* argv[] = {"prog", "--sizes=1,2,3"};
  Options opt(2, const_cast<char**>(argv));
  const auto v = opt.get_int_list("sizes", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
}

TEST(Options, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opt(1, const_cast<char**>(argv));
  EXPECT_EQ(opt.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(opt.get_double("missing", 1.5), 1.5);
  const auto v = opt.get_int_list("missing", {9});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 9);
}

TEST(Timer, MeasuresNonNegative) {
  WallTimer t;
  EXPECT_GE(t.elapsed_ms(), 0.0);
  double acc = 0.0;
  { ScopedAccumulator guard(acc); }
  EXPECT_GE(acc, 0.0);
}

}  // namespace
}  // namespace swbpbc::util
