// Raw-fd IO discipline: full-transfer read/write semantics, clean-EOF
// short reads, typed open failures, and the atomic-publish idiom
// (temp + fsync + rename) that the checkpoint and database writers build
// durability on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/io.hpp"
#include "util/status.hpp"

namespace swbpbc::util {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "swbpbc_io_" + name;
}

TEST(Io, WriteFullThenReadFullRoundTrips) {
  const std::string path = temp_path("roundtrip.bin");
  std::vector<std::uint8_t> payload(300000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 131);

  auto w = open_for_write(path);
  ASSERT_TRUE(w.has_value()) << w.status().to_string();
  ASSERT_TRUE(write_full(w->get(), payload.data(), payload.size()).ok());
  ASSERT_TRUE(fsync_file(w->get()).ok());
  ASSERT_TRUE(w->close().ok());

  auto r = open_for_read(path);
  ASSERT_TRUE(r.has_value()) << r.status().to_string();
  const auto size = file_size(r->get());
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, payload.size());
  std::vector<std::uint8_t> back(payload.size());
  const auto got = read_full(r->get(), back.data(), back.size());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload.size());
  EXPECT_EQ(back, payload);
  std::remove(path.c_str());
}

TEST(Io, ReadFullReportsCleanEofShort) {
  const std::string path = temp_path("eof.bin");
  auto w = open_for_write(path);
  ASSERT_TRUE(w.has_value());
  const char five[] = "12345";
  ASSERT_TRUE(write_full(w->get(), five, 5).ok());
  ASSERT_TRUE(w->close().ok());

  auto r = open_for_read(path);
  ASSERT_TRUE(r.has_value());
  char buf[32] = {};
  const auto got = read_full(r->get(), buf, sizeof(buf));
  ASSERT_TRUE(got.has_value());
  // Short only at end-of-file — the caller's torn-tail signal.
  EXPECT_EQ(*got, 5u);
  EXPECT_EQ(std::memcmp(buf, five, 5), 0);
  std::remove(path.c_str());
}

TEST(Io, OpenMissingFileIsTypedError) {
  const auto r = open_for_read(temp_path("nonexistent.bin"));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
  EXPECT_NE(r.status().message().find("nonexistent"), std::string::npos);
}

TEST(Io, InvalidFdIsTypedErrorNotUb) {
  char c = 0;
  EXPECT_FALSE(read_full(-1, &c, 1).has_value());
  EXPECT_FALSE(write_full(-1, &c, 1).ok());
  EXPECT_FALSE(fsync_file(-1).ok());
  EXPECT_FALSE(file_size(-1).has_value());
}

TEST(Io, FsyncAndRenamePublishesAtomically) {
  const std::string final_path = temp_path("publish.bin");
  const std::string tmp_path = final_path + ".tmp";

  // Pre-existing file at the destination: replaced wholesale, never mixed.
  {
    auto old = open_for_write(final_path);
    ASSERT_TRUE(old.has_value());
    ASSERT_TRUE(write_full(old->get(), "OLD-CONTENT", 11).ok());
    ASSERT_TRUE(old->close().ok());
  }

  auto w = open_for_write(tmp_path);
  ASSERT_TRUE(w.has_value());
  ASSERT_TRUE(write_full(w->get(), "NEW", 3).ok());
  ASSERT_TRUE(fsync_and_rename(w->get(), tmp_path, final_path).ok());
  ASSERT_TRUE(w->close().ok());

  auto r = open_for_read(final_path);
  ASSERT_TRUE(r.has_value());
  const auto size = file_size(r->get());
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 3u);
  char buf[4] = {};
  ASSERT_TRUE(read_full(r->get(), buf, 3).has_value());
  EXPECT_EQ(std::memcmp(buf, "NEW", 3), 0);
  // The temp file is gone — no stale half-written sibling left behind.
  EXPECT_FALSE(open_for_read(tmp_path).has_value());
  std::remove(final_path.c_str());
}

TEST(Io, UniqueFdMoveTransfersOwnership) {
  const std::string path = temp_path("move.bin");
  auto w = open_for_write(path);
  ASSERT_TRUE(w.has_value());
  UniqueFd moved = std::move(*w);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(w->valid());  // NOLINT(bugprone-use-after-move): asserting it
  EXPECT_TRUE(moved.close().ok());
  EXPECT_FALSE(moved.valid());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swbpbc::util
