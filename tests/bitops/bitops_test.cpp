// Property tests: the bit-sliced arithmetic must agree with ordinary
// unsigned arithmetic on every lane, for random values and every slice
// width.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "bitops/arith.hpp"
#include "bitops/slices.hpp"

namespace swbpbc::bitops {
namespace {

template <typename W>
constexpr unsigned lanes() {
  return static_cast<unsigned>(8 * sizeof(W));
}

// Builds slice layout from per-lane values.
template <typename W>
std::vector<W> to_slices(const std::vector<std::uint32_t>& values,
                         unsigned s) {
  std::vector<W> out(s, 0);
  for (unsigned lane = 0; lane < values.size(); ++lane) {
    for (unsigned l = 0; l < s; ++l) {
      out[l] |= static_cast<W>(static_cast<W>((values[lane] >> l) & 1)
                               << lane);
    }
  }
  return out;
}

template <typename W>
std::vector<std::uint32_t> from_slices(const std::vector<W>& slices) {
  std::vector<std::uint32_t> out(lanes<W>(), 0);
  for (unsigned l = 0; l < slices.size(); ++l) {
    for (unsigned lane = 0; lane < lanes<W>(); ++lane) {
      out[lane] |= static_cast<std::uint32_t>((slices[l] >> lane) & 1) << l;
    }
  }
  return out;
}

template <typename W>
std::vector<std::uint32_t> random_values(std::mt19937& rng, unsigned s) {
  const std::uint32_t mask =
      s >= 32 ? ~0u : ((std::uint32_t{1} << s) - 1);
  std::vector<std::uint32_t> v(lanes<W>());
  for (auto& x : v) x = static_cast<std::uint32_t>(rng()) & mask;
  return v;
}

using Width = unsigned;

class Arith32 : public ::testing::TestWithParam<Width> {};

TEST_P(Arith32, GeMaskMatchesScalarCompare) {
  const unsigned s = GetParam();
  std::mt19937 rng(100 + s);
  for (int trial = 0; trial < 20; ++trial) {
    const auto va = random_values<std::uint32_t>(rng, s);
    const auto vb = random_values<std::uint32_t>(rng, s);
    const auto sa = to_slices<std::uint32_t>(va, s);
    const auto sb = to_slices<std::uint32_t>(vb, s);
    const std::uint32_t mask = ge_mask<std::uint32_t>(sa, sb);
    for (unsigned lane = 0; lane < 32; ++lane) {
      const bool ge = (mask >> lane) & 1;
      EXPECT_EQ(ge, va[lane] >= vb[lane]) << "lane " << lane;
    }
  }
}

TEST_P(Arith32, MaxMatchesScalarMax) {
  const unsigned s = GetParam();
  std::mt19937 rng(200 + s);
  for (int trial = 0; trial < 20; ++trial) {
    const auto va = random_values<std::uint32_t>(rng, s);
    const auto vb = random_values<std::uint32_t>(rng, s);
    const auto sa = to_slices<std::uint32_t>(va, s);
    const auto sb = to_slices<std::uint32_t>(vb, s);
    std::vector<std::uint32_t> q(s);
    max_b<std::uint32_t>(sa, sb, q);
    const auto vq = from_slices(q);
    for (unsigned lane = 0; lane < 32; ++lane) {
      EXPECT_EQ(vq[lane], std::max(va[lane], vb[lane])) << "lane " << lane;
    }
  }
}

TEST_P(Arith32, AddMatchesScalarAddModulo) {
  const unsigned s = GetParam();
  std::mt19937 rng(300 + s);
  const std::uint32_t mask = s >= 32 ? ~0u : ((std::uint32_t{1} << s) - 1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto va = random_values<std::uint32_t>(rng, s);
    const auto vb = random_values<std::uint32_t>(rng, s);
    const auto sa = to_slices<std::uint32_t>(va, s);
    const auto sb = to_slices<std::uint32_t>(vb, s);
    std::vector<std::uint32_t> q(s);
    add_b<std::uint32_t>(sa, sb, q);
    const auto vq = from_slices(q);
    for (unsigned lane = 0; lane < 32; ++lane) {
      EXPECT_EQ(vq[lane], (va[lane] + vb[lane]) & mask) << "lane " << lane;
    }
  }
}

TEST_P(Arith32, SsubMatchesSaturatingSubtract) {
  const unsigned s = GetParam();
  std::mt19937 rng(400 + s);
  for (int trial = 0; trial < 20; ++trial) {
    const auto va = random_values<std::uint32_t>(rng, s);
    const auto vb = random_values<std::uint32_t>(rng, s);
    const auto sa = to_slices<std::uint32_t>(va, s);
    const auto sb = to_slices<std::uint32_t>(vb, s);
    std::vector<std::uint32_t> q(s);
    ssub_b<std::uint32_t>(sa, sb, q);
    const auto vq = from_slices(q);
    for (unsigned lane = 0; lane < 32; ++lane) {
      const std::uint32_t expect =
          va[lane] > vb[lane] ? va[lane] - vb[lane] : 0u;
      EXPECT_EQ(vq[lane], expect) << "lane " << lane;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SliceWidths, Arith32,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 9u, 13u, 17u,
                                           31u, 32u));

TEST(Arith, MismatchMaskFlagsDifferingChars) {
  // epsilon = 2 characters: lanes 0..3 get chars (0,1,2,3) in x and char 2
  // in y -> only lane 2 matches.
  const std::vector<std::uint32_t> xl = {0b1010};  // L bits of 0,1,2,3
  const std::vector<std::uint32_t> xh = {0b1100};  // H bits
  const std::vector<std::uint32_t> yl = {0b0000};
  const std::vector<std::uint32_t> yh = {0b1111};
  const std::vector<std::uint32_t> x = {xl[0], xh[0]};
  const std::vector<std::uint32_t> y = {yl[0], yh[0]};
  const std::uint32_t e = mismatch_mask<std::uint32_t>(x, y);
  EXPECT_EQ(e & 0xF, 0b1011u);  // lane 2 (char 2 == char 2) matches
}

TEST(Arith, MatchingSelectsAddOrSsubPerLane) {
  const unsigned s = 6;
  std::mt19937 rng(55);
  const auto vc = random_values<std::uint32_t>(rng, s - 1);  // headroom
  const auto sc = to_slices<std::uint32_t>(vc, s);
  const auto c1 = broadcast_constant<std::uint32_t>(2, s);
  const auto c2 = broadcast_constant<std::uint32_t>(1, s);
  const std::uint32_t e = 0xA5A5A5A5u;
  std::vector<std::uint32_t> q(s), r(s), t(s);
  matching_b<std::uint32_t>(sc, e, c1, c2, q, r, t);
  const auto vq = from_slices(q);
  for (unsigned lane = 0; lane < 32; ++lane) {
    const bool mismatch = (e >> lane) & 1;
    const std::uint32_t expect =
        mismatch ? (vc[lane] > 1 ? vc[lane] - 1 : 0) : vc[lane] + 2;
    EXPECT_EQ(vq[lane], expect) << "lane " << lane;
  }
}

TEST(Arith, SwCellMatchesScalarRecurrence) {
  const unsigned s = 9;
  std::mt19937 rng(77);
  struct {
    std::uint32_t match, mismatch, gap;
  } params{2, 1, 1};
  for (int trial = 0; trial < 50; ++trial) {
    const auto va = random_values<std::uint32_t>(rng, s - 2);
    const auto vb = random_values<std::uint32_t>(rng, s - 2);
    const auto vc = random_values<std::uint32_t>(rng, s - 2);
    const auto e = static_cast<std::uint32_t>(rng());
    const auto sa = to_slices<std::uint32_t>(va, s);
    const auto sb = to_slices<std::uint32_t>(vb, s);
    const auto sc = to_slices<std::uint32_t>(vc, s);
    const auto gap = broadcast_constant<std::uint32_t>(params.gap, s);
    const auto c1 = broadcast_constant<std::uint32_t>(params.match, s);
    const auto c2 = broadcast_constant<std::uint32_t>(params.mismatch, s);
    std::vector<std::uint32_t> out(s), t(s), u(s), r(s);
    sw_cell<std::uint32_t>(sa, sb, sc, e, gap, c1, c2, out, t, u, r);
    const auto vout = from_slices(out);
    for (unsigned lane = 0; lane < 32; ++lane) {
      const auto ssub = [](std::uint32_t a, std::uint32_t b) {
        return a > b ? a - b : 0u;
      };
      const bool mismatch = (e >> lane) & 1;
      const std::uint32_t w = mismatch ? ssub(vc[lane], params.mismatch)
                                       : vc[lane] + params.match;
      const std::uint32_t g =
          ssub(std::max(va[lane], vb[lane]), params.gap);
      EXPECT_EQ(vout[lane], std::max(w, g)) << "lane " << lane;
    }
  }
}

TEST(Arith, SwCellOutMayAliasInputs) {
  const unsigned s = 5;
  std::mt19937 rng(88);
  const auto va = random_values<std::uint32_t>(rng, s - 1);
  const auto vb = random_values<std::uint32_t>(rng, s - 1);
  const auto vc = random_values<std::uint32_t>(rng, s - 1);
  const std::uint32_t e = 0x0F0F0F0Fu;
  auto sa = to_slices<std::uint32_t>(va, s);
  const auto sb = to_slices<std::uint32_t>(vb, s);
  const auto sc = to_slices<std::uint32_t>(vc, s);
  const auto gap = broadcast_constant<std::uint32_t>(1, s);
  const auto c1 = broadcast_constant<std::uint32_t>(2, s);
  const auto c2 = broadcast_constant<std::uint32_t>(1, s);
  std::vector<std::uint32_t> t(s), u(s), r(s), ref(s);
  sw_cell<std::uint32_t>(sa, sb, sc, e, gap, c1, c2, ref, t, u, r);
  // Now alias out with a.
  sw_cell<std::uint32_t>(sa, sb, sc, e, gap, c1, c2, sa, t, u, r);
  EXPECT_EQ(sa, ref);
}

TEST(Arith, BroadcastConstant) {
  const auto s5 = broadcast_constant<std::uint32_t>(0b10110, 5);
  ASSERT_EQ(s5.size(), 5u);
  EXPECT_EQ(s5[0], 0u);
  EXPECT_EQ(s5[1], ~0u);
  EXPECT_EQ(s5[2], ~0u);
  EXPECT_EQ(s5[3], 0u);
  EXPECT_EQ(s5[4], ~0u);
}

TEST(Arith, ZeroSlices) {
  const auto z = zero_slices<std::uint64_t>(4);
  ASSERT_EQ(z.size(), 4u);
  for (auto w : z) EXPECT_EQ(w, 0u);
}

// 64-bit lanes: a slimmer sweep (the template is identical).
TEST(Arith64, SsubAndMaxAgreeWithScalar) {
  const unsigned s = 9;
  std::mt19937_64 rng(99);
  std::vector<std::uint32_t> va(64), vb(64);
  const std::uint32_t mask = (1u << s) - 1;
  for (auto& v : va) v = static_cast<std::uint32_t>(rng()) & mask;
  for (auto& v : vb) v = static_cast<std::uint32_t>(rng()) & mask;
  std::vector<std::uint64_t> sa(s, 0), sb(s, 0);
  for (unsigned lane = 0; lane < 64; ++lane) {
    for (unsigned l = 0; l < s; ++l) {
      sa[l] |= static_cast<std::uint64_t>((va[lane] >> l) & 1) << lane;
      sb[l] |= static_cast<std::uint64_t>((vb[lane] >> l) & 1) << lane;
    }
  }
  std::vector<std::uint64_t> q(s);
  ssub_b<std::uint64_t>(sa, sb, q);
  std::vector<std::uint64_t> qm(s);
  max_b<std::uint64_t>(sa, sb, qm);
  for (unsigned lane = 0; lane < 64; ++lane) {
    std::uint32_t vsub = 0, vmax = 0;
    for (unsigned l = 0; l < s; ++l) {
      vsub |= static_cast<std::uint32_t>((q[l] >> lane) & 1) << l;
      vmax |= static_cast<std::uint32_t>((qm[l] >> lane) & 1) << l;
    }
    EXPECT_EQ(vsub, va[lane] > vb[lane] ? va[lane] - vb[lane] : 0u);
    EXPECT_EQ(vmax, std::max(va[lane], vb[lane]));
  }
}

}  // namespace
}  // namespace swbpbc::bitops
