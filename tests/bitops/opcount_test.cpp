// Measures the operation counts of the Section IV.A arithmetic with
// CountingWord and asserts the paper's Lemmas 2-5 and Theorem 6.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "bitops/arith.hpp"
#include "bitops/counting.hpp"
#include "bitops/slices.hpp"

namespace swbpbc::bitops {
namespace {

using CW = CountingWord<std::uint32_t>;

std::vector<CW> cw_slices(unsigned s, std::uint32_t pattern) {
  std::vector<CW> v;
  v.reserve(s);
  for (unsigned l = 0; l < s; ++l)
    v.push_back(CW{pattern * (l + 1) ^ 0x9e3779b9u});
  return v;
}

class OpCount : public ::testing::TestWithParam<unsigned> {};

TEST_P(OpCount, GreaterthanMatchesFormula) {
  const unsigned s = GetParam();
  const auto a = cw_slices(s, 3);
  const auto b = cw_slices(s, 5);
  CW::reset_ops();
  (void)ge_mask<CW>(a, b);
  EXPECT_EQ(CW::ops(), ops_greaterthan(s));  // 5s - 2
}

TEST_P(OpCount, MaxMatchesLemma2) {
  const unsigned s = GetParam();
  const auto a = cw_slices(s, 3);
  const auto b = cw_slices(s, 5);
  std::vector<CW> q(s);
  CW::reset_ops();
  max_b<CW>(a, b, q);
  EXPECT_EQ(CW::ops(), ops_max(s));  // 9s - 2
}

TEST_P(OpCount, AddMatchesLemma3) {
  const unsigned s = GetParam();
  const auto a = cw_slices(s, 3);
  const auto b = cw_slices(s, 5);
  std::vector<CW> q(s);
  CW::reset_ops();
  add_b<CW>(a, b, q);
  // Lemma 3 says 6s - 5, but the paper's carry initialization is wrong
  // (see add_b); the corrected adder costs 6s - 4.
  EXPECT_EQ(CW::ops(), ops_add(s));
}

TEST_P(OpCount, SsubMatchesLemma4) {
  const unsigned s = GetParam();
  const auto a = cw_slices(s, 3);
  const auto b = cw_slices(s, 5);
  std::vector<CW> q(s);
  CW::reset_ops();
  ssub_b<CW>(a, b, q);
  EXPECT_EQ(CW::ops(), ops_ssub(s));  // 9s - 4
}

TEST_P(OpCount, MatchingWithinLemma5Bound) {
  const unsigned s = GetParam();
  const unsigned eps = 2;  // DNA
  const auto c = cw_slices(s, 3);
  const auto c1 = cw_slices(s, 7);
  const auto c2 = cw_slices(s, 11);
  const auto x = cw_slices(eps, 13);
  const auto y = cw_slices(eps, 17);
  std::vector<CW> q(s), r(s), t(s);
  CW::reset_ops();
  const CW e = mismatch_mask<CW>(x, y);
  matching_b<CW>(c, e, c1, c2, q, r, t);
  EXPECT_EQ(CW::ops(), ops_matching(s, eps));
  if (s >= 2) {
    EXPECT_LE(CW::ops(), ops_matching_bound(s));  // Lemma 5: 21s - 9
  }
}

TEST_P(OpCount, SwCellWithinTheorem6Bound) {
  const unsigned s = GetParam();
  const unsigned eps = 2;
  const auto a = cw_slices(s, 3);
  const auto b = cw_slices(s, 5);
  const auto c = cw_slices(s, 7);
  const auto gap = cw_slices(s, 11);
  const auto c1 = cw_slices(s, 13);
  const auto c2 = cw_slices(s, 17);
  const auto x = cw_slices(eps, 19);
  const auto y = cw_slices(eps, 23);
  std::vector<CW> out(s), t(s), u(s), r(s);
  CW::reset_ops();
  const CW e = mismatch_mask<CW>(x, y);
  sw_cell<CW>(a, b, c, e, gap, c1, c2, out, t, u, r);
  EXPECT_EQ(CW::ops(), ops_sw_cell(s, eps));
  if (s >= 3) {
    // Theorem 6: at most 48s - 18 operations per cell. (At s = 2 our
    // corrected adder exceeds the bound by one op; real workloads have
    // s >= 3.)
    EXPECT_LE(CW::ops(), ops_sw_cell_bound(s));
  }
}

INSTANTIATE_TEST_SUITE_P(SliceWidths, OpCount,
                         ::testing::Values(2u, 3u, 5u, 8u, 9u, 16u, 32u));

TEST(OpCount, CountingWordComputesCorrectValues) {
  const CW a{0b1100}, b{0b1010};
  EXPECT_EQ((a & b).value(), 0b1000u);
  EXPECT_EQ((a | b).value(), 0b1110u);
  EXPECT_EQ((a ^ b).value(), 0b0110u);
  EXPECT_EQ((~CW{0u}).value(), ~0u);
}

TEST(OpCount, ResetClearsCounter) {
  CW::reset_ops();
  const CW a{1}, b{2};
  (void)(a & b);
  EXPECT_EQ(CW::ops(), 1u);
  CW::reset_ops();
  EXPECT_EQ(CW::ops(), 0u);
}

}  // namespace
}  // namespace swbpbc::bitops
