// Obliviousness certification (paper §I / refs [10], [12]): the library's
// bulk kernels must have input-independent address traces; a
// data-dependent algorithm must be flagged.
#include <gtest/gtest.h>

#include "bulk/oblivious.hpp"
#include "util/rng.hpp"

namespace swbpbc::bulk {
namespace {

std::vector<std::vector<long>> random_inputs(std::size_t count,
                                             std::size_t len,
                                             std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<long>> inputs(count);
  for (auto& in : inputs) {
    in.resize(len);
    for (auto& v : in) v = static_cast<long>(rng.below(100));
  }
  return inputs;
}

TEST(Oblivious, PrefixSumsAreOblivious) {
  // The paper's own example: b[i] <- b[i] + b[i-1] for all i in turn.
  const auto algorithm = [](TracedArray<long>& b) {
    for (std::size_t i = 1; i < b.size(); ++i) {
      b.write(i, b.read(i) + b.read(i - 1));
    }
  };
  EXPECT_TRUE(is_oblivious<long>(algorithm, random_inputs(5, 32, 1)));
}

TEST(Oblivious, RowMajorSwaLoopIsOblivious) {
  // The SWA DP update d[j] = f(d[j], d[j-1], diag) visits the same
  // addresses regardless of the sequence contents — the property that
  // lets BPBC advance 32 instances in lock step.
  const auto algorithm = [](TracedArray<long>& row) {
    long diag = 0;
    for (std::size_t i = 0; i < 4; ++i) {  // 4 pattern rows
      for (std::size_t j = 1; j < row.size(); ++j) {
        const long up = row.read(j);
        const long left = row.read(j - 1);
        row.write(j, std::max({0L, diag + 1, up - 1, left - 1}));
        diag = up;
      }
    }
  };
  EXPECT_TRUE(is_oblivious<long>(algorithm, random_inputs(4, 16, 2)));
}

TEST(Oblivious, DataDependentScanIsNotOblivious) {
  // "Find first element > 50 and zero everything after it" — the trace
  // length depends on the data.
  const auto algorithm = [](TracedArray<long>& b) {
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b.read(i) > 50) {
        for (std::size_t j = i; j < b.size(); ++j) b.write(j, 0);
        return;
      }
    }
  };
  EXPECT_FALSE(is_oblivious<long>(algorithm, random_inputs(8, 32, 3)));
}

TEST(Oblivious, BinarySearchIsNotOblivious) {
  const auto algorithm = [](TracedArray<long>& b) {
    std::size_t lo = 0, hi = b.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (b.read(mid) < 42) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
  };
  EXPECT_FALSE(is_oblivious<long>(algorithm, random_inputs(8, 64, 4)));
}

TEST(Oblivious, SingleInputIsTriviallyOblivious) {
  const auto algorithm = [](TracedArray<long>& b) {
    if (b.read(0) > 0) b.write(1, 0);
  };
  EXPECT_TRUE(is_oblivious<long>(algorithm, random_inputs(1, 4, 5)));
}

TEST(Oblivious, TraceRecordsKindsAndIndices) {
  AccessTrace trace;
  TracedArray<int> arr({10, 20}, &trace);
  (void)arr.read(1);
  arr.write(0, 7);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].kind, Access::Kind::kRead);
  EXPECT_EQ(trace[0].index, 1u);
  EXPECT_EQ(trace[1].kind, Access::Kind::kWrite);
  EXPECT_EQ(trace[1].index, 0u);
  EXPECT_EQ(arr.data()[0], 7);
}

}  // namespace
}  // namespace swbpbc::bulk
