#include <gtest/gtest.h>

#include <numeric>

#include "bulk/executor.hpp"
#include "bulk/fft.hpp"
#include "bulk/prefix.hpp"
#include "util/rng.hpp"

namespace swbpbc::bulk {
namespace {

TEST(Executor, SerialAndParallelProduceSameResults) {
  std::vector<int> inputs(100);
  std::iota(inputs.begin(), inputs.end(), 0);
  std::vector<int> serial(100), parallel(100);
  const auto kernel = [](int v) { return v * v + 1; };
  bulk_execute<int, int>(inputs, std::span<int>(serial), kernel,
                         Mode::kSerial);
  bulk_execute<int, int>(inputs, std::span<int>(parallel), kernel,
                         Mode::kParallel);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial[10], 101);
}

TEST(Prefix, MatchesManualSums) {
  std::vector<int> b{3, 1, 4, 1, 5};
  prefix_sums(std::span<int>(b));
  const std::vector<int> expect{3, 4, 8, 9, 14};
  EXPECT_EQ(b, expect);
}

TEST(Prefix, BulkOverManyArrays) {
  util::Xoshiro256 rng(1);
  std::vector<std::vector<long>> arrays(20);
  std::vector<std::vector<long>> reference(20);
  for (std::size_t j = 0; j < arrays.size(); ++j) {
    arrays[j].resize(50);
    for (auto& v : arrays[j])
      v = static_cast<long>(rng.below(1000)) - 500;
    reference[j] = arrays[j];
    std::partial_sum(reference[j].begin(), reference[j].end(),
                     reference[j].begin());
  }
  bulk_prefix_sums(std::span<std::vector<long>>(arrays), Mode::kParallel);
  EXPECT_EQ(arrays, reference);
}

TEST(Fft, MatchesNaiveDft) {
  util::Xoshiro256 rng(2);
  for (std::size_t n : {1u, 2u, 8u, 64u}) {
    std::vector<Complex> data(n);
    for (auto& v : data) {
      v = Complex(static_cast<double>(rng.below(100)) / 10.0,
                  static_cast<double>(rng.below(100)) / 10.0 - 5.0);
    }
    const auto reference = naive_dft(data);
    auto fast = data;
    fft(std::span<Complex>(fast));
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(fast[k].real(), reference[k].real(), 1e-6)
          << "n=" << n << " k=" << k;
      EXPECT_NEAR(fast[k].imag(), reference[k].imag(), 1e-6)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Fft, RoundTripThroughInverse) {
  util::Xoshiro256 rng(3);
  std::vector<Complex> data(128);
  for (auto& v : data) {
    v = Complex(static_cast<double>(rng.below(1000)) / 100.0, 0.0);
  }
  auto transformed = data;
  fft(std::span<Complex>(transformed));
  ifft(std::span<Complex>(transformed));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(transformed[i].real(), data[i].real(), 1e-9);
    EXPECT_NEAR(transformed[i].imag(), 0.0, 1e-9);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft(std::span<Complex>(data)), std::invalid_argument);
  std::vector<Complex> empty;
  EXPECT_THROW(fft(std::span<Complex>(empty)), std::invalid_argument);
}

TEST(Fft, PureToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> data(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double angle =
        2.0 * 3.14159265358979323846 * 5.0 * static_cast<double>(t) /
        static_cast<double>(n);
    data[t] = Complex(std::cos(angle), 0.0);
  }
  fft(std::span<Complex>(data));
  // A real cosine splits between bins 5 and n-5.
  EXPECT_NEAR(std::abs(data[5]), static_cast<double>(n) / 2.0, 1e-6);
  EXPECT_NEAR(std::abs(data[n - 5]), static_cast<double>(n) / 2.0, 1e-6);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != 5 && k != n - 5) {
      EXPECT_LT(std::abs(data[k]), 1e-6);
    }
  }
}

TEST(Fft, StreamPartitioningPadsAndTransforms) {
  util::Xoshiro256 rng(4);
  std::vector<double> stream(100);
  for (auto& v : stream) v = static_cast<double>(rng.below(100));
  const auto blocks =
      stream_fft(std::span<const double>(stream), 32, Mode::kSerial);
  ASSERT_EQ(blocks.size(), 4u);  // 100 samples -> 4 blocks of 32
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 32u);

  // DC bin of block 0 equals the sum of its 32 samples.
  double sum = 0.0;
  for (std::size_t i = 0; i < 32; ++i) sum += stream[i];
  EXPECT_NEAR(blocks[0][0].real(), sum, 1e-9);

  // Parallel bulk execution agrees.
  const auto parallel =
      stream_fft(std::span<const double>(stream), 32, Mode::kParallel);
  for (std::size_t b = 0; b < 4; ++b) {
    for (std::size_t k = 0; k < 32; ++k) {
      EXPECT_NEAR(std::abs(blocks[b][k] - parallel[b][k]), 0.0, 1e-12);
    }
  }
}

TEST(Fft, StreamRejectsBadBlockSize) {
  const std::vector<double> stream(10, 1.0);
  EXPECT_THROW(stream_fft(std::span<const double>(stream), 12,
                          Mode::kSerial),
               std::invalid_argument);
}

}  // namespace
}  // namespace swbpbc::bulk
