#include <gtest/gtest.h>

#include <sstream>

#include "encoding/batch.hpp"
#include "encoding/dna.hpp"
#include "encoding/fasta.hpp"
#include "encoding/random.hpp"

namespace swbpbc::encoding {
namespace {

TEST(Dna, PaperEncoding) {
  // Paper §II: A = 00, G = 10, C = 11, T = 01.
  EXPECT_EQ(code(Base::A), 0b00);
  EXPECT_EQ(code(Base::T), 0b01);
  EXPECT_EQ(code(Base::G), 0b10);
  EXPECT_EQ(code(Base::C), 0b11);
}

TEST(Dna, HighLowBitPlanes) {
  EXPECT_EQ(high_bit(Base::G), 1);
  EXPECT_EQ(low_bit(Base::G), 0);
  EXPECT_EQ(high_bit(Base::T), 0);
  EXPECT_EQ(low_bit(Base::T), 1);
}

TEST(Dna, CharRoundTrip) {
  for (char ch : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(to_char(base_from_char(ch)), ch);
  }
  EXPECT_EQ(base_from_char('a'), Base::A);
  EXPECT_THROW(base_from_char('N'), std::invalid_argument);
  EXPECT_THROW(base_from_char('x'), std::invalid_argument);
}

TEST(Dna, StringRoundTrip) {
  const std::string text = "ATTCGGCA";
  EXPECT_EQ(to_string(sequence_from_string(text)), text);
}

TEST(Random, DeterministicAndUniformish) {
  util::Xoshiro256 rng(42);
  const Sequence s = random_sequence(rng, 4000);
  ASSERT_EQ(s.size(), 4000u);
  int counts[4] = {0, 0, 0, 0};
  for (Base b : s) counts[code(b)]++;
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform

  util::Xoshiro256 rng2(42);
  EXPECT_EQ(random_sequence(rng2, 4000), s);
}

TEST(Random, MutateRateZeroAndOne) {
  util::Xoshiro256 rng(1);
  const Sequence s = random_sequence(rng, 200);
  EXPECT_EQ(mutate(s, 0.0, rng), s);
  const Sequence all = mutate(s, 1.0, rng);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_NE(all[i], s[i]);
  EXPECT_THROW(mutate(s, 1.5, rng), std::invalid_argument);
}

TEST(Random, PlantMotif) {
  util::Xoshiro256 rng(2);
  Sequence host = random_sequence(rng, 100);
  const Sequence motif = sequence_from_string("ACGTACGT");
  plant_motif(host, motif, 10);
  for (std::size_t i = 0; i < motif.size(); ++i)
    EXPECT_EQ(host[10 + i], motif[i]);
  EXPECT_THROW(plant_motif(host, motif, 95), std::out_of_range);
}

template <bitsim::LaneWord W>
void check_transpose_roundtrip(std::size_t count, std::size_t length) {
  util::Xoshiro256 rng(count * 131 + length);
  const auto seqs = random_sequences(rng, count, length);
  const auto planned = transpose_strings<W>(seqs, TransposeMethod::kPlanned);
  const auto naive = transpose_strings<W>(seqs, TransposeMethod::kNaive);
  ASSERT_EQ(planned.groups.size(), naive.groups.size());
  for (std::size_t g = 0; g < planned.groups.size(); ++g) {
    EXPECT_EQ(planned.groups[g].hi, naive.groups[g].hi) << "group " << g;
    EXPECT_EQ(planned.groups[g].lo, naive.groups[g].lo) << "group " << g;
  }
  // Read back every character.
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  for (std::size_t k = 0; k < count; ++k) {
    const auto& group = planned.groups[k / kLanes];
    for (std::size_t i = 0; i < length; ++i) {
      ASSERT_EQ(read_base(group, k % kLanes, i), seqs[k][i])
          << "instance " << k << " pos " << i;
    }
  }
}

TEST(Batch, TransposePlannedEqualsNaive32) {
  check_transpose_roundtrip<std::uint32_t>(32, 40);
}

TEST(Batch, TransposePlannedEqualsNaive64) {
  check_transpose_roundtrip<std::uint64_t>(64, 17);
}

TEST(Batch, TailGroupHandling) {
  // 70 instances with 32 lanes -> 3 groups, last one partially used.
  check_transpose_roundtrip<std::uint32_t>(70, 8);
}

TEST(Batch, SingleInstance) {
  check_transpose_roundtrip<std::uint32_t>(1, 5);
}

TEST(Batch, RejectsUnequalLengths) {
  std::vector<Sequence> seqs = {sequence_from_string("ACGT"),
                                sequence_from_string("ACG")};
  EXPECT_THROW(transpose_strings<std::uint32_t>(seqs),
               std::invalid_argument);
}

TEST(Batch, EmptyBatch) {
  const std::vector<Sequence> seqs;
  const auto batch = transpose_strings<std::uint32_t>(seqs);
  EXPECT_EQ(batch.count, 0u);
  EXPECT_TRUE(batch.groups.empty());
}

template <bitsim::LaneWord W>
void check_value_roundtrip(unsigned s) {
  constexpr unsigned kLanes = bitsim::word_bits_v<W>;
  util::Xoshiro256 rng(777 + s);
  std::vector<std::uint32_t> values(kLanes);
  const std::uint32_t mask = s >= 32 ? ~0u : ((std::uint32_t{1} << s) - 1);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.next()) & mask;
  const auto slices = transpose_values<W>(values, s);
  for (auto method : {TransposeMethod::kPlanned, TransposeMethod::kNaive}) {
    const auto back = untranspose_values<W>(
        std::span<const W>(slices), s, method);
    EXPECT_EQ(back, values) << "s=" << s;
  }
}

TEST(Batch, ValueRoundTrip32) {
  for (unsigned s : {1u, 2u, 9u, 16u, 32u}) {
    check_value_roundtrip<std::uint32_t>(s);
  }
}

TEST(Batch, ValueRoundTrip64) {
  for (unsigned s : {1u, 9u, 20u}) {
    check_value_roundtrip<std::uint64_t>(s);
  }
}

TEST(Batch, UntransposeValidatesArguments) {
  std::vector<std::uint32_t> slices(4, 0);
  EXPECT_THROW(
      untranspose_values<std::uint32_t>(std::span<const std::uint32_t>(slices),
                                        5),
      std::invalid_argument);
}

TEST(Fasta, ParseAndRoundTrip) {
  const std::string text =
      ">seq1 description\nACGT\nACGT\n\n>seq2\nTTTT\n";
  const auto records = read_fasta_string(text);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "seq1 description");
  EXPECT_EQ(to_string(records[0].sequence), "ACGTACGT");
  EXPECT_EQ(to_string(records[1].sequence), "TTTT");

  std::ostringstream out;
  write_fasta(out, records, 4);
  const auto reparsed = read_fasta_string(out.str());
  ASSERT_EQ(reparsed.size(), 2u);
  EXPECT_EQ(reparsed[0].sequence, records[0].sequence);
  EXPECT_EQ(reparsed[1].sequence, records[1].sequence);
}

TEST(Fasta, RejectsMalformedInput) {
  EXPECT_THROW(read_fasta_string("ACGT\n"), std::invalid_argument);
  EXPECT_THROW(read_fasta_string(">x\nACGN\n"), std::invalid_argument);
}

TEST(Fasta, HandlesCrlf) {
  const auto records = read_fasta_string(">a\r\nAC\r\nGT\r\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(to_string(records[0].sequence), "ACGT");
}

}  // namespace
}  // namespace swbpbc::encoding
