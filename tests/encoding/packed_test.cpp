#include <gtest/gtest.h>

#include "encoding/packed.hpp"
#include "encoding/random.hpp"

namespace swbpbc::encoding {
namespace {

TEST(Packed, PackUnpackRoundTrip) {
  util::Xoshiro256 rng(1);
  for (std::size_t len : {0u, 1u, 3u, 4u, 5u, 100u, 1023u}) {
    const Sequence seq = random_sequence(rng, len);
    const PackedSequence packed = PackedSequence::pack(seq);
    EXPECT_EQ(packed.size(), len);
    EXPECT_EQ(packed.unpack(), seq);
  }
}

TEST(Packed, FourCharactersPerByte) {
  const Sequence seq = sequence_from_string("ACGTACGTA");  // 9 chars
  const PackedSequence packed = PackedSequence::pack(seq);
  EXPECT_EQ(packed.storage_bytes(), 3u);  // ceil(9 / 4)
  EXPECT_TRUE(PackedSequence().empty());
}

TEST(Packed, GetSetIndividualCharacters) {
  Sequence seq = sequence_from_string("AAAAAAAA");
  PackedSequence packed = PackedSequence::pack(seq);
  packed.set(3, Base::C);
  packed.set(7, Base::G);
  EXPECT_EQ(packed.get(3), Base::C);
  EXPECT_EQ(packed.get(7), Base::G);
  EXPECT_EQ(packed.get(0), Base::A);
  EXPECT_EQ(to_string(packed.unpack()), "AAACAAAG");
  EXPECT_THROW((void)packed.get(8), std::out_of_range);
  EXPECT_THROW(packed.set(8, Base::A), std::out_of_range);
}

TEST(Packed, PushBackGrowsByteWise) {
  PackedSequence packed;
  const std::string text = "GATTACA";
  for (char ch : text) packed.push_back(base_from_char(ch));
  EXPECT_EQ(packed.size(), text.size());
  EXPECT_EQ(packed.storage_bytes(), 2u);
  EXPECT_EQ(to_string(packed.unpack()), text);
}

TEST(Packed, EqualityComparesContent) {
  const Sequence seq = sequence_from_string("ACGT");
  EXPECT_EQ(PackedSequence::pack(seq), PackedSequence::pack(seq));
  Sequence other = seq;
  other[0] = Base::T;
  EXPECT_NE(PackedSequence::pack(seq), PackedSequence::pack(other));
}

}  // namespace
}  // namespace swbpbc::encoding
