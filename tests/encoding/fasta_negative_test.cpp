#include <gtest/gtest.h>

#include <string>

#include "encoding/fasta.hpp"
#include "util/status.hpp"

namespace swbpbc::encoding {
namespace {

util::Status parse_status(const std::string& text) {
  const auto result = try_read_fasta_string(text);
  EXPECT_FALSE(result.has_value()) << "input unexpectedly parsed: " << text;
  return result.status();
}

TEST(FastaNegative, InvalidCharacterNamesLineAndColumn) {
  const util::Status s = parse_status(">seq1\nACGT\nACGN\n");
  EXPECT_EQ(s.code(), util::ErrorCode::kParseError);
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("column 4"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("'N'"), std::string::npos) << s.message();
}

TEST(FastaNegative, SequenceDataBeforeHeader) {
  const util::Status s = parse_status("ACGT\n>late\nACGT\n");
  EXPECT_EQ(s.code(), util::ErrorCode::kParseError);
  EXPECT_NE(s.message().find("line 1"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("before any header"), std::string::npos)
      << s.message();
}

TEST(FastaNegative, EmptyRecordName) {
  const util::Status s = parse_status(">\nACGT\n");
  EXPECT_EQ(s.code(), util::ErrorCode::kParseError);
  EXPECT_NE(s.message().find("line 1"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("empty record name"), std::string::npos)
      << s.message();
}

TEST(FastaNegative, EmptySequenceMidFile) {
  // Record 'a' (header on line 1) has no sequence before the next header.
  const util::Status s = parse_status(">a\n>b\nACGT\n");
  EXPECT_EQ(s.code(), util::ErrorCode::kParseError);
  EXPECT_NE(s.message().find("line 1"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("'a'"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("no sequence"), std::string::npos)
      << s.message();
}

TEST(FastaNegative, EmptySequenceAtEndOfFile) {
  const util::Status s = parse_status(">a\nACGT\n>b\n");
  EXPECT_EQ(s.code(), util::ErrorCode::kParseError);
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("'b'"), std::string::npos) << s.message();
}

TEST(FastaNegative, ThrowingWrapperCarriesStatus) {
  try {
    read_fasta_string("garbage\n");
    FAIL() << "expected StatusError";
  } catch (const util::StatusError& e) {
    EXPECT_EQ(e.status().code(), util::ErrorCode::kParseError);
  }
  // Back-compat: StatusError is-a std::invalid_argument, so existing
  // call sites catching the old type keep working.
  EXPECT_THROW(read_fasta_string("garbage\n"), std::invalid_argument);
}

TEST(FastaNegative, WellFormedInputStillParses) {
  const auto result = try_read_fasta_string(
      ">first\r\nACGT\nacgt\n\n>second\nTTTT\nGG\n");
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  const auto& records = *result;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "first");
  EXPECT_EQ(records[0].sequence.size(), 8u);
  EXPECT_EQ(records[1].name, "second");
  EXPECT_EQ(records[1].sequence.size(), 6u);
}

}  // namespace
}  // namespace swbpbc::encoding
