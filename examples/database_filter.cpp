// Database screening — the workload the paper's introduction motivates:
// a query motif is screened against a database of sequences; the BPBC
// pass computes every pair's maximum alignment score, and only pairs
// reaching the threshold tau get the expensive detailed alignment
// (paper §III).
//
//   ./database_filter [--entries=N] [--tau=T] [--gpu] [--fasta=path]
//
// With --fasta, database entries are read from a FASTA file (all records
// must share one length); otherwise a synthetic database with planted
// homologs is generated.
#include <cstdio>
#include <fstream>

#include "device/sw_kernels.hpp"
#include "encoding/fasta.hpp"
#include "encoding/random.hpp"
#include "sw/pipeline.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const auto entries =
      static_cast<std::size_t>(opt.get_int("entries", 256));
  const std::size_t m = 32, n = 512;

  util::Xoshiro256 rng(7);
  const auto query = encoding::random_sequence(rng, m);

  std::vector<encoding::Sequence> database;
  const std::string fasta_path = opt.get("fasta", "");
  if (!fasta_path.empty()) {
    std::ifstream in(fasta_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", fasta_path.c_str());
      return 1;
    }
    for (auto& rec : encoding::read_fasta(in))
      database.push_back(std::move(rec.sequence));
    std::printf("loaded %zu database entries from %s\n", database.size(),
                fasta_path.c_str());
  } else {
    database = encoding::random_sequences(rng, entries, n);
    // Plant degraded copies of the query in ~6%% of the entries.
    std::size_t planted = 0;
    for (std::size_t k = 0; k < database.size(); k += 17) {
      const auto noisy = encoding::mutate(query, 0.1, rng);
      encoding::plant_motif(database[k], noisy,
                            rng.below(n - m));
      ++planted;
    }
    std::printf("synthetic database: %zu entries of length %zu, "
                "%zu planted homologs\n", database.size(), n, planted);
  }

  const std::vector<encoding::Sequence> queries(database.size(), query);
  const auto tau = static_cast<std::uint32_t>(
      opt.get_int("tau", static_cast<std::int64_t>(2 * m) * 3 / 4));

  if (opt.get_bool("gpu", false)) {
    // Same screening pass through the simulated-GPU pipeline (§V).
    const auto result = device::gpu_bpbc_max_scores(
        queries, database, {2, 1, 1}, sw::LaneWidth::k32);
    std::size_t hits = 0;
    for (auto sc : result.scores) hits += sc >= tau ? 1 : 0;
    std::printf("[device] H2G %.2fms W2B %.2fms SWA %.2fms B2W %.2fms "
                "G2H %.2fms -> %zu hits >= %u\n",
                result.timings.h2g_ms, result.timings.w2b_ms,
                result.timings.swa_ms, result.timings.b2w_ms,
                result.timings.g2h_ms, hits, tau);
    return 0;
  }

  sw::ScreenConfig config;
  config.params = {2, 1, 1};
  config.threshold = tau;
  config.mode = bulk::Mode::kParallel;
  const sw::ScreenReport report = sw::screen(queries, database, config);

  std::printf("BPBC filter: W2B %.2fms, SWA %.2fms, B2W %.2fms; "
              "traceback of %zu hits: %.2fms\n",
              report.bpbc.w2b_ms, report.bpbc.swa_ms, report.bpbc.b2w_ms,
              report.hits.size(), report.traceback_ms);
  std::printf("%zu / %zu entries pass tau = %u\n", report.hits.size(),
              report.scores.size(), tau);
  for (std::size_t h = 0; h < report.hits.size() && h < 5; ++h) {
    const auto& hit = report.hits[h];
    std::printf("\nentry #%zu  score %u  region y[%zu..%zu)\n", hit.index,
                hit.bpbc_score, hit.detail.y_begin, hit.detail.y_end);
    std::printf("  %s\n  %s\n  %s\n", hit.detail.x_row.c_str(),
                hit.detail.mid_row.c_str(), hit.detail.y_row.c_str());
  }
  if (report.hits.size() > 5) {
    std::printf("\n(%zu more hits not shown)\n", report.hits.size() - 5);
  }
  return 0;
}
