// Database screening — the workload the paper's introduction motivates:
// a query motif is screened against a database of sequences; the BPBC
// pass computes every pair's maximum alignment score, and only pairs
// reaching the threshold tau get the expensive detailed alignment
// (paper §III).
//
//   ./database_filter [--entries=N] [--tau=T] [--gpu] [--fasta=path]
//                     [--width=32|64|128|256|512|scalar-wide|auto]
//                     [--json=path]
//
// With --fasta, database entries are read from a FASTA file (all records
// must share one length); otherwise a synthetic database with planted
// homologs is generated. --width picks the BPBC lane width (default auto:
// widest profitable for this CPU; SWBPBC_FORCE_LANE_WIDTH overrides).
// --json writes a RunReport whose config carries an FNV fingerprint of
// the score vector — scores are bit-identical across widths, so CI diffs
// the fingerprint across the dispatch matrix.
#include <cstdio>
#include <fstream>

#include "device/sw_kernels.hpp"
#include "encoding/fasta.hpp"
#include "encoding/random.hpp"
#include "sw/config.hpp"
#include "sw/pipeline.hpp"
#include "telemetry/run_report.hpp"
#include "util/checksum.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const auto entries =
      static_cast<std::size_t>(opt.get_int("entries", 256));
  const std::size_t m = 32, n = 512;

  util::Xoshiro256 rng(7);
  const auto query = encoding::random_sequence(rng, m);

  std::vector<encoding::Sequence> database;
  const std::string fasta_path = opt.get("fasta", "");
  if (!fasta_path.empty()) {
    std::ifstream in(fasta_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", fasta_path.c_str());
      return 1;
    }
    for (auto& rec : encoding::read_fasta(in))
      database.push_back(std::move(rec.sequence));
    std::printf("loaded %zu database entries from %s\n", database.size(),
                fasta_path.c_str());
  } else {
    database = encoding::random_sequences(rng, entries, n);
    // Plant degraded copies of the query in ~6%% of the entries.
    std::size_t planted = 0;
    for (std::size_t k = 0; k < database.size(); k += 17) {
      const auto noisy = encoding::mutate(query, 0.1, rng);
      encoding::plant_motif(database[k], noisy,
                            rng.below(n - m));
      ++planted;
    }
    std::printf("synthetic database: %zu entries of length %zu, "
                "%zu planted homologs\n", database.size(), n, planted);
  }

  const std::vector<encoding::Sequence> queries(database.size(), query);
  const auto tau = static_cast<std::uint32_t>(
      opt.get_int("tau", static_cast<std::int64_t>(2 * m) * 3 / 4));

  const std::string width_name = opt.get("width", "auto");
  const auto width = sw::parse_lane_width(width_name);
  if (!width) {
    std::fprintf(stderr, "unknown --width=%s\n", width_name.c_str());
    return 1;
  }
  const sw::LaneWidth resolved = sw::resolve_lane_width(*width);
  std::printf("lane width: %s (requested %s)\n", sw::lane_width_name(resolved),
              width_name.c_str());

  if (opt.get_bool("gpu", false)) {
    // Same screening pass through the simulated-GPU pipeline (§V).
    const auto result = device::gpu_bpbc_max_scores(
        queries, database, {2, 1, 1}, *width);
    std::size_t hits = 0;
    for (auto sc : result.scores) hits += sc >= tau ? 1 : 0;
    std::printf("[device] H2G %.2fms W2B %.2fms SWA %.2fms B2W %.2fms "
                "G2H %.2fms -> %zu hits >= %u\n",
                result.timings.h2g_ms, result.timings.w2b_ms,
                result.timings.swa_ms, result.timings.b2w_ms,
                result.timings.g2h_ms, hits, tau);
    return 0;
  }

  sw::ScoringConfig scoring;
  scoring.params = {2, 1, 1};
  scoring.threshold = tau;
  scoring.width = *width;
  scoring.mode = bulk::Mode::kParallel;
  const auto config = sw::ScreenSpecBuilder().scoring(scoring).build();
  if (!config) {
    std::fprintf(stderr, "bad screen config: %s\n",
                 config.status().to_string().c_str());
    return 1;
  }
  const sw::ScreenReport report = sw::screen(queries, database, *config);

  std::printf("BPBC filter: W2B %.2fms, SWA %.2fms, B2W %.2fms; "
              "traceback of %zu hits: %.2fms\n",
              report.bpbc.w2b_ms, report.bpbc.swa_ms, report.bpbc.b2w_ms,
              report.hits.size(), report.traceback_ms);
  std::printf("%zu / %zu entries pass tau = %u\n", report.hits.size(),
              report.scores.size(), tau);

  // Machine-readable report for CI: the scores fingerprint must be
  // identical whichever lane width dispatched.
  const std::string json_path = opt.get("json", "");
  if (!json_path.empty()) {
    telemetry::RunReport rep;
    rep.tool = "database_filter";
    rep.config["entries"] = std::to_string(report.scores.size());
    rep.config["tau"] = std::to_string(tau);
    rep.config["width_requested"] = width_name;
    rep.config["width_resolved"] = sw::lane_width_name(resolved);
    rep.config["hits"] = std::to_string(report.hits.size());
    rep.config["scores_fnv"] = std::to_string(
        util::fnv1a_span<std::uint32_t>(report.scores));
    telemetry::RunReportRow row;
    row.impl = std::string("CPU bitwise-") + sw::lane_width_name(resolved);
    row.pairs = report.scores.size();
    row.m = m;
    row.n = n;
    row.stages_ms = {{"W2B", report.bpbc.w2b_ms},
                     {"SWA", report.bpbc.swa_ms},
                     {"B2W", report.bpbc.b2w_ms}};
    row.total_ms = report.bpbc.total_ms() + report.traceback_ms;
    rep.rows.push_back(row);
    if (util::Status s = telemetry::write_run_report(rep, json_path);
        !s.ok()) {
      std::fprintf(stderr, "run report: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("Run report written to %s\n", json_path.c_str());
  }
  for (std::size_t h = 0; h < report.hits.size() && h < 5; ++h) {
    const auto& hit = report.hits[h];
    std::printf("\nentry #%zu  score %u  region y[%zu..%zu)\n", hit.index,
                hit.bpbc_score, hit.detail.y_begin, hit.detail.y_end);
    std::printf("  %s\n  %s\n  %s\n", hit.detail.x_row.c_str(),
                hit.detail.mid_row.c_str(), hit.detail.y_row.c_str());
  }
  if (report.hits.size() > 5) {
    std::printf("\n(%zu more hits not shown)\n", report.hits.size() - 5);
  }
  return 0;
}
