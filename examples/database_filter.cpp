// Database screening — the workload the paper's introduction motivates:
// a query motif is screened against a database of sequences; the BPBC
// pass computes every pair's maximum alignment score, and only pairs
// reaching the threshold tau get the expensive detailed alignment
// (paper §III).
//
//   ./database_filter [--entries=N] [--tau=T] [--gpu] [--fasta=path]
//                     [--width=32|64|128|256|512|scalar-wide|auto]
//                     [--backend=bpbc|striped|wordwise-naive|auto]
//                     [--json=path] [--db=path]
//                     [--db-flip-shard=K] [--db-fault-seed=S]
//
// With --fasta, database entries are read from a FASTA file (all records
// must share one length); otherwise a synthetic database with planted
// homologs is generated. --width picks the BPBC lane width (default auto:
// widest profitable for this CPU; SWBPBC_FORCE_LANE_WIDTH overrides).
// --json writes a RunReport whose config carries an FNV fingerprint of
// the score vector — scores are bit-identical across widths, so CI diffs
// the fingerprint across the dispatch matrix.
//
// --backend picks the host engine (default auto: the measured cost model
// of sw/dispatch.hpp chooses between the BPBC and striped-SIMD kernels;
// SWBPBC_FORCE_BACKEND overrides). Scores are bit-identical whichever
// engine runs, so the same scores_fnv gate covers the backend matrix.
// Incompatible with --db (the store serves the BPBC kernels).
//
// With --db, SWA reads the pre-transposed planes from the store that
// examples/database_build wrote (mmap, zero-copy) instead of transposing
// the database in memory — only the query side pays W2B. The reader
// verifies the store matches this run's sequences (content fingerprint)
// and checksums each shard on first touch; --db-flip-shard=K attaches an
// IO-layer fault injector that flips bytes of shard K in the private
// mapping (the file is untouched), so the run demonstrates quarantine +
// re-ingest: scores stay bit-identical and the report counts exactly one
// quarantined shard.
#include <cstdio>
#include <fstream>
#include <optional>

#include "db/fault.hpp"
#include "db/reader.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/fasta.hpp"
#include "encoding/random.hpp"
#include "sw/config.hpp"
#include "sw/pipeline.hpp"
#include "telemetry/run_report.hpp"
#include "util/checksum.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const auto entries =
      static_cast<std::size_t>(opt.get_int("entries", 256));
  const std::size_t m = 32, n = 512;

  util::Xoshiro256 rng(7);
  const auto query = encoding::random_sequence(rng, m);

  std::vector<encoding::Sequence> database;
  const std::string fasta_path = opt.get("fasta", "");
  if (!fasta_path.empty()) {
    std::ifstream in(fasta_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", fasta_path.c_str());
      return 1;
    }
    for (auto& rec : encoding::read_fasta(in))
      database.push_back(std::move(rec.sequence));
    std::printf("loaded %zu database entries from %s\n", database.size(),
                fasta_path.c_str());
  } else {
    database = encoding::random_sequences(rng, entries, n);
    // Plant degraded copies of the query in ~6%% of the entries.
    std::size_t planted = 0;
    for (std::size_t k = 0; k < database.size(); k += 17) {
      const auto noisy = encoding::mutate(query, 0.1, rng);
      encoding::plant_motif(database[k], noisy,
                            rng.below(n - m));
      ++planted;
    }
    std::printf("synthetic database: %zu entries of length %zu, "
                "%zu planted homologs\n", database.size(), n, planted);
  }

  const std::vector<encoding::Sequence> queries(database.size(), query);
  const auto tau = static_cast<std::uint32_t>(
      opt.get_int("tau", static_cast<std::int64_t>(2 * m) * 3 / 4));

  const std::string width_name = opt.get("width", "auto");
  const auto width = sw::parse_lane_width(width_name);
  if (!width) {
    std::fprintf(stderr, "unknown --width=%s\n", width_name.c_str());
    return 1;
  }
  const sw::LaneWidth resolved = sw::resolve_lane_width(*width);
  std::printf("lane width: %s (requested %s)\n", sw::lane_width_name(resolved),
              width_name.c_str());

  const std::string backend_name = opt.get("backend", "auto");
  if (!sw::parse_backend_choice(backend_name)) {
    std::fprintf(stderr,
                 "unknown --backend=%s (expected "
                 "bpbc|striped|wordwise-naive|auto)\n",
                 backend_name.c_str());
    return 1;
  }

  if (opt.get_bool("gpu", false)) {
    // Same screening pass through the simulated-GPU pipeline (§V).
    const auto result = device::gpu_bpbc_max_scores(
        queries, database, {2, 1, 1}, *width);
    std::size_t hits = 0;
    for (auto sc : result.scores) hits += sc >= tau ? 1 : 0;
    std::printf("[device] H2G %.2fms W2B %.2fms SWA %.2fms B2W %.2fms "
                "G2H %.2fms -> %zu hits >= %u\n",
                result.timings.h2g_ms, result.timings.w2b_ms,
                result.timings.swa_ms, result.timings.b2w_ms,
                result.timings.g2h_ms, hits, tau);
    return 0;
  }

  // Pre-transposed store, optionally with injected faults (drill mode).
  const std::string db_path = opt.get("db", "");
  std::optional<db::FaultInjector> injector;
  std::optional<db::Reader> reader;
  if (!db_path.empty()) {
    db::ReaderOptions ropt;
    const std::int64_t flip_shard = opt.get_int("db-flip-shard", -1);
    if (flip_shard >= 0) {
      db::FaultConfig fc;
      fc.seed = static_cast<std::uint64_t>(opt.get_int("db-fault-seed", 42));
      fc.shard_flip_probability = 1.0;
      fc.target_shard = flip_shard;
      injector.emplace(fc);
      ropt.fault = &*injector;
      std::printf("fault injector armed: flipping mapped bytes of shard "
                  "%lld (seed %llu; file untouched)\n",
                  static_cast<long long>(flip_shard),
                  static_cast<unsigned long long>(fc.seed));
    }
    auto opened = db::Reader::open(db_path, ropt);
    if (!opened.has_value()) {
      // Surface the typed failure (kInternal for a missing/unreadable
      // path, kDbCorrupt / kDbMismatch for a damaged or foreign store)
      // plus a hint — a bad --db is almost always a path typo or a store
      // that was never built.
      std::fprintf(stderr, "cannot open database store %s: %s\n",
                   db_path.c_str(), opened.status().to_string().c_str());
      std::fprintf(stderr,
                   "hint: --db expects a store written by "
                   "examples/database_build (e.g. "
                   "./database_build --out=%s --entries=%zu); check the "
                   "path, or rebuild the store if this library version or "
                   "the database contents changed\n",
                   db_path.c_str(), entries);
      return 2;
    }
    reader.emplace(std::move(*opened));
    std::printf("store %s: %zu entries x %zu, %zu shards (mmap zero-copy)\n",
                db_path.c_str(), reader->entry_count(),
                reader->entry_length(), reader->shard_count());
  }

  sw::ScoringConfig scoring;
  scoring.params = {2, 1, 1};
  scoring.threshold = tau;
  scoring.width = *width;
  scoring.mode = bulk::Mode::kParallel;
  scoring.backend_name = backend_name;
  if (reader) scoring.database = &*reader;
  const auto config = sw::ScreenSpecBuilder().scoring(scoring).build();
  if (!config) {
    std::fprintf(stderr, "bad screen config: %s\n",
                 config.status().to_string().c_str());
    return 1;
  }
  const auto screened = sw::try_screen(queries, database, *config);
  if (!screened.has_value()) {
    // Typed rejection: a corrupt or mismatched store is refused up front
    // (kDbCorrupt / kDbMismatch), never screened against.
    std::fprintf(stderr, "screen rejected: %s\n",
                 screened.status().to_string().c_str());
    return 1;
  }
  const sw::ScreenReport& report = *screened;

  std::printf("BPBC filter: W2B %.2fms, SWA %.2fms, B2W %.2fms; "
              "traceback of %zu hits: %.2fms\n",
              report.bpbc.w2b_ms, report.bpbc.swa_ms, report.bpbc.b2w_ms,
              report.hits.size(), report.traceback_ms);
  std::printf("%zu / %zu entries pass tau = %u\n", report.hits.size(),
              report.scores.size(), tau);
  if (reader) {
    const auto& rel = report.reliability;
    std::printf("store: %llu shards served zero-copy, %llu quarantined, "
                "%llu pairs re-ingested, %llu pairs in-memory fallback\n",
                static_cast<unsigned long long>(rel.db_shards_served),
                static_cast<unsigned long long>(rel.db_shards_quarantined),
                static_cast<unsigned long long>(rel.db_pairs_reingested),
                static_cast<unsigned long long>(rel.db_pairs_fallback));
  }

  // Machine-readable report for CI: the scores fingerprint must be
  // identical whichever lane width dispatched.
  const std::string json_path = opt.get("json", "");
  if (!json_path.empty()) {
    telemetry::RunReport rep;
    rep.tool = "database_filter";
    rep.config["entries"] = std::to_string(report.scores.size());
    rep.config["tau"] = std::to_string(tau);
    rep.config["width_requested"] = width_name;
    rep.config["width_resolved"] = sw::lane_width_name(resolved);
    rep.config["backend_requested"] = backend_name;
    rep.config["hits"] = std::to_string(report.hits.size());
    rep.config["scores_fnv"] = std::to_string(
        util::fnv1a_span<std::uint32_t>(report.scores));
    if (reader) {
      const auto& rel = report.reliability;
      rep.config["db"] = db_path;
      rep.config["db_shards_served"] = std::to_string(rel.db_shards_served);
      rep.config["db_shards_quarantined"] =
          std::to_string(rel.db_shards_quarantined);
      rep.config["db_pairs_reingested"] =
          std::to_string(rel.db_pairs_reingested);
      rep.config["db_pairs_fallback"] =
          std::to_string(rel.db_pairs_fallback);
    }
    telemetry::RunReportRow row;
    row.impl = std::string("CPU bitwise-") + sw::lane_width_name(resolved);
    row.pairs = report.scores.size();
    row.m = m;
    row.n = n;
    row.stages_ms = {{"W2B", report.bpbc.w2b_ms},
                     {"SWA", report.bpbc.swa_ms},
                     {"B2W", report.bpbc.b2w_ms}};
    row.total_ms = report.bpbc.total_ms() + report.traceback_ms;
    rep.rows.push_back(row);
    if (util::Status s = telemetry::write_run_report(rep, json_path);
        !s.ok()) {
      std::fprintf(stderr, "run report: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("Run report written to %s\n", json_path.c_str());
  }
  for (std::size_t h = 0; h < report.hits.size() && h < 5; ++h) {
    const auto& hit = report.hits[h];
    std::printf("\nentry #%zu  score %u  region y[%zu..%zu)\n", hit.index,
                hit.bpbc_score, hit.detail.y_begin, hit.detail.y_end);
    std::printf("  %s\n  %s\n  %s\n", hit.detail.x_row.c_str(),
                hit.detail.mid_row.c_str(), hit.detail.y_row.c_str());
  }
  if (report.hits.size() > 5) {
    std::printf("\n(%zu more hits not shown)\n", report.hits.size() - 5);
  }
  return 0;
}
