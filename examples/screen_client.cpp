// Client for the screening daemon (screen_serve): generates a
// deterministic workload, submits it, and verifies the daemon's scores
// bit-for-bit against a direct in-process sw::screen of the same pairs.
//
//   ./screen_client --socket=/tmp/sw.sock --requests=8 --pairs=16
//   ./screen_client --socket=... --verify           # bit-identity check
//   ./screen_client --socket=... --flood            # overload drill
//   ./screen_client --socket=... --trace=run.json   # merged trace export
//   ./screen_client --socket=... --requests=0 --stats-out=report.json
//
// Observability: --trace enables a client-side telemetry session, stamps
// every request with one deterministic trace id (propagated to the
// daemon in the request frame), fetches the daemon's span ring after the
// workload, and writes ONE Chrome/Perfetto trace holding both sides —
// the client.screen/client.exchange spans and the server's admission /
// queue-wait / compute / engine-stage spans, all carrying the same
// "trace_id" arg. --stats-out scrapes the daemon's live RunReport JSON
// (a kStatRequest frame) to a file; with --requests=0 that is the whole
// run, so a collector can scrape a busy daemon from the side.
//
// Two modes:
//   * sequential (default) — each request runs the full ScreenClient
//     reliability loop: jittered-backoff retries through torn frames,
//     daemon crashes/restarts, and kOverloaded/kQuotaExceeded rejections
//     (honoring the server's retry-after hint), always with the same
//     idempotency id so a recovered daemon serves the journaled scores.
//   * --flood — all requests are written before any response is read
//     (one connection each, no retries), so the daemon's admission queue
//     actually fills: the tail is shed with typed rejections. The tally
//     line reports what came back.

#include <sys/socket.h>
#include <sys/un.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "encoding/random.hpp"
#include "service/client.hpp"
#include "service/frame.hpp"
#include "sw/pipeline.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/io.hpp"
#include "util/options.hpp"
#include "util/signal.hpp"

using namespace swbpbc;

namespace {

// The daemon's scoring rules; must match screen_serve's.
constexpr sw::ScoreParams kParams{2, 1, 1};

service::ScreenRequest make_request(const std::string& prefix,
                                    const std::string& tenant,
                                    std::size_t index, std::uint64_t seed,
                                    std::size_t pairs, std::size_t m,
                                    std::size_t n, double budget_ms,
                                    std::uint64_t trace_id,
                                    std::uint8_t backend_hint) {
  service::ScreenRequest request;
  request.id = prefix + "-" + std::to_string(index);
  request.tenant = tenant;
  request.deadline_budget_ms = budget_ms;
  request.trace_id = trace_id;
  request.backend_hint = backend_hint;
  // Per-request stream: the workload is a pure function of (seed, index),
  // independent of how many requests came before.
  util::Xoshiro256 rng(seed + index * 0x9e3779b97f4a7c15ULL);
  request.xs = encoding::random_sequences(rng, pairs, m);
  request.ys = encoding::random_sequences(rng, pairs, n);
  return request;
}

/// Direct in-process reference: what the daemon should have answered.
std::vector<std::uint32_t> reference_scores(
    const service::ScreenRequest& request) {
  sw::ScreenConfig config;
  config.params = kParams;
  config.width = sw::LaneWidth::k64;
  config.traceback = false;
  config.threshold = ~std::uint32_t{0};
  return sw::screen(request.xs, request.ys, config).scores;
}

util::Expected<util::UniqueFd> connect_uds(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    return util::Status::invalid_input("bad socket path '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  util::UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid())
    return util::Status::internal(std::string("socket(): ") +
                                  std::strerror(errno));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    return util::Status::internal(std::string("connect(): ") +
                                  std::strerror(errno));
  return fd;
}

struct Tally {
  unsigned ok = 0, overloaded = 0, quota = 0, deadline = 0, other = 0;

  void count(util::ErrorCode code) {
    switch (code) {
      case util::ErrorCode::kOk: ++ok; break;
      case util::ErrorCode::kOverloaded: ++overloaded; break;
      case util::ErrorCode::kQuotaExceeded: ++quota; break;
      case util::ErrorCode::kDeadlineExceeded: ++deadline; break;
      default: ++other; break;
    }
  }

  void print() const {
    std::printf("codes: ok=%u overloaded=%u quota=%u deadline=%u other=%u\n",
                ok, overloaded, quota, deadline, other);
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const std::string socket_path = opt.get("socket", "screen_serve.sock");
  const std::string tenant = opt.get("tenant", "default");
  const std::string prefix = opt.get("id-prefix", tenant);
  const auto requests = static_cast<std::size_t>(opt.get_int("requests", 8));
  const auto pairs = static_cast<std::size_t>(opt.get_int("pairs", 16));
  const auto m = static_cast<std::size_t>(opt.get_int("m", 16));
  const auto n = static_cast<std::size_t>(opt.get_int("n", 48));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 7));
  const double budget_ms = opt.get_double("deadline-budget-ms", 0.0);
  const bool verify = opt.get_bool("verify", false);
  const bool flood = opt.get_bool("flood", false);
  const std::string trace_path = opt.get("trace", "");
  const std::string stats_out = opt.get("stats-out", "");
  // Advisory host-engine hint carried in the request trailer (tag 3):
  // empty = unhinted, the daemon decides. Scores are bit-identical
  // whichever engine the daemon runs, so --verify stays valid.
  const std::string backend_name = opt.get("backend", "");
  std::uint8_t backend_hint = 0;
  if (!backend_name.empty()) {
    const auto choice = sw::parse_backend_choice(backend_name);
    if (!choice.has_value()) {
      std::fprintf(stderr,
                   "screen_client: unknown --backend=%s (expected "
                   "bpbc|striped|wordwise-naive|auto)\n",
                   backend_name.c_str());
      return 2;
    }
    backend_hint = static_cast<std::uint8_t>(static_cast<int>(*choice) + 1);
  }

  util::CancellationToken cancel;
  if (util::Status s = util::install_cancel_on_signals(cancel); !s.ok()) {
    std::fprintf(stderr, "screen_client: %s\n", s.to_string().c_str());
    return 1;
  }

  // One deterministic trace id for the whole run (a pure function of the
  // seed, nonzero by construction): every request carries it to the
  // daemon, so the merged export reads as one request lifecycle even
  // across retries and batches.
  const std::uint64_t trace_id =
      trace_path.empty()
          ? 0
          : (seed * 0x9e3779b97f4a7c15ULL) | 0x1ULL;

  telemetry::TelemetryConfig telemetry_config;
  telemetry_config.enabled = !trace_path.empty();
  telemetry::Telemetry session(telemetry_config);
  if (session.enabled())
    session.tracer()->set_track_name(telemetry::kTrackClient, "client");

  Tally tally;
  bool verified = true;
  unsigned transport_errors = 0;

  if (flood) {
    // Write everything first so the admission queue genuinely fills.
    std::vector<service::ScreenRequest> sent;
    std::vector<util::UniqueFd> fds;
    for (std::size_t k = 0; k < requests; ++k) {
      service::ScreenRequest request = make_request(
          prefix, tenant, k, seed, pairs, m, n, budget_ms, trace_id,
          backend_hint);
      auto fd = connect_uds(socket_path);
      if (!fd.has_value()) {
        std::fprintf(stderr, "screen_client: %s\n",
                     fd.status().to_string().c_str());
        return 1;
      }
      const auto payload = service::encode_request(request);
      if (util::Status s = service::write_frame(
              fd->get(), service::FrameType::kScreenRequest, payload);
          !s.ok()) {
        std::fprintf(stderr, "screen_client: %s\n", s.to_string().c_str());
        return 1;
      }
      sent.push_back(std::move(request));
      fds.push_back(std::move(fd).value());
    }
    for (std::size_t k = 0; k < requests; ++k) {
      auto frame = service::read_frame(fds[k].get());
      if (!frame.has_value() || !frame->has_value()) {
        ++transport_errors;
        continue;
      }
      auto response = service::decode_response((*frame)->payload);
      if (!response.has_value()) {
        ++transport_errors;
        continue;
      }
      tally.count(response->code);
      if (verify && response->code == util::ErrorCode::kOk &&
          response->scores != reference_scores(sent[k]))
        verified = false;
    }
  } else {
    service::ClientConfig client_config;
    client_config.socket_path = socket_path;
    client_config.backoff.initial_ms = opt.get_double("retry-initial-ms", 5.0);
    client_config.backoff.max_ms = opt.get_double("retry-max-ms", 500.0);
    client_config.backoff.max_attempts =
        static_cast<unsigned>(opt.get_int("retry-max-attempts", 10));
    client_config.backoff_seed = seed ^ 0xc1ee47ULL;
    client_config.cancel = &cancel;
    client_config.telemetry = session.sink();
    service::ScreenClient client(client_config);
    if (util::Status s = client.wait_ready(); !s.ok()) {
      std::fprintf(stderr, "screen_client: %s\n", s.to_string().c_str());
      return 1;
    }
    for (std::size_t k = 0; k < requests; ++k) {
      const service::ScreenRequest request = make_request(
          prefix, tenant, k, seed, pairs, m, n, budget_ms, trace_id,
          backend_hint);
      auto response = client.screen(request);
      if (!response.has_value()) {
        std::fprintf(stderr, "screen_client: request %s failed: %s\n",
                     request.id.c_str(),
                     response.status().to_string().c_str());
        if (response.status().code() == util::ErrorCode::kCancelled) return 130;
        ++transport_errors;
        continue;
      }
      tally.count(response->code);
      if (verify && response->code == util::ErrorCode::kOk &&
          response->scores != reference_scores(request))
        verified = false;
    }
    const service::ClientCounters& counters = client.counters();
    std::printf("retries: attempts=%llu transport=%llu overload=%llu "
                "quota=%llu sleeps=%llu\n",
                static_cast<unsigned long long>(counters.attempts),
                static_cast<unsigned long long>(counters.transport_faults),
                static_cast<unsigned long long>(counters.overload_rejections),
                static_cast<unsigned long long>(counters.quota_rejections),
                static_cast<unsigned long long>(counters.backoff_sleeps));
  }

  if (!stats_out.empty() || !trace_path.empty()) {
    service::ClientConfig scrape_config;
    scrape_config.socket_path = socket_path;
    scrape_config.backoff_seed = seed ^ 0x5c4a9eULL;
    scrape_config.cancel = &cancel;
    service::ScreenClient scraper(scrape_config);
    if (util::Status s = scraper.wait_ready(); !s.ok()) {
      std::fprintf(stderr, "screen_client: %s\n", s.to_string().c_str());
      return 1;
    }
    if (!stats_out.empty()) {
      auto report = scraper.stats();
      if (!report.has_value()) {
        std::fprintf(stderr, "screen_client: stats scrape failed: %s\n",
                     report.status().to_string().c_str());
        return 1;
      }
      std::ofstream out(stats_out, std::ios::binary | std::ios::trunc);
      out << *report;
      out.flush();
      if (!out) {
        std::fprintf(stderr, "screen_client: cannot write %s\n",
                     stats_out.c_str());
        return 1;
      }
      std::printf("stats: written to %s (%zu bytes)\n", stats_out.c_str(),
                  report->size());
    }
    if (!trace_path.empty()) {
      // Merge the daemon's span ring into the client session and export
      // one trace. The dump owns its strings; the tracer's ring borrows
      // them, so the dump must stay alive until the write below is done.
      auto dump = scraper.fetch_trace();
      if (!dump.has_value()) {
        std::fprintf(stderr, "screen_client: trace scrape failed: %s\n",
                     dump.status().to_string().c_str());
        return 1;
      }
      telemetry::Tracer* tracer = session.tracer();
      for (const auto& [track, name] : dump->tracks)
        tracer->set_track_name(track, name);
      for (const service::TraceDump::Event& e : dump->events) {
        telemetry::TraceEvent ev;
        ev.name = e.name.c_str();
        ev.cat = e.cat.c_str();
        ev.ts_us = e.ts_us;
        ev.dur_us = e.dur_us;
        ev.track = e.track;
        ev.trace_id = e.trace_id;
        for (std::size_t i = 0; i < e.args.size() && i < 2; ++i) {
          ev.arg_names[i] = e.args[i].first.c_str();
          ev.arg_values[i] = e.args[i].second;
        }
        tracer->record(ev);
      }
      if (util::Status s = tracer->write_chrome_trace(trace_path); !s.ok()) {
        std::fprintf(stderr, "screen_client: %s\n", s.to_string().c_str());
        return 1;
      }
      std::printf("trace: written to %s (client + %zu server events, "
                  "trace_id 0x%016llx)\n",
                  trace_path.c_str(), dump->events.size(),
                  static_cast<unsigned long long>(trace_id));
      if (dump->dropped != 0)
        std::printf("trace: server ring dropped %llu events\n",
                    static_cast<unsigned long long>(dump->dropped));
    }
  }

  tally.print();
  if (verify)
    std::printf("verify: %s\n", verified ? "OK" : "MISMATCH");
  if (transport_errors != 0)
    std::printf("transport_errors: %u\n", transport_errors);
  if (!verified) return 1;
  if (!flood && (tally.other != 0 || transport_errors != 0)) return 1;
  return 0;
}
