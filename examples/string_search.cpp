// Section II demo: exact and approximate BPBC string matching. 32 probe
// patterns are searched in 32 texts simultaneously — every bit lane is an
// independent (pattern, text) pair, so one pass over the text answers all
// 32 queries, including the paper's own 4-instance worked example.
//
//   ./string_search [--k=2]
#include <cstdio>

#include "encoding/batch.hpp"
#include "encoding/random.hpp"
#include "strmatch/approx.hpp"
#include "strmatch/bpbc_match.hpp"
#include "strmatch/exact.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;
  using encoding::sequence_from_string;

  util::Options opt(argc, argv);
  const auto k = static_cast<std::uint32_t>(opt.get_int("k", 2));

  // --- The paper's worked example (first 4 lanes) -------------------------
  std::vector<encoding::Sequence> xs = {
      sequence_from_string("ATCGA"), sequence_from_string("TCGAC"),
      sequence_from_string("AAAAA"), sequence_from_string("TTTTT")};
  std::vector<encoding::Sequence> ys = {
      sequence_from_string("AATCGACA"), sequence_from_string("AATCGACA"),
      sequence_from_string("AAAAAAAA"), sequence_from_string("AATTTTTT")};
  // Fill the remaining 28 lanes with random pairs (some with planted
  // occurrences).
  util::Xoshiro256 rng(606);
  while (xs.size() < 32) {
    xs.push_back(encoding::random_sequence(rng, 5));
    auto y = encoding::random_sequence(rng, 8);
    if (xs.size() % 3 == 0) encoding::plant_motif(y, xs.back(), 2);
    ys.push_back(std::move(y));
  }

  const auto bx = encoding::transpose_strings<std::uint32_t>(xs);
  const auto by = encoding::transpose_strings<std::uint32_t>(ys);
  const auto flags =
      strmatch::bpbc_match_flags<std::uint32_t>(bx.groups[0], by.groups[0]);

  std::printf("exact matching, 32 pattern/text pairs in one pass:\n");
  for (std::size_t lane = 0; lane < 8; ++lane) {
    std::printf("  lane %2zu  %s in %s  ->", lane,
                encoding::to_string(xs[lane]).c_str(),
                encoding::to_string(ys[lane]).c_str());
    bool any = false;
    for (std::size_t j = 0; j < flags.size(); ++j) {
      if (((flags[j] >> lane) & 1u) == 0) {
        std::printf(" %zu", j);
        any = true;
      }
    }
    std::printf(any ? "\n" : " (no match)\n");
  }

  // --- Approximate matching (Hamming distance <= k) -----------------------
  std::printf("\napproximate matching with k = %u:\n", k);
  const auto masks =
      strmatch::bpbc_approx_match<std::uint32_t>(bx.groups[0], by.groups[0],
                                                 k);
  for (std::size_t lane = 0; lane < 8; ++lane) {
    std::printf("  lane %2zu ->", lane);
    bool any = false;
    for (std::size_t j = 0; j < masks.size(); ++j) {
      if ((masks[j] >> lane) & 1u) {
        std::printf(" %zu", j);
        any = true;
      }
    }
    std::printf(any ? "\n" : " (none)\n");
  }

  // Cross-check one lane against the scalar reference.
  const auto scalar = strmatch::find_occurrences(xs[0], ys[0]);
  std::printf("\nscalar check, lane 0 exact occurrences:");
  for (auto j : scalar) std::printf(" %zu", j);
  std::printf("\n");
  return 0;
}
