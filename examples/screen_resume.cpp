// Checkpoint/resume walkthrough: a long screening run is killed mid-flight
// by a wall-clock deadline, its completed chunks already persisted to a
// checkpoint stream; a second invocation resumes from the stream, skips the
// finished chunks, and ends bit-identical to a never-interrupted run.
//
//   ./screen_resume                       # kill via a ~0.5 ms deadline
//   ./screen_resume --deadline-ms=1 --count=4096 --chunk=128
//   ./screen_resume --kill-after-chunks=3 # deterministic kill point
//
// The checkpoint stream is versioned, fingerprinted against the batch and
// chunking, and checksummed per record — a stale or corrupt stream is
// rejected with a typed error instead of resuming garbage.

#include <cstdio>
#include <vector>

#include "encoding/random.hpp"
#include "sw/pipeline.hpp"
#include "util/cancel.hpp"
#include "util/options.hpp"
#include "util/signal.hpp"

using namespace swbpbc;

namespace {

std::size_t completed_chunks(const sw::ScreenReport& report) {
  std::size_t done = 0;
  for (const sw::ChunkOutcome& c : report.chunks)
    if (c.completed) ++done;
  return done;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const auto count = static_cast<std::size_t>(opt.get_int("count", 2048));
  const auto m = static_cast<std::size_t>(opt.get_int("m", 16));
  const auto n = static_cast<std::size_t>(opt.get_int("n", 48));
  const auto chunk = static_cast<std::size_t>(opt.get_int("chunk", 128));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 7));
  const double deadline_ms = opt.get_double("deadline-ms", 0.5);
  const auto kill_after =
      static_cast<std::size_t>(opt.get_int("kill-after-chunks", 0));
  const char* ckpt = "screen_resume.ckpt";

  util::Xoshiro256 rng(seed);
  const auto xs = encoding::random_sequences(rng, count, m);
  const auto ys = encoding::random_sequences(rng, count, n);

  // SIGINT/SIGTERM stop the run cooperatively at the next chunk boundary:
  // completed chunks are already flushed to the checkpoint stream, so a
  // later invocation resumes them. A second signal exits immediately.
  util::CancellationToken sig_token;
  if (util::Status s = util::install_cancel_on_signals(sig_token); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  sw::ScreenConfig base;
  base.params = {2, 1, 1};
  base.threshold = 24;
  base.width = sw::LaneWidth::k64;
  base.chunk_pairs = chunk;
  const std::size_t n_chunks = (count + chunk - 1) / chunk;

  std::printf("screening %zu pairs (m=%zu, n=%zu) in %zu chunks of %zu\n\n",
              count, m, n, n_chunks, chunk);

  // --- the run we will compare against: never interrupted ---------------
  const sw::ScreenReport reference = sw::screen(xs, ys, base);

  // --- run 1: time-boxed, checkpointing every completed chunk -----------
  util::CancellationToken token;
  sw::ScreenConfig first = base;
  first.checkpoint_path = ckpt;
  if (kill_after > 0) {
    first.cancel = &token;
    first.progress = [&token, &sig_token, kill_after](
                         const sw::ChunkProgress& p) {
      if (sig_token.cancelled() || p.chunk + 1 >= kill_after) token.cancel();
    };
    std::printf("run 1: cancelling after %zu chunks, checkpointing to %s\n",
                kill_after, ckpt);
  } else {
    first.cancel = &sig_token;
    first.deadline = util::Deadline::after_ms(deadline_ms);
    std::printf("run 1: %.3g ms deadline, checkpointing to %s\n",
                deadline_ms, ckpt);
  }
  const sw::ScreenReport partial = sw::screen(xs, ys, first);
  std::printf("run 1 stopped: %s\n", partial.status.to_string().c_str());
  std::printf("run 1 completed %zu of %zu chunks before the kill\n\n",
              completed_chunks(partial), n_chunks);
  if (sig_token.cancelled()) {
    std::printf("interrupted by signal: %zu completed chunks are flushed "
                "to %s; rerun with --resume to pick them up (%s)\n",
                completed_chunks(partial), ckpt,
                partial.status.to_string().c_str());
    return 130;
  }

  // --- run 2: resume from the stream, finish the remainder --------------
  sw::ScreenConfig second = base;
  second.resume_path = ckpt;
  second.checkpoint_path = ckpt;
  second.cancel = &sig_token;
  std::size_t resumed = 0;
  second.progress = [&resumed](const sw::ChunkProgress& p) {
    if (p.resumed) ++resumed;
  };
  const auto result = sw::try_screen(xs, ys, second);
  if (!result.has_value()) {
    std::printf("resume rejected: %s\n", result.status().to_string().c_str());
    std::remove(ckpt);
    return 1;
  }
  const sw::ScreenReport& resumed_report = *result;
  if (sig_token.cancelled()) {
    std::printf("interrupted by signal: %zu completed chunks are flushed "
                "to %s (%s)\n",
                completed_chunks(resumed_report), ckpt,
                resumed_report.status.to_string().c_str());
    return 130;
  }
  std::printf("run 2 satisfied %zu chunks from the checkpoint, computed "
              "%zu fresh\n",
              resumed, n_chunks - resumed);

  // --- the acceptance check: resumed == uninterrupted, bit for bit ------
  bool identical = resumed_report.scores == reference.scores &&
                   resumed_report.hits.size() == reference.hits.size();
  if (identical) {
    for (std::size_t h = 0; h < reference.hits.size(); ++h) {
      identical = identical &&
                  resumed_report.hits[h].index == reference.hits[h].index &&
                  resumed_report.hits[h].bpbc_score ==
                      reference.hits[h].bpbc_score &&
                  resumed_report.hits[h].detail.score ==
                      reference.hits[h].detail.score;
    }
  }
  std::printf("scores: %zu, hits: %zu\n", resumed_report.scores.size(),
              resumed_report.hits.size());
  std::printf("%s\n", identical
                          ? "RESUME OK: identical to the uninterrupted run"
                          : "RESUME MISMATCH");
  std::remove(ckpt);
  return identical ? 0 : 1;
}
