// Builds the pre-transposed database store (src/db) from a FASTA file or
// the same synthetic database database_filter generates, so a filter run
// with --db serves exactly what a build run wrote.
//
//   ./database_build --out=seqs.swdb [--entries=N] [--fasta=path]
//                    [--json=path] [--corrupt-shard=K [--corrupt-bit=B]]
//
// The file is published atomically (temp + fsync + rename): a crash
// mid-build leaves the previous database or nothing, never a torn file.
// --corrupt-shard flips one payload bit of shard K *on disk* after the
// build — simulated bit rot for the corruption drill (the screening side
// must quarantine exactly that shard and still score bit-identically).
#include <cstdio>
#include <fstream>

#include "db/builder.hpp"
#include "db/format.hpp"
#include "db/reader.hpp"
#include "encoding/fasta.hpp"
#include "encoding/random.hpp"
#include "telemetry/run_report.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const std::string out = opt.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "usage: database_build --out=path "
                         "[--entries=N] [--fasta=path]\n");
    return 1;
  }
  const auto entries =
      static_cast<std::size_t>(opt.get_int("entries", 256));
  const std::size_t m = 32, n = 512;

  // Synthetic generation mirrors examples/database_filter.cpp exactly
  // (same seed, same draw order), so the two binaries agree on content —
  // the filter's fingerprint verification would reject any drift loudly.
  util::Xoshiro256 rng(7);
  const auto query = encoding::random_sequence(rng, m);

  std::vector<encoding::Sequence> database;
  const std::string fasta_path = opt.get("fasta", "");
  if (!fasta_path.empty()) {
    std::ifstream in(fasta_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", fasta_path.c_str());
      return 1;
    }
    for (auto& rec : encoding::read_fasta(in))
      database.push_back(std::move(rec.sequence));
    std::printf("loaded %zu database entries from %s\n", database.size(),
                fasta_path.c_str());
  } else {
    database = encoding::random_sequences(rng, entries, n);
    std::size_t planted = 0;
    for (std::size_t k = 0; k < database.size(); k += 17) {
      const auto noisy = encoding::mutate(query, 0.1, rng);
      encoding::plant_motif(database[k], noisy, rng.below(n - m));
      ++planted;
    }
    std::printf("synthetic database: %zu entries of length %zu, "
                "%zu planted homologs\n", database.size(), n, planted);
  }

  util::WallTimer timer;
  if (util::Status s = db::build_database(database, out); !s.ok()) {
    std::fprintf(stderr, "build failed: %s\n", s.to_string().c_str());
    return 1;
  }
  const double build_ms = timer.elapsed_ms();

  // Read the published file back so the numbers reported are the file's,
  // not the builder's intent.
  auto reader = db::Reader::open(out);
  if (!reader.has_value()) {
    std::fprintf(stderr, "re-open failed: %s\n",
                 reader.status().to_string().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu entries x %zu, %zu shards, "
              "content fnv %016llx, %.2f ms\n",
              out.c_str(), reader->entry_count(), reader->entry_length(),
              reader->shard_count(),
              static_cast<unsigned long long>(reader->content_fingerprint()),
              build_ms);

  const std::int64_t corrupt_shard = opt.get_int("corrupt-shard", -1);
  if (corrupt_shard >= 0) {
    const auto bit = static_cast<unsigned>(opt.get_int("corrupt-bit", 3));
    if (util::Status s = db::corrupt_shard_for_testing(
            out, static_cast<std::size_t>(corrupt_shard), /*byte_offset=*/17,
            bit);
        !s.ok()) {
      std::fprintf(stderr, "corrupt-shard failed: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("flipped bit %u of payload byte 17 in shard %lld "
                "(simulated on-disk bit rot)\n",
                bit, static_cast<long long>(corrupt_shard));
  }

  const std::string json_path = opt.get("json", "");
  if (!json_path.empty()) {
    telemetry::RunReport rep;
    rep.tool = "database_build";
    rep.config["out"] = out;
    rep.config["entries"] = std::to_string(reader->entry_count());
    rep.config["entry_length"] = std::to_string(reader->entry_length());
    rep.config["shards"] = std::to_string(reader->shard_count());
    rep.config["content_fnv"] =
        std::to_string(reader->content_fingerprint());
    telemetry::RunReportRow row;
    row.impl = "db-build";
    row.pairs = reader->entry_count();
    row.m = m;
    row.n = reader->entry_length();
    row.stages_ms = {{"build", build_ms}};
    row.total_ms = build_ms;
    rep.rows.push_back(row);
    if (util::Status s = telemetry::write_run_report(rep, json_path);
        !s.ok()) {
      std::fprintf(stderr, "run report: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("Run report written to %s\n", json_path.c_str());
  }
  return 0;
}
