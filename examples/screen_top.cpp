// Live dashboard for the screening daemon: scrapes the kStatRequest
// endpoint on an interval and renders occupancy, throughput, batch fill,
// and the per-tenant SLO windows as a refreshing terminal view.
//
//   ./screen_top --socket=/tmp/sw.sock                # refresh loop
//   ./screen_top --socket=... --once                  # one snapshot
//   ./screen_top --socket=... --interval-ms=500
//
// Every frame is one whole scrape — the daemon builds the RunReport
// atomically inside its poll loop, so the numbers in one frame are
// mutually consistent. Ctrl-C exits cleanly.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "telemetry/run_report.hpp"
#include "util/options.hpp"
#include "util/signal.hpp"

using namespace swbpbc;

namespace {

std::uint64_t counter_of(const telemetry::MetricsRegistry::Snapshot& m,
                         const std::string& name) {
  const auto it = m.counters.find(name);
  return it == m.counters.end() ? 0 : it->second;
}

double gauge_of(const telemetry::MetricsRegistry::Snapshot& m,
                const std::string& name) {
  const auto it = m.gauges.find(name);
  return it == m.gauges.end() ? 0.0 : it->second;
}

/// 20-char occupancy bar: [########------------]
std::string bar(double ratio) {
  if (ratio < 0.0) ratio = 0.0;
  if (ratio > 1.0) ratio = 1.0;
  const int filled = static_cast<int>(ratio * 20.0 + 0.5);
  std::string out = "[";
  for (int i = 0; i < 20; ++i) out += i < filled ? '#' : '-';
  out += ']';
  return out;
}

void render(const telemetry::RunReport& report, std::uint64_t frame) {
  const telemetry::MetricsRegistry::Snapshot& m = report.metrics;
  std::printf("screen_top — frame %" PRIu64 "  uptime %.1fs\n", frame,
              gauge_of(m, "service.uptime_ms") / 1e3);
  std::printf(
      "requests %-8" PRIu64 " admitted %-8" PRIu64 " completed %-8" PRIu64
      " cache_hits %-6" PRIu64 "\n",
      counter_of(m, "service.requests"), counter_of(m, "service.admitted"),
      counter_of(m, "service.completed"), counter_of(m, "service.cache_hits"));
  std::printf(
      "shed: overload %-6" PRIu64 " quota %-6" PRIu64 " deadline %-6" PRIu64
      " slow %-6" PRIu64 " protocol_errors %" PRIu64 "\n",
      counter_of(m, "service.rejected_overload"),
      counter_of(m, "service.rejected_quota"),
      counter_of(m, "service.shed_deadline"),
      counter_of(m, "service.slow_requests"),
      counter_of(m, "service.protocol_errors"));
  std::printf("queue    %s %5.1f%%  (%.0f requests, %.0f pairs)\n",
              bar(gauge_of(m, "service.occupancy.requests")).c_str(),
              gauge_of(m, "service.occupancy.requests") * 100.0,
              gauge_of(m, "service.queue.requests"),
              gauge_of(m, "service.queue.pairs"));
  std::printf("batches  %-8" PRIu64 " pairs_scored %-10" PRIu64
              " fill %.2f  scrapes %" PRIu64 "\n",
              counter_of(m, "service.batches"),
              counter_of(m, "service.pairs_scored"),
              gauge_of(m, "service.batch.fill_ratio"),
              counter_of(m, "service.stat_scrapes"));
  if (const std::uint64_t dropped =
          counter_of(m, "telemetry.trace.dropped");
      dropped != 0)
    std::printf("WARNING: trace ring dropped %" PRIu64 " events\n", dropped);

  // Per-tenant rows: admission ledger from the report rows, SLO
  // percentiles from the slo.<tenant>.* histograms.
  for (const telemetry::RunReportRow& row : report.rows) {
    if (row.impl.rfind("tenant:", 0) != 0) continue;
    const std::string tenant = row.impl.substr(7);
    std::printf("  %-12s pairs %-9" PRIu64 " gcups %6.2f shed_rate %.2f",
                tenant.c_str(), row.pairs, row.gcups,
                gauge_of(m, "service.tenant." + tenant + ".shed_rate"));
    const auto hist = m.histograms.find("slo." + tenant + ".total_ms");
    if (hist != m.histograms.end() && hist->second.count != 0)
      std::printf("  total_ms p50 %.2f p95 %.2f p99 %.2f (n=%" PRIu64 ")",
                  hist->second.percentile(50), hist->second.percentile(95),
                  hist->second.percentile(99), hist->second.count);
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const bool once = opt.get_bool("once", false);
  const double interval_ms = opt.get_double("interval-ms", 1000.0);

  util::CancellationToken cancel;
  if (util::Status s = util::install_cancel_on_signals(cancel); !s.ok()) {
    std::fprintf(stderr, "screen_top: %s\n", s.to_string().c_str());
    return 1;
  }

  service::ClientConfig config;
  config.socket_path = opt.get("socket", "screen_serve.sock");
  config.cancel = &cancel;
  service::ScreenClient client(config);
  if (util::Status s = client.wait_ready(); !s.ok()) {
    std::fprintf(stderr, "screen_top: %s\n", s.to_string().c_str());
    return 1;
  }

  std::uint64_t frame = 0;
  while (!cancel.cancelled()) {
    auto text = client.stats();
    if (!text.has_value()) {
      // A draining/restarting daemon mid-loop is not an error worth a
      // non-zero exit; report and stop.
      std::fprintf(stderr, "screen_top: scrape failed: %s\n",
                   text.status().to_string().c_str());
      return once ? 1 : 0;
    }
    auto report = telemetry::parse_run_report(*text);
    if (!report.has_value()) {
      std::fprintf(stderr, "screen_top: bad report: %s\n",
                   report.status().to_string().c_str());
      return 1;
    }
    if (!once && frame != 0) std::printf("\x1b[2J\x1b[H");
    render(*report, frame);
    ++frame;
    if (once) return 0;
    // Sleep in slices so Ctrl-C lands promptly.
    double left = interval_ms;
    while (left > 0.0 && !cancel.cancelled()) {
      const double slice = left < 50.0 ? left : 50.0;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slice));
      left -= slice;
    }
  }
  return 0;
}
