// Fault drill: hammer the device-simulator screening backend with seeded
// fault campaigns (bit flips, dropped phase syncs, stalled blocks, flipped
// copy words) and show the survivable pipeline detecting, quarantining,
// and recovering every corrupted lane. The batch streams through in
// bounded chunks with in-band stage integrity on, so detections are
// attributed to a (chunk, stage, block) and a retry resubmits one chunk,
// not the whole batch; the lane-level self-check remains the backstop.
// Every campaign must end with scores identical to the scalar reference
// and a balanced ReliabilityReport.
//
//   ./fault_drill --campaigns=100 --count=64 --m=8 --n=24 --chunk=16
//   ./fault_drill --flip=1e-3 --drop-sync=0.05 --stall=0.05 --copy-flip=2e-3
//   ./fault_drill --integrity=0     # lane self-check only, no stage checks
//   ./fault_drill --trace=drill.trace.json   # Chrome/Perfetto span trace
//
// Checkpoint/resume rides the same chunk boundaries — see
// examples/screen_resume.cpp for the kill-and-resume walkthrough.

#include <cstdio>
#include <vector>

#include "device/fault.hpp"
#include "device/sw_kernels.hpp"
#include "encoding/random.hpp"
#include "sw/pipeline.hpp"
#include "sw/scalar.hpp"
#include "telemetry/telemetry.hpp"
#include "util/options.hpp"
#include "util/signal.hpp"

using namespace swbpbc;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  const auto campaigns = static_cast<std::size_t>(opt.get_int("campaigns", 100));
  const auto count = static_cast<std::size_t>(opt.get_int("count", 64));
  const auto m = static_cast<std::size_t>(opt.get_int("m", 8));
  const auto n = static_cast<std::size_t>(opt.get_int("n", 24));
  const auto chunk = static_cast<std::size_t>(opt.get_int("chunk", 16));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));
  const bool integrity = opt.get_int("integrity", 1) != 0;
  const sw::ScoreParams params{2, 1, 1};

  // --trace=path: record every campaign's screen/chunk/device-stage/
  // quarantine spans into one Chrome-trace file (open in Perfetto).
  const std::string trace_path = opt.get("trace", "");
  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = !trace_path.empty();
  telemetry::Telemetry session(tcfg);

  device::FaultConfig fault;
  fault.flip_probability = opt.get_double("flip", 1e-3);
  fault.drop_sync_probability = opt.get_double("drop-sync", 0.05);
  fault.stall_probability = opt.get_double("stall", 0.05);
  fault.copy_flip_probability = opt.get_double("copy-flip", 2e-3);

  std::printf("fault drill: %zu campaigns, %zu pairs (m=%zu, n=%zu), "
              "chunks of %zu, stage integrity %s\n",
              campaigns, count, m, n, chunk, integrity ? "on" : "off");
  std::printf("  flip=%g  drop-sync=%g  stall=%g  copy-flip=%g\n\n",
              fault.flip_probability, fault.drop_sync_probability,
              fault.stall_probability, fault.copy_flip_probability);

  // SIGINT/SIGTERM stop the drill cooperatively: the in-flight campaign
  // unwinds at its next chunk boundary with a typed kCancelled, totals
  // for finished campaigns are printed, and the exit is clean (130). A
  // second signal exits immediately.
  util::CancellationToken sig_token;
  if (util::Status s = util::install_cancel_on_signals(sig_token); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  sw::ReliabilityReport totals;
  device::FaultLog fault_totals;
  std::size_t stage_hist[5] = {0, 0, 0, 0, 0};
  std::size_t clean_campaigns = 0, failed = 0;
  bool interrupted = false;
  for (std::size_t c = 0; c < campaigns && !interrupted; ++c) {
    util::Xoshiro256 rng(seed + c);
    const auto xs = encoding::random_sequences(rng, count, m);
    const auto ys = encoding::random_sequences(rng, count, n);

    fault.seed = seed * 1000003 + c;
    device::FaultInjector injector(fault);
    device::GpuRunOptions run;
    run.faults = &injector;
    run.watchdog_phases = m + n + 16;
    run.integrity.enabled = integrity;
    run.integrity.sample_every = 1;
    run.telemetry = session.sink();

    sw::ScreenConfig cfg;
    cfg.params = params;
    cfg.threshold = 12;
    cfg.width = sw::LaneWidth::k32;
    cfg.traceback = false;
    cfg.chunk_pairs = chunk;
    cfg.chunk_retry_limit = 3;
    cfg.chunk_backend =
        device::make_chunk_backend(params, sw::LaneWidth::k32, run);
    cfg.check.enabled = true;
    cfg.check.sample_every = 1;  // verify every lane against the scalar ref
    cfg.check.max_retries = 4;
    cfg.telemetry = session.sink();
    cfg.cancel = &sig_token;

    const auto result = sw::try_screen(xs, ys, cfg);
    if (result.has_value() &&
        result->status.code() == util::ErrorCode::kCancelled) {
      std::printf("campaign %3zu: interrupted by signal — %s\n", c,
                  result->status.to_string().c_str());
      interrupted = true;
      continue;
    }
    if (!result.has_value()) {
      std::printf("campaign %3zu: UNRECOVERED — %s\n", c,
                  result.status().to_string().c_str());
      ++failed;
      continue;
    }
    const sw::ScreenReport& report = *result;

    // Independent audit: every reported score must equal the scalar DP.
    std::size_t wrong = 0;
    for (std::size_t k = 0; k < count; ++k) {
      if (report.scores[k] != sw::max_score(xs[k], ys[k], params)) ++wrong;
    }
    if (wrong != 0 || !report.reliability.balanced()) ++failed;

    const device::FaultLog log = injector.log();
    if (log.total() == 0) ++clean_campaigns;
    fault_totals.bit_flips += log.bit_flips;
    fault_totals.syncs_dropped += log.syncs_dropped;
    fault_totals.watchdog_trips += log.watchdog_trips;
    totals.lanes_verified += report.reliability.lanes_verified;
    totals.mismatches_detected += report.reliability.mismatches_detected;
    totals.retry_attempts += report.reliability.retry_attempts;
    totals.lanes_recovered += report.reliability.lanes_recovered;
    totals.lanes_fell_back += report.reliability.lanes_fell_back;
    totals.integrity_checks += report.reliability.integrity_checks;
    totals.integrity_faults += report.reliability.integrity_faults;
    totals.chunk_retries += report.reliability.chunk_retries;
    totals.lanes_resubmitted += report.reliability.lanes_resubmitted;
    for (const sw::StageFault& f : report.reliability.stage_faults)
      ++stage_hist[static_cast<std::size_t>(f.stage)];

    if (log.total() > 0) {
      std::printf(
          "campaign %3zu: flips=%-4llu syncs_dropped=%-2llu stalls=%-2llu | %s%s\n",
          c, static_cast<unsigned long long>(log.bit_flips),
          static_cast<unsigned long long>(log.syncs_dropped),
          static_cast<unsigned long long>(log.watchdog_trips),
          report.reliability.summary().c_str(),
          wrong == 0 ? "" : "  ** SCORES WRONG **");
      for (const sw::StageFault& f : report.reliability.stage_faults) {
        if (f.block == sw::StageFault::kNoBlock) {
          std::printf("              detected in-band: chunk %zu, stage %s\n",
                      f.chunk, sw::stage_name(f.stage));
        } else {
          std::printf("              detected in-band: chunk %zu, stage %s, "
                      "block %zu\n",
                      f.chunk, sw::stage_name(f.stage), f.block);
        }
      }
    }
  }

  std::printf("\ninjected: %llu bit flips, %llu dropped syncs, %llu stalls "
              "(%zu campaigns fault-free)\n",
              static_cast<unsigned long long>(fault_totals.bit_flips),
              static_cast<unsigned long long>(fault_totals.syncs_dropped),
              static_cast<unsigned long long>(fault_totals.watchdog_trips),
              clean_campaigns);
  if (integrity) {
    std::printf("in-band detections by stage: H2G=%zu W2B=%zu SWA=%zu "
                "B2W=%zu G2H=%zu  (chunk retries=%llu, lanes "
                "resubmitted=%llu of %zu per retry)\n",
                stage_hist[0], stage_hist[1], stage_hist[2], stage_hist[3],
                stage_hist[4],
                static_cast<unsigned long long>(totals.chunk_retries),
                static_cast<unsigned long long>(totals.lanes_resubmitted),
                chunk);
  }
  if (session.enabled()) {
    if (util::Status s = session.tracer()->write_chrome_trace(trace_path);
        !s.ok()) {
      std::printf("trace write failed: %s\n", s.to_string().c_str());
    } else {
      std::printf("trace written to %s (%zu spans, %llu dropped)\n",
                  trace_path.c_str(), session.tracer()->size(),
                  static_cast<unsigned long long>(
                      session.tracer()->dropped()));
    }
  }
  std::printf("recovered: %s\n", totals.summary().c_str());
  if (interrupted) {
    std::printf("DRILL INTERRUPTED: stopped cleanly on signal (%s); "
                "finished campaigns reconciled\n",
                failed == 0 ? "no failures" : "with failures");
    return failed == 0 ? 130 : 1;
  }
  std::printf("%s\n", failed == 0
                          ? "DRILL PASSED: every lane reconciled with the "
                            "scalar reference"
                          : "DRILL FAILED");
  return failed == 0 ? 0 : 1;
}
