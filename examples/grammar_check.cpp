// Bulk CKY recognition (paper §I, ref [14]): 32 candidate strings are
// checked against a context-free grammar simultaneously — one DP pass
// answers all membership queries, one instance per bit lane.
//
//   ./grammar_check [--len=L]
#include <cstdio>
#include <random>

#include "cky/cky.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const auto len = static_cast<std::size_t>(opt.get_int("len", 16));

  const cky::Grammar grammar = cky::balanced_parentheses_grammar();
  std::mt19937 rng(2026);

  // Half balanced by construction, half uniformly random.
  std::vector<std::string> inputs;
  for (int k = 0; k < 32; ++k) {
    std::string s;
    if (k % 2 == 0) {
      std::size_t open = 0;
      while (s.size() < len) {
        const std::size_t remaining = len - s.size();
        if (open == 0 || (open < remaining && (rng() & 1) != 0)) {
          s.push_back('(');
          ++open;
        } else {
          s.push_back(')');
          --open;
        }
      }
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        s.push_back((rng() & 1) != 0 ? '(' : ')');
      }
    }
    inputs.push_back(std::move(s));
  }

  util::WallTimer timer;
  const std::uint32_t accept =
      cky::bpbc_cky_accepts<std::uint32_t>(grammar, inputs);
  const double bulk_ms = timer.elapsed_ms();

  timer.reset();
  std::uint32_t reference = 0;
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    if (cky::cky_accepts(grammar, inputs[k])) reference |= 1u << k;
  }
  const double scalar_ms = timer.elapsed_ms();

  std::printf("balanced-parentheses membership, 32 strings of length "
              "%zu:\n", len);
  for (std::size_t k = 0; k < 8; ++k) {
    std::printf("  %s  %s\n", inputs[k].c_str(),
                ((accept >> k) & 1u) != 0 ? "balanced" : "not balanced");
  }
  std::printf("  ... (24 more)\n");
  std::printf("bulk BPBC pass: %.3f ms; 32 scalar passes: %.3f ms "
              "(results %s)\n", bulk_ms, scalar_ms,
              accept == reference ? "agree" : "DISAGREE");
  return 0;
}
