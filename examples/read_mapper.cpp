// Read mapping demo: short sequencing reads (with simulated errors) are
// located on a reference genome. Each read is paired with a window of the
// reference; the BPBC pass scores all (read, window) pairs in bulk, and
// windows whose score clears the threshold are aligned in detail to
// recover the mapping position.
//
//   ./read_mapper [--reads=N] [--read-len=L] [--error-rate=R]
#include <cstdio>

#include "encoding/random.hpp"
#include "sw/pipeline.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const auto n_reads = static_cast<std::size_t>(opt.get_int("reads", 128));
  const auto read_len =
      static_cast<std::size_t>(opt.get_int("read-len", 48));
  const double error_rate = opt.get_double("error-rate", 0.03);
  const std::size_t window = 4 * read_len;

  // Reference genome and reads drawn from random positions with
  // sequencing errors.
  util::Xoshiro256 rng(99);
  const std::size_t genome_len = 1 << 16;
  const auto genome = encoding::random_sequence(rng, genome_len);

  std::vector<encoding::Sequence> reads, windows;
  std::vector<std::size_t> truth_offset;  // read position within its window
  for (std::size_t r = 0; r < n_reads; ++r) {
    const std::size_t pos = rng.below(genome_len - window);
    const std::size_t offset = rng.below(window - read_len);
    const encoding::Sequence fragment(
        genome.begin() + static_cast<std::ptrdiff_t>(pos + offset),
        genome.begin() +
            static_cast<std::ptrdiff_t>(pos + offset + read_len));
    reads.push_back(encoding::mutate(fragment, error_rate, rng));
    windows.emplace_back(
        genome.begin() + static_cast<std::ptrdiff_t>(pos),
        genome.begin() + static_cast<std::ptrdiff_t>(pos + window));
    truth_offset.push_back(offset);
  }

  // Accept a mapping when at least ~85% of the read aligns cleanly:
  // score >= 2 * L - penalty budget.
  sw::ScreenConfig config;
  config.params = {2, 1, 1};
  config.threshold =
      static_cast<std::uint32_t>(2 * read_len - (read_len / 4) * 3);
  config.mode = bulk::Mode::kParallel;
  const sw::ScreenReport report = sw::screen(reads, windows, config);

  std::size_t mapped = 0, placed_exact = 0;
  for (const sw::ScreenHit& hit : report.hits) {
    ++mapped;
    // The traceback's start in y is the recovered in-window position; a
    // local alignment may shave a mismatching prefix, so allow slack of
    // a few bases.
    const std::size_t recovered = hit.detail.y_begin;
    const std::size_t expected = truth_offset[hit.index];
    const std::size_t delta =
        recovered > expected ? recovered - expected : expected - recovered;
    if (delta <= 4) ++placed_exact;
  }
  std::printf("reads: %zu, mapped (score >= %u): %zu, placed within 4bp "
              "of the true offset: %zu\n",
              n_reads, config.threshold, mapped, placed_exact);
  std::printf("BPBC screening: %.2f ms total (%.2f SWA); traceback: %.2f "
              "ms for %zu hits\n",
              report.bpbc.total_ms(), report.bpbc.swa_ms,
              report.traceback_ms, report.hits.size());
  if (!report.hits.empty()) {
    const auto& h = report.hits.front();
    std::printf("\nexample mapping, read #%zu at window offset %zu:\n",
                h.index, h.detail.y_begin);
    std::printf("  %s\n  %s\n  %s\n", h.detail.x_row.c_str(),
                h.detail.mid_row.c_str(), h.detail.y_row.c_str());
  }
  return 0;
}
