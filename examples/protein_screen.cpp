// Protein screening with the generic epsilon-bit BPBC aligner: 20-symbol
// amino-acid alphabet (epsilon = 5 planes instead of DNA's 2).
//
//   ./protein_screen [--count=N]
#include <cstdio>

#include "encoding/alphabet.hpp"
#include "sw/generic.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const auto count = static_cast<std::size_t>(opt.get_int("count", 64));
  const std::size_t m = 24, n = 200;

  const encoding::Alphabet& aa = encoding::protein_alphabet();
  util::Xoshiro256 rng(314);
  const auto random_protein = [&](std::size_t len) {
    encoding::GenericSequence s(len);
    for (auto& c : s) c = static_cast<std::uint8_t>(rng.below(aa.size()));
    return s;
  };

  // One query motif against `count` random protein targets; a third of
  // the targets carry a degraded copy of the motif.
  const encoding::GenericSequence query = random_protein(m);
  std::vector<encoding::GenericSequence> queries(count, query);
  std::vector<encoding::GenericSequence> targets;
  std::size_t planted = 0;
  for (std::size_t k = 0; k < count; ++k) {
    auto t = random_protein(n);
    if (k % 3 == 0) {
      const std::size_t pos = rng.below(n - m);
      for (std::size_t i = 0; i < m; ++i) {
        // ~85% of motif residues survive.
        t[pos + i] = rng.below(100) < 85
                         ? query[i]
                         : static_cast<std::uint8_t>(rng.below(aa.size()));
      }
      ++planted;
    }
    targets.push_back(std::move(t));
  }

  const sw::ScoreParams params{2, 1, 1};
  util::WallTimer timer;
  const auto scores = sw::generic_bpbc_max_scores<std::uint64_t>(
      queries, targets, aa.bits(), params);
  const double ms = timer.elapsed_ms();

  const std::uint32_t tau = static_cast<std::uint32_t>(2 * m * 6 / 10);
  std::size_t hits = 0;
  for (std::size_t k = 0; k < count; ++k) {
    if (scores[k] >= tau) ++hits;
  }
  std::printf("query (%zu aa): %s\n", m, aa.decode(query).c_str());
  std::printf("screened %zu protein targets (epsilon = %u bit planes) in "
              "%.2f ms\n", count, aa.bits(), ms);
  std::printf("%zu targets reach tau = %u (%zu were planted)\n", hits, tau,
              planted);
  return 0;
}
