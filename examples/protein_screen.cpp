// Protein screening at full lane width: BLOSUM62 + affine (Gotoh) gaps
// as bulk bitwise computation over the 20-symbol amino-acid alphabet
// (epsilon = 5 bit planes), dispatched to the widest profitable lane
// word (64/128/256/512 lanes per word; SWBPBC_FORCE_LANE_WIDTH and
// --width override).
//
//   ./protein_screen [--count=N] [--width=auto|64|128|256|512|scalar-wide]
//   ./protein_screen --backend=striped     # Farrar striped SIMD instead
//                                          # of BPBC (--backend=auto lets
//                                          # the measured cost model pick)
//   ./protein_screen --linear              # linear gaps instead of affine
//   ./protein_screen --db=proteins.swdb    # serve targets from the
//                                          # pre-transposed store
//   ./protein_screen --json=report.json    # RunReport with scores_fnv
//                                          # (the CI dispatch-matrix gate)
//   ./protein_screen --trace=protein.trace.json   # Perfetto span timeline
//
// --backend picks the host engine (default auto; SWBPBC_FORCE_BACKEND
// overrides). The engines are bit-identical on every scheme, so the same
// scores_fnv fingerprint gates the backend matrix in CI. wordwise-naive
// is rejected here: the retired reference never grew substitution-matrix
// support.
//
// Every run cross-checks a sample of the screened scores against the
// scalar Gotoh reference, and --db additionally requires the store-served
// scores to be bit-identical to the in-memory batch.
#include <cstdio>
#include <cstdlib>

#include "db/builder.hpp"
#include "db/reader.hpp"
#include "encoding/alphabet.hpp"
#include "sw/dispatch.hpp"
#include "sw/lane.hpp"
#include "sw/scalar.hpp"
#include "sw/striped.hpp"
#include "sw/scheme_aligner.hpp"
#include "sw/scoring.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/checksum.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const auto count = static_cast<std::size_t>(opt.get_int("count", 256));
  const std::size_t m = 24, n = 200;

  const std::string width_name = opt.get("width", "auto");
  const auto width = sw::parse_lane_width(width_name);
  if (!width.has_value()) {
    std::fprintf(stderr, "unknown --width=%s\n", width_name.c_str());
    return 1;
  }

  const std::string backend_name = opt.get("backend", "auto");
  const auto backend = sw::parse_backend_choice(backend_name);
  if (!backend.has_value()) {
    std::fprintf(stderr,
                 "unknown --backend=%s (expected bpbc|striped|auto)\n",
                 backend_name.c_str());
    return 1;
  }

  // The full scoring model: BLOSUM62 substitution with affine gap costs
  // (open 11, extend 1 — the classic BLAST pairing), or --linear for a
  // single per-residue gap penalty through the same circuits.
  sw::ScoringScheme scheme;
  scheme.matrix = sw::blosum62();
  if (opt.has("linear")) {
    scheme.gap_model = sw::GapModel::kLinear;
    scheme.gap_open = 4;
  } else {
    scheme.gap_model = sw::GapModel::kAffine;
    scheme.gap_open = 11;
    scheme.gap_extend = 1;
  }

  const std::string trace_path = opt.get("trace", "");
  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = !trace_path.empty();
  tcfg.pool_spans = true;
  telemetry::Telemetry session(tcfg);
  telemetry::Tracer* const tr =
      session.enabled() ? session.tracer() : nullptr;

  const encoding::Alphabet& aa = scheme.alphabet();
  util::Xoshiro256 rng(314);
  const auto random_protein = [&](std::size_t len) {
    encoding::GenericSequence s(len);
    for (auto& c : s) c = static_cast<std::uint8_t>(rng.below(aa.size()));
    return s;
  };

  // One query motif against `count` random protein targets; a third of
  // the targets carry a degraded copy of the motif.
  telemetry::Span gen_span(tr, "generate", "example");
  gen_span.arg("targets", static_cast<std::int64_t>(count));
  const encoding::GenericSequence query = random_protein(m);
  std::vector<encoding::GenericSequence> queries(count, query);
  std::vector<encoding::GenericSequence> targets;
  std::size_t planted = 0;
  for (std::size_t k = 0; k < count; ++k) {
    auto t = random_protein(n);
    if (k % 3 == 0) {
      const std::size_t pos = rng.below(n - m);
      for (std::size_t i = 0; i < m; ++i) {
        // ~85% of motif residues survive.
        t[pos + i] = rng.below(100) < 85
                         ? query[i]
                         : static_cast<std::uint8_t>(rng.below(aa.size()));
      }
      ++planted;
    }
    targets.push_back(std::move(t));
  }
  gen_span.finish();

  const sw::LaneWidth resolved = sw::resolve_lane_width(*width);
  std::printf("scheme: %s (epsilon = %u bit planes, slices = %u)\n",
              sw::scheme_name(scheme).c_str(), scheme.alphabet_bits(),
              sw::scheme_required_slices(scheme, m, n));
  std::printf("lane width: %s (requested %s)\n",
              sw::lane_width_name(resolved), width_name.c_str());

  // Resolve the host engine (auto = measured cost model; the environment
  // override outranks the flag, same as the lane width).
  sw::BackendChoice engine;
  try {
    const auto workload =
        sw::DispatchWorkload::from(scheme, count, m, n, resolved);
    engine = sw::resolve_backend_choice(*backend, workload);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "backend resolution failed: %s\n", e.what());
    return 1;
  }
  if (engine == sw::BackendChoice::kWordwiseNaive) {
    std::fprintf(stderr,
                 "--backend=wordwise-naive cannot score "
                 "substitution-matrix schemes (the retired reference only "
                 "speaks match/mismatch params)\n");
    return 1;
  }
  std::printf("backend: %s (requested %s)\n",
              sw::backend_choice_name(engine), backend_name.c_str());

  sw::PhaseTimings timings;
  util::WallTimer timer;
  telemetry::Span screen_span(tr, "screen.scheme", "example");
  screen_span.arg("pairs", static_cast<std::int64_t>(count));
  screen_span.arg("planes", static_cast<std::int64_t>(aa.bits()));
  screen_span.arg("backend", static_cast<std::int64_t>(engine));
  const auto screened =
      engine == sw::BackendChoice::kStriped
          ? sw::try_striped_max_scores(queries, targets, scheme,
                                       bulk::Mode::kSerial, nullptr,
                                       &timings)
          : sw::try_scheme_max_scores(
                queries, targets, scheme, *width, bulk::Mode::kSerial,
                encoding::TransposeMethod::kPlanned, &timings);
  screen_span.finish();
  const double ms = timer.elapsed_ms();
  if (!screened.has_value()) {
    std::fprintf(stderr, "screen rejected: %s\n",
                 screened.status().to_string().c_str());
    return 1;
  }
  const std::vector<std::uint32_t>& scores = *screened;

  // Per-instance GCUPS: every lane computes its own m*n DP cells.
  const double cells = static_cast<double>(count) *
                       static_cast<double>(m) * static_cast<double>(n);
  const double gcups = ms > 0.0 ? cells / (ms * 1e6) : 0.0;
  std::printf("screened %zu targets in %.2f ms "
              "(W2B %.2f, SWA %.2f, B2W %.2f) — %.3f GCUPS\n",
              count, ms, timings.w2b_ms, timings.swa_ms, timings.b2w_ms,
              gcups);

  // Spot-check the bitwise scores against the scalar Gotoh reference.
  for (std::size_t k = 0; k < count; k += 17) {
    const std::uint32_t want =
        sw::scheme_max_score(queries[k], targets[k], scheme);
    if (scores[k] != want) {
      std::fprintf(stderr,
                   "pair %zu: %s %u != scalar Gotoh %u — MISMATCH\n", k,
                   sw::backend_choice_name(engine), scores[k], want);
      return 1;
    }
  }

  const std::uint32_t tau = static_cast<std::uint32_t>(m);  // ~1 bit/aa
  std::size_t hits = 0;
  for (std::size_t k = 0; k < count; ++k) {
    if (scores[k] >= tau) ++hits;
  }
  std::printf("query (%zu aa): %s\n", m, aa.decode(query).c_str());
  std::printf("%zu targets reach tau = %u (%zu were planted)\n", hits, tau,
              planted);

  // --db: serve the same screen from the pre-transposed store — query
  // broadcast across lanes, shard planes zero-copy at 64 lanes and
  // limb-gathered into wide words beyond.
  sw::SchemeDbStats db_stats;
  double db_ms = 0.0;
  const std::string db_path = opt.get("db", "");
  if (!db_path.empty()) {
    if (util::Status s =
            db::build_generic_database(targets, aa.bits(), db_path);
        !s.ok()) {
      std::fprintf(stderr, "db build failed: %s\n", s.to_string().c_str());
      return 1;
    }
    auto reader = db::Reader::open(db_path);
    if (!reader.has_value()) {
      std::fprintf(stderr, "db open failed: %s\n",
                   reader.status().to_string().c_str());
      return 1;
    }
    telemetry::Span db_span(tr, "screen.db", "example");
    timer.reset();
    const auto served = sw::try_scheme_db_max_scores(
        query, *reader, scheme, *width, bulk::Mode::kSerial, targets,
        &db_stats);
    db_ms = timer.elapsed_ms();
    db_span.finish();
    if (!served.has_value()) {
      std::fprintf(stderr, "db screen rejected: %s\n",
                   served.status().to_string().c_str());
      return 1;
    }
    const bool identical = *served == scores;
    const double db_gcups = db_ms > 0.0 ? cells / (db_ms * 1e6) : 0.0;
    std::printf("store serve (%s, %llu shards zero-copy, %llu "
                "quarantined, %llu re-ingested) at %s: %.2f ms, "
                "%.3f GCUPS — %s\n",
                db_path.c_str(),
                static_cast<unsigned long long>(db_stats.shards_served),
                static_cast<unsigned long long>(db_stats.shards_quarantined),
                static_cast<unsigned long long>(db_stats.shards_reingested),
                sw::lane_width_name(db_stats.lane_width), db_ms, db_gcups,
                identical ? "bit-identical to the in-memory batch"
                          : "MISMATCH");
    if (!identical) return 1;
  }

  // --json: machine-readable evidence for the CI dispatch-matrix gate —
  // scores_fnv must be identical whichever lane width dispatched.
  const std::string json_path = opt.get("json", "");
  if (!json_path.empty()) {
    telemetry::RunReport rep;
    rep.tool = "protein_screen";
    rep.config["scheme"] = sw::scheme_name(scheme);
    rep.config["gap_open"] = std::to_string(scheme.gap_open);
    rep.config["gap_extend"] = std::to_string(scheme.gap_extend);
    rep.config["plane_bits"] = std::to_string(scheme.alphabet_bits());
    rep.config["width_requested"] = width_name;
    rep.config["width_resolved"] = sw::lane_width_name(resolved);
    rep.config["backend_requested"] = backend_name;
    rep.config["backend_resolved"] = sw::backend_choice_name(engine);
    rep.config["pairs"] = std::to_string(count);
    rep.config["hits"] = std::to_string(hits);
    rep.config["scores_fnv"] =
        std::to_string(util::fnv1a_span<std::uint32_t>(scores));
    if (!db_path.empty()) {
      rep.config["db"] = db_path;
      rep.config["db_width"] = sw::lane_width_name(db_stats.lane_width);
      rep.config["db_shards_served"] =
          std::to_string(db_stats.shards_served);
      rep.config["db_shards_quarantined"] =
          std::to_string(db_stats.shards_quarantined);
    }
    telemetry::RunReportRow row;
    row.impl = engine == sw::BackendChoice::kStriped
                   ? std::string("CPU striped-simd")
                   : std::string("CPU bitwise-") + sw::lane_width_name(resolved);
    row.pairs = count;
    row.m = m;
    row.n = n;
    row.stages_ms = {{"W2B", timings.w2b_ms},
                     {"SWA", timings.swa_ms},
                     {"B2W", timings.b2w_ms}};
    row.total_ms = ms;
    row.gcups = gcups;
    rep.rows.push_back(row);
    if (!db_path.empty()) {
      telemetry::RunReportRow db_row;
      db_row.impl = std::string("CPU bitwise-db-") +
                    sw::lane_width_name(db_stats.lane_width);
      db_row.pairs = count;
      db_row.m = m;
      db_row.n = n;
      db_row.total_ms = db_ms;
      db_row.gcups = db_ms > 0.0 ? cells / (db_ms * 1e6) : 0.0;
      rep.rows.push_back(db_row);
    }
    if (util::Status s = telemetry::write_run_report(rep, json_path);
        !s.ok()) {
      std::fprintf(stderr, "run report: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("Run report written to %s\n", json_path.c_str());
  }

  if (session.enabled()) {
    if (util::Status s = session.tracer()->write_chrome_trace(trace_path);
        !s.ok()) {
      std::printf("trace write failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu spans) — open in "
                "https://ui.perfetto.dev\n",
                trace_path.c_str(), session.tracer()->size());
  }
  return 0;
}
