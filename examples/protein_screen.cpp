// Protein screening with the generic epsilon-bit BPBC aligner: 20-symbol
// amino-acid alphabet (epsilon = 5 planes instead of DNA's 2).
//
//   ./protein_screen [--count=N]
//   ./protein_screen --trace=protein.trace.json   # span timeline; open
//                                                 # the file in Perfetto
//   ./protein_screen --db=proteins.swdb           # round-trip the targets
//                                                 # through the store
//
// --db exercises the pre-transposed store at epsilon = 5: the targets are
// built into a generic database (atomic publish), mapped back zero-copy,
// decoded shard-by-shard from the bit planes, and re-scored — both the
// decoded residues and the scores must match the in-memory run exactly.
#include <cstdio>

#include "db/builder.hpp"
#include "db/reader.hpp"
#include "encoding/alphabet.hpp"
#include "sw/generic.hpp"
#include "telemetry/telemetry.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const auto count = static_cast<std::size_t>(opt.get_int("count", 64));
  const std::size_t m = 24, n = 200;

  // --trace=path: record the example's phases as spans (plus thread-pool
  // chunks, when the aligner runs parallel) and export a Chrome trace.
  const std::string trace_path = opt.get("trace", "");
  telemetry::TelemetryConfig tcfg;
  tcfg.enabled = !trace_path.empty();
  tcfg.pool_spans = true;
  telemetry::Telemetry session(tcfg);
  telemetry::Tracer* const tr =
      session.enabled() ? session.tracer() : nullptr;

  const encoding::Alphabet& aa = encoding::protein_alphabet();
  util::Xoshiro256 rng(314);
  const auto random_protein = [&](std::size_t len) {
    encoding::GenericSequence s(len);
    for (auto& c : s) c = static_cast<std::uint8_t>(rng.below(aa.size()));
    return s;
  };

  // One query motif against `count` random protein targets; a third of
  // the targets carry a degraded copy of the motif.
  telemetry::Span gen_span(tr, "generate", "example");
  gen_span.arg("targets", static_cast<std::int64_t>(count));
  const encoding::GenericSequence query = random_protein(m);
  std::vector<encoding::GenericSequence> queries(count, query);
  std::vector<encoding::GenericSequence> targets;
  std::size_t planted = 0;
  for (std::size_t k = 0; k < count; ++k) {
    auto t = random_protein(n);
    if (k % 3 == 0) {
      const std::size_t pos = rng.below(n - m);
      for (std::size_t i = 0; i < m; ++i) {
        // ~85% of motif residues survive.
        t[pos + i] = rng.below(100) < 85
                         ? query[i]
                         : static_cast<std::uint8_t>(rng.below(aa.size()));
      }
      ++planted;
    }
    targets.push_back(std::move(t));
  }

  gen_span.finish();

  const sw::ScoreParams params{2, 1, 1};
  util::WallTimer timer;
  telemetry::Span screen_span(tr, "screen.generic", "example");
  screen_span.arg("pairs", static_cast<std::int64_t>(count));
  screen_span.arg("planes", static_cast<std::int64_t>(aa.bits()));
  const auto scores = sw::generic_bpbc_max_scores<std::uint64_t>(
      queries, targets, aa.bits(), params);
  screen_span.finish();
  const double ms = timer.elapsed_ms();

  const std::uint32_t tau = static_cast<std::uint32_t>(2 * m * 6 / 10);
  std::size_t hits = 0;
  for (std::size_t k = 0; k < count; ++k) {
    if (scores[k] >= tau) ++hits;
  }
  std::printf("query (%zu aa): %s\n", m, aa.decode(query).c_str());
  std::printf("screened %zu protein targets (epsilon = %u bit planes) in "
              "%.2f ms\n", count, aa.bits(), ms);
  std::printf("%zu targets reach tau = %u (%zu were planted)\n", hits, tau,
              planted);

  const std::string db_path = opt.get("db", "");
  if (!db_path.empty()) {
    if (util::Status s =
            db::build_generic_database(targets, aa.bits(), db_path);
        !s.ok()) {
      std::fprintf(stderr, "db build failed: %s\n", s.to_string().c_str());
      return 1;
    }
    auto reader = db::Reader::open(db_path);
    if (!reader.has_value()) {
      std::fprintf(stderr, "db open failed: %s\n",
                   reader.status().to_string().c_str());
      return 1;
    }
    // Decode every target back out of the mapped bit planes and re-score:
    // the store round trip must be lossless at any epsilon.
    std::vector<encoding::GenericSequence> decoded;
    for (std::size_t s = 0; s < reader->shard_count(); ++s) {
      const auto view = reader->shard(s);
      if (!view.has_value()) {
        std::fprintf(stderr, "shard %zu: %s\n", s,
                     view.status().to_string().c_str());
        return 1;
      }
      for (unsigned lane = 0; lane < view->lanes_used; ++lane) {
        encoding::GenericSequence seq(view->length);
        for (std::size_t i = 0; i < view->length; ++i) {
          std::uint8_t code = 0;
          for (unsigned p = 0; p < view->plane_bits; ++p)
            code |= static_cast<std::uint8_t>(((view->plane(p)[i] >> lane) & 1)
                                              << p);
          seq[i] = code;
        }
        decoded.push_back(std::move(seq));
      }
    }
    const auto rescored = sw::generic_bpbc_max_scores<std::uint64_t>(
        queries, decoded, aa.bits(), params);
    const bool lossless = decoded == targets && rescored == scores;
    std::printf("store round trip (%s, epsilon = %u, %zu shards): %s\n",
                db_path.c_str(), reader->plane_bits(), reader->shard_count(),
                lossless ? "lossless, scores bit-identical"
                         : "MISMATCH");
    if (!lossless) return 1;
  }
  if (session.enabled()) {
    if (util::Status s = session.tracer()->write_chrome_trace(trace_path);
        !s.ok()) {
      std::printf("trace write failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu spans) — open in "
                "https://ui.perfetto.dev\n",
                trace_path.c_str(), session.tracer()->size());
  }
  return 0;
}
