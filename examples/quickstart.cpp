// Quickstart: score one batch of DNA pairs with the BPBC Smith-Waterman
// and print the best local alignment of the top hit.
//
//   ./quickstart
//
// Walks through the three core API layers:
//   1. encoding::  — strings and the bit-transpose batch format,
//   2. sw::bpbc_max_scores — the bulk BPBC screening pass,
//   3. sw::align — the detailed scalar alignment for interesting pairs.
#include <cstdio>

#include "encoding/random.hpp"
#include "sw/bpbc.hpp"
#include "sw/scalar.hpp"

int main() {
  using namespace swbpbc;

  // 64 random pattern/text pairs; plant one strong homology so there is
  // something to find.
  util::Xoshiro256 rng(2026);
  const std::size_t m = 24, n = 160;
  auto patterns = encoding::random_sequences(rng, 64, m);
  auto texts = encoding::random_sequences(rng, 64, n);
  const auto noisy = encoding::mutate(patterns[17], 0.08, rng);
  encoding::plant_motif(texts[17], noisy, 40);

  // Bulk BPBC pass: 64 alignments advanced simultaneously in one
  // 64-bit-lane group (use LaneWidth::k32 for two 32-lane groups).
  const sw::ScoreParams params{2, 1, 1};  // +2 match, -1 mismatch, -1 gap
  const auto scores =
      sw::bpbc_max_scores(patterns, texts, params, sw::LaneWidth::k64);

  std::size_t best = 0;
  for (std::size_t k = 1; k < scores.size(); ++k) {
    if (scores[k] > scores[best]) best = k;
  }
  std::printf("scored %zu pairs; best pair #%zu with max score %u\n",
              scores.size(), best, scores[best]);

  // Detailed alignment (score matrix + traceback) for the winner only.
  const sw::Alignment aln = sw::align(patterns[best], texts[best], params);
  std::printf("local alignment (x[%zu..%zu) vs y[%zu..%zu)):\n",
              aln.x_begin, aln.x_end, aln.y_begin, aln.y_end);
  std::printf("  %s\n  %s\n  %s\n", aln.x_row.c_str(), aln.mid_row.c_str(),
              aln.y_row.c_str());
  return 0;
}
