// The BPBC technique's original showcase (paper §I, ref [13]): Conway's
// Game of Life with 64 cells per word operation. Prints a glider gun's
// evolution and the BPBC-vs-scalar throughput on a large random grid.
//
//   ./game_of_life [--show=N] [--size=W]
#include <cstdio>

#include "life/life.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace {

constexpr std::string_view kGosperGun =
    "........................#...........\n"
    "......................#.#...........\n"
    "............##......##............##\n"
    "...........#...#....##............##\n"
    "##........#.....#...##..............\n"
    "##........#...#.##....#.#...........\n"
    "..........#.....#.......#...........\n"
    "...........#...#....................\n"
    "............##......................\n";

template <typename Grid>
void show(const Grid& g, std::size_t rows) {
  for (std::size_t y = 0; y < rows && y < g.height(); ++y) {
    for (std::size_t x = 0; x < g.width(); ++x) {
      std::putchar(g.get(x, y) ? '#' : '.');
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swbpbc;

  util::Options opt(argc, argv);
  const auto generations =
      static_cast<std::size_t>(opt.get_int("show", 30));
  const auto size = static_cast<std::size_t>(opt.get_int("size", 512));

  life::BpbcLife<std::uint64_t> gun(40, 30);
  life::load_picture(gun, kGosperGun);
  gun.step(generations);
  std::printf("Gosper glider gun after %zu generations "
              "(population %zu):\n", generations, gun.population());
  show(gun, 20);

  // Throughput: BPBC vs scalar on a dense random grid.
  util::Xoshiro256 rng_a(1), rng_b(1);
  life::BpbcLife<std::uint64_t> fast(size, size);
  life::ScalarLife slow(size, size);
  life::randomize(fast, 0.3, rng_a);
  life::randomize(slow, 0.3, rng_b);

  const std::size_t gens = 20;
  util::WallTimer timer;
  fast.step(gens);
  const double fast_ms = timer.elapsed_ms();
  timer.reset();
  slow.step(gens);
  const double slow_ms = timer.elapsed_ms();

  const double cells =
      static_cast<double>(size) * static_cast<double>(size) *
      static_cast<double>(gens);
  std::printf("\n%zux%zu grid, %zu generations:\n", size, size, gens);
  std::printf("  BPBC (64 cells/word): %8.2f ms  (%.0f Mcells/s)\n",
              fast_ms, cells / fast_ms / 1e3);
  std::printf("  scalar reference:     %8.2f ms  (%.0f Mcells/s)\n",
              slow_ms, cells / slow_ms / 1e3);
  std::printf("  populations: bpbc=%zu scalar=%zu (%s)\n",
              fast.population(), slow.population(),
              fast.population() == slow.population() ? "agree"
                                                     : "DISAGREE");
  return 0;
}
