// The screening daemon: serves multi-tenant score requests over a
// UNIX-domain socket with admission control, lane-group batching, a
// crash-safe request journal, and optional transport fault injection.
//
//   ./screen_serve --socket=/tmp/sw.sock --journal=/tmp/sw.journal
//   ./screen_serve --socket=... --tear-prob=0.2 --flip-prob=0.2
//   ./screen_serve --socket=... --crash-after-batches=2   # CI crash drill
//
// SIGTERM/SIGINT drains: in-flight batches finish, the queue flushes,
// new work is rejected kOverloaded, the per-tenant RunReport is written,
// and the process exits 0. A second signal exits immediately.

#include <cstdio>
#include <string>

#include "service/server.hpp"
#include "sw/lane.hpp"
#include "util/options.hpp"
#include "util/signal.hpp"

using namespace swbpbc;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  service::ServerConfig config;
  config.socket_path = opt.get("socket", "screen_serve.sock");
  config.journal_path = opt.get("journal", "");
  config.params = {2, 1, 1};
  const std::string width_name = opt.get("width", "64");
  const auto width = sw::parse_lane_width(width_name);
  if (!width.has_value()) {
    std::fprintf(stderr, "screen_serve: unknown --width=%s\n",
                 width_name.c_str());
    return 2;
  }
  config.width = *width;
  config.lane_group =
      static_cast<std::size_t>(opt.get_int("lane-group", 0));
  config.linger_ms = opt.get_double("linger-ms", 2.0);
  config.admission.max_queued_requests =
      static_cast<std::size_t>(opt.get_int("max-queued-requests", 64));
  config.admission.max_queued_pairs =
      static_cast<std::size_t>(opt.get_int("max-queued-pairs", 1 << 14));
  config.admission.tenant_quota_pairs =
      static_cast<std::size_t>(opt.get_int("tenant-quota-pairs", 1 << 13));
  config.admission.retry_hint_base_ms = opt.get_double("retry-hint-ms", 10.0);
  config.faults.seed = static_cast<std::uint64_t>(opt.get_int("fault-seed", 1));
  config.faults.tear_probability = opt.get_double("tear-prob", 0.0);
  config.faults.flip_probability = opt.get_double("flip-prob", 0.0);
  config.faults.disconnect_probability = opt.get_double("disconnect-prob", 0.0);
  config.faults.stall_probability = opt.get_double("stall-prob", 0.0);
  config.faults.stall_ms = opt.get_double("stall-ms", 5.0);
  config.crash_after_batches =
      static_cast<std::uint64_t>(opt.get_int("crash-after-batches", 0));
  const std::string report_path = opt.get("report", "");

  // SIGTERM/SIGINT -> cancel -> drain. The token must outlive run().
  util::CancellationToken stop;
  if (util::Status s = util::install_cancel_on_signals(stop); !s.ok()) {
    std::fprintf(stderr, "screen_serve: %s\n", s.to_string().c_str());
    return 1;
  }
  config.stop = &stop;

  auto server = service::ScreenServer::create(std::move(config));
  if (!server.has_value()) {
    std::fprintf(stderr, "screen_serve: %s\n",
                 server.status().to_string().c_str());
    return 1;
  }
  std::printf("screen_serve: listening (journal %s)\n",
              opt.get("journal", "").empty() ? "off" : "on");
  std::fflush(stdout);

  const util::Status run_status = server->run();
  const service::ServerStats& stats = server->stats();
  std::printf(
      "screen_serve: drained. requests=%llu admitted=%llu completed=%llu "
      "cache_hits=%llu shed_deadline=%llu rejected_overload=%llu "
      "rejected_quota=%llu recovered_pending=%llu recovered_completed=%llu "
      "batches=%llu pairs_scored=%llu faults=%llu\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.shed_deadline),
      static_cast<unsigned long long>(stats.rejected_overload),
      static_cast<unsigned long long>(stats.rejected_quota),
      static_cast<unsigned long long>(stats.recovered_pending),
      static_cast<unsigned long long>(stats.recovered_completed),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.pairs_scored),
      static_cast<unsigned long long>(stats.faults.total()));
  if (!report_path.empty()) {
    if (util::Status s =
            telemetry::write_run_report(server->report(), report_path);
        !s.ok()) {
      std::fprintf(stderr, "screen_serve: report write failed: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("screen_serve: report written to %s\n", report_path.c_str());
  }
  if (!run_status.ok()) {
    std::fprintf(stderr, "screen_serve: %s\n", run_status.to_string().c_str());
    return 1;
  }
  return 0;
}
