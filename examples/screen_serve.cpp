// The screening daemon: serves multi-tenant score requests over a
// UNIX-domain socket with admission control, lane-group batching, a
// crash-safe request journal, and optional transport fault injection.
//
//   ./screen_serve --socket=/tmp/sw.sock --journal=/tmp/sw.journal
//   ./screen_serve --socket=... --tear-prob=0.2 --flip-prob=0.2
//   ./screen_serve --socket=... --crash-after-batches=2   # CI crash drill
//   ./screen_serve --socket=... --telemetry --engine \
//       --stats-dump=stats.prom --flight-recorder=crash.fr
//
// Observability: --telemetry enables the span tracer + metrics registry
// (live kStatRequest/kTraceRequest scrapes answer with them); --engine
// scores batches on a persistent device::PipelineEngine so per-batch
// H2G..G2H stage spans land in the trace; --flight-recorder installs a
// crash handler that dumps the recent event ring to PATH on
// SIGSEGV/SIGABRT; --stats-dump writes a Prometheus text-exposition
// snapshot at drain.
//
// SIGTERM/SIGINT drains: in-flight batches finish, the queue flushes,
// new work is rejected kOverloaded, the per-tenant RunReport is written,
// and the process exits 0. A second signal exits immediately.

#include <cstdio>
#include <fstream>
#include <string>

#include "service/server.hpp"
#include "sw/lane.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/flight_recorder.hpp"
#include "util/options.hpp"
#include "util/signal.hpp"

using namespace swbpbc;

int main(int argc, char** argv) {
  util::Options opt(argc, argv);
  service::ServerConfig config;
  config.socket_path = opt.get("socket", "screen_serve.sock");
  config.journal_path = opt.get("journal", "");
  config.params = {2, 1, 1};
  const std::string width_name = opt.get("width", "64");
  const auto width = sw::parse_lane_width(width_name);
  if (!width.has_value()) {
    std::fprintf(stderr, "screen_serve: unknown --width=%s\n",
                 width_name.c_str());
    return 2;
  }
  config.width = *width;
  const std::string backend_name = opt.get("backend", "auto");
  const auto backend = sw::parse_backend_choice(backend_name);
  if (!backend.has_value()) {
    std::fprintf(stderr,
                 "screen_serve: unknown --backend=%s (expected "
                 "bpbc|striped|wordwise-naive|auto)\n",
                 backend_name.c_str());
    return 2;
  }
  config.backend = *backend;
  config.lane_group =
      static_cast<std::size_t>(opt.get_int("lane-group", 0));
  config.linger_ms = opt.get_double("linger-ms", 2.0);
  config.admission.max_queued_requests =
      static_cast<std::size_t>(opt.get_int("max-queued-requests", 64));
  config.admission.max_queued_pairs =
      static_cast<std::size_t>(opt.get_int("max-queued-pairs", 1 << 14));
  config.admission.tenant_quota_pairs =
      static_cast<std::size_t>(opt.get_int("tenant-quota-pairs", 1 << 13));
  config.admission.retry_hint_base_ms = opt.get_double("retry-hint-ms", 10.0);
  config.faults.seed = static_cast<std::uint64_t>(opt.get_int("fault-seed", 1));
  config.faults.tear_probability = opt.get_double("tear-prob", 0.0);
  config.faults.flip_probability = opt.get_double("flip-prob", 0.0);
  config.faults.disconnect_probability = opt.get_double("disconnect-prob", 0.0);
  config.faults.stall_probability = opt.get_double("stall-prob", 0.0);
  config.faults.stall_ms = opt.get_double("stall-ms", 5.0);
  config.crash_after_batches =
      static_cast<std::uint64_t>(opt.get_int("crash-after-batches", 0));
  config.abort_after_batches =
      static_cast<std::uint64_t>(opt.get_int("abort-after-batches", 0));
  config.use_engine = opt.get_bool("engine", false);
  config.slo.slow_request_ms = opt.get_double("slow-ms", 1000.0);
  const std::string report_path = opt.get("report", "");
  const std::string stats_dump_path = opt.get("stats-dump", "");
  const std::string flight_path = opt.get("flight-recorder", "");
  const std::string trace_path = opt.get("trace", "");

  // Telemetry session (spans + metrics). Off by default: the serving hot
  // path then carries only null-pointer tests, the PR 3 contract.
  telemetry::TelemetryConfig telemetry_config;
  telemetry_config.enabled = opt.get_bool("telemetry", false) ||
                             !trace_path.empty() || !stats_dump_path.empty();
  telemetry::Telemetry session(telemetry_config);
  config.telemetry = session.sink();

  // Flight recorder + crash handler: the ring lives for the whole
  // process; the handler dumps it to the path on SIGSEGV/SIGABRT/....
  telemetry::FlightRecorder recorder(
      static_cast<std::size_t>(opt.get_int("flight-capacity", 4096)));
  if (!flight_path.empty()) {
    config.flight_recorder = &recorder;
    config.flight_record_path = flight_path;
    if (util::Status s = telemetry::FlightRecorder::install_crash_handler(
            &recorder, flight_path);
        !s.ok()) {
      std::fprintf(stderr, "screen_serve: %s\n", s.to_string().c_str());
      return 1;
    }
  }

  // SIGTERM/SIGINT -> cancel -> drain. The token must outlive run().
  util::CancellationToken stop;
  if (util::Status s = util::install_cancel_on_signals(stop); !s.ok()) {
    std::fprintf(stderr, "screen_serve: %s\n", s.to_string().c_str());
    return 1;
  }
  config.stop = &stop;

  auto server = service::ScreenServer::create(std::move(config));
  if (!server.has_value()) {
    std::fprintf(stderr, "screen_serve: %s\n",
                 server.status().to_string().c_str());
    return 1;
  }
  std::printf("screen_serve: listening (journal %s)\n",
              opt.get("journal", "").empty() ? "off" : "on");
  std::fflush(stdout);

  const util::Status run_status = server->run();
  const service::ServerStats& stats = server->stats();
  std::printf(
      "screen_serve: drained. requests=%llu admitted=%llu completed=%llu "
      "cache_hits=%llu shed_deadline=%llu rejected_overload=%llu "
      "rejected_quota=%llu recovered_pending=%llu recovered_completed=%llu "
      "batches=%llu pairs_scored=%llu faults=%llu\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.shed_deadline),
      static_cast<unsigned long long>(stats.rejected_overload),
      static_cast<unsigned long long>(stats.rejected_quota),
      static_cast<unsigned long long>(stats.recovered_pending),
      static_cast<unsigned long long>(stats.recovered_completed),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.pairs_scored),
      static_cast<unsigned long long>(stats.faults.total()));
  if (!report_path.empty()) {
    if (util::Status s =
            telemetry::write_run_report(server->report(), report_path);
        !s.ok()) {
      std::fprintf(stderr, "screen_serve: report write failed: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("screen_serve: report written to %s\n", report_path.c_str());
  }
  if (!stats_dump_path.empty()) {
    // Prometheus text exposition of the final scrape — what a pull-based
    // collector would have seen the moment before drain.
    const telemetry::RunReport final_report = server->report();
    std::ofstream out(stats_dump_path, std::ios::binary | std::ios::trunc);
    out << telemetry::prometheus_text(final_report.metrics);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "screen_serve: stats dump write failed: %s\n",
                   stats_dump_path.c_str());
      return 1;
    }
    std::printf("screen_serve: stats dump written to %s\n",
                stats_dump_path.c_str());
  }
  if (!trace_path.empty() && session.enabled()) {
    if (util::Status s = session.tracer()->write_chrome_trace(trace_path);
        !s.ok()) {
      std::fprintf(stderr, "screen_serve: trace write failed: %s\n",
                   s.to_string().c_str());
      return 1;
    }
    std::printf("screen_serve: trace written to %s\n", trace_path.c_str());
  }
  if (!run_status.ok()) {
    std::fprintf(stderr, "screen_serve: %s\n", run_status.to_string().c_str());
    return 1;
  }
  return 0;
}
