# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/bitsim_test[1]_include.cmake")
include("/root/repo/build/tests/bitops_test[1]_include.cmake")
include("/root/repo/build/tests/sw_test[1]_include.cmake")
include("/root/repo/build/tests/strmatch_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/bulk_test[1]_include.cmake")
include("/root/repo/build/tests/life_test[1]_include.cmake")
include("/root/repo/build/tests/cky_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
