# Empty compiler generated dependencies file for life_test.
# This may be replaced when dependencies are built.
