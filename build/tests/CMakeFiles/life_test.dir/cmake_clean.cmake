file(REMOVE_RECURSE
  "CMakeFiles/life_test.dir/life/life_test.cpp.o"
  "CMakeFiles/life_test.dir/life/life_test.cpp.o.d"
  "life_test"
  "life_test.pdb"
  "life_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/life_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
