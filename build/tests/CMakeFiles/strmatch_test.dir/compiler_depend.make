# Empty compiler generated dependencies file for strmatch_test.
# This may be replaced when dependencies are built.
