file(REMOVE_RECURSE
  "CMakeFiles/strmatch_test.dir/strmatch/strmatch_test.cpp.o"
  "CMakeFiles/strmatch_test.dir/strmatch/strmatch_test.cpp.o.d"
  "strmatch_test"
  "strmatch_test.pdb"
  "strmatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strmatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
