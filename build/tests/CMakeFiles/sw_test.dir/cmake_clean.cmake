file(REMOVE_RECURSE
  "CMakeFiles/sw_test.dir/sw/affine_test.cpp.o"
  "CMakeFiles/sw_test.dir/sw/affine_test.cpp.o.d"
  "CMakeFiles/sw_test.dir/sw/banded_test.cpp.o"
  "CMakeFiles/sw_test.dir/sw/banded_test.cpp.o.d"
  "CMakeFiles/sw_test.dir/sw/bpbc_test.cpp.o"
  "CMakeFiles/sw_test.dir/sw/bpbc_test.cpp.o.d"
  "CMakeFiles/sw_test.dir/sw/generic_test.cpp.o"
  "CMakeFiles/sw_test.dir/sw/generic_test.cpp.o.d"
  "CMakeFiles/sw_test.dir/sw/pipeline_test.cpp.o"
  "CMakeFiles/sw_test.dir/sw/pipeline_test.cpp.o.d"
  "CMakeFiles/sw_test.dir/sw/scalar_test.cpp.o"
  "CMakeFiles/sw_test.dir/sw/scalar_test.cpp.o.d"
  "CMakeFiles/sw_test.dir/sw/scan_test.cpp.o"
  "CMakeFiles/sw_test.dir/sw/scan_test.cpp.o.d"
  "CMakeFiles/sw_test.dir/sw/traceback_test.cpp.o"
  "CMakeFiles/sw_test.dir/sw/traceback_test.cpp.o.d"
  "CMakeFiles/sw_test.dir/sw/wavefront_test.cpp.o"
  "CMakeFiles/sw_test.dir/sw/wavefront_test.cpp.o.d"
  "sw_test"
  "sw_test.pdb"
  "sw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
