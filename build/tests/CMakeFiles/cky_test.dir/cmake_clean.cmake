file(REMOVE_RECURSE
  "CMakeFiles/cky_test.dir/cky/cky_test.cpp.o"
  "CMakeFiles/cky_test.dir/cky/cky_test.cpp.o.d"
  "cky_test"
  "cky_test.pdb"
  "cky_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
