file(REMOVE_RECURSE
  "CMakeFiles/bitsim_test.dir/bitsim/bitsim_test.cpp.o"
  "CMakeFiles/bitsim_test.dir/bitsim/bitsim_test.cpp.o.d"
  "CMakeFiles/bitsim_test.dir/bitsim/plan_wide_test.cpp.o"
  "CMakeFiles/bitsim_test.dir/bitsim/plan_wide_test.cpp.o.d"
  "bitsim_test"
  "bitsim_test.pdb"
  "bitsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
