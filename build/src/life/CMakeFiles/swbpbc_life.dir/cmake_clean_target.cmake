file(REMOVE_RECURSE
  "libswbpbc_life.a"
)
