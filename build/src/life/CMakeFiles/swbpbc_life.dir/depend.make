# Empty dependencies file for swbpbc_life.
# This may be replaced when dependencies are built.
