file(REMOVE_RECURSE
  "CMakeFiles/swbpbc_life.dir/life.cpp.o"
  "CMakeFiles/swbpbc_life.dir/life.cpp.o.d"
  "libswbpbc_life.a"
  "libswbpbc_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbpbc_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
