
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/life/life.cpp" "src/life/CMakeFiles/swbpbc_life.dir/life.cpp.o" "gcc" "src/life/CMakeFiles/swbpbc_life.dir/life.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitsim/CMakeFiles/swbpbc_bitsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swbpbc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
