# Empty dependencies file for swbpbc_strmatch.
# This may be replaced when dependencies are built.
