file(REMOVE_RECURSE
  "CMakeFiles/swbpbc_strmatch.dir/approx.cpp.o"
  "CMakeFiles/swbpbc_strmatch.dir/approx.cpp.o.d"
  "CMakeFiles/swbpbc_strmatch.dir/bpbc_match.cpp.o"
  "CMakeFiles/swbpbc_strmatch.dir/bpbc_match.cpp.o.d"
  "CMakeFiles/swbpbc_strmatch.dir/exact.cpp.o"
  "CMakeFiles/swbpbc_strmatch.dir/exact.cpp.o.d"
  "libswbpbc_strmatch.a"
  "libswbpbc_strmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbpbc_strmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
