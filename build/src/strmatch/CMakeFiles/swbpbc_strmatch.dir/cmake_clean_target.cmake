file(REMOVE_RECURSE
  "libswbpbc_strmatch.a"
)
