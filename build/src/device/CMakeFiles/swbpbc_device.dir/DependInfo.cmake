
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/match_kernels.cpp" "src/device/CMakeFiles/swbpbc_device.dir/match_kernels.cpp.o" "gcc" "src/device/CMakeFiles/swbpbc_device.dir/match_kernels.cpp.o.d"
  "/root/repo/src/device/metrics.cpp" "src/device/CMakeFiles/swbpbc_device.dir/metrics.cpp.o" "gcc" "src/device/CMakeFiles/swbpbc_device.dir/metrics.cpp.o.d"
  "/root/repo/src/device/sw_kernels.cpp" "src/device/CMakeFiles/swbpbc_device.dir/sw_kernels.cpp.o" "gcc" "src/device/CMakeFiles/swbpbc_device.dir/sw_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sw/CMakeFiles/swbpbc_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/swbpbc_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swbpbc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bulk/CMakeFiles/swbpbc_bulk.dir/DependInfo.cmake"
  "/root/repo/build/src/bitsim/CMakeFiles/swbpbc_bitsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
