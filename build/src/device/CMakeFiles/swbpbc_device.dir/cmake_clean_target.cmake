file(REMOVE_RECURSE
  "libswbpbc_device.a"
)
