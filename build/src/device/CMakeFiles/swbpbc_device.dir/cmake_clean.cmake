file(REMOVE_RECURSE
  "CMakeFiles/swbpbc_device.dir/match_kernels.cpp.o"
  "CMakeFiles/swbpbc_device.dir/match_kernels.cpp.o.d"
  "CMakeFiles/swbpbc_device.dir/metrics.cpp.o"
  "CMakeFiles/swbpbc_device.dir/metrics.cpp.o.d"
  "CMakeFiles/swbpbc_device.dir/sw_kernels.cpp.o"
  "CMakeFiles/swbpbc_device.dir/sw_kernels.cpp.o.d"
  "libswbpbc_device.a"
  "libswbpbc_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbpbc_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
