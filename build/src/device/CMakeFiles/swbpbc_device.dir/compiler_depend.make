# Empty compiler generated dependencies file for swbpbc_device.
# This may be replaced when dependencies are built.
