# Empty dependencies file for swbpbc_util.
# This may be replaced when dependencies are built.
