# Empty compiler generated dependencies file for swbpbc_util.
# This may be replaced when dependencies are built.
