file(REMOVE_RECURSE
  "libswbpbc_util.a"
)
