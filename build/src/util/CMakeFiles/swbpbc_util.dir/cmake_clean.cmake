file(REMOVE_RECURSE
  "CMakeFiles/swbpbc_util.dir/options.cpp.o"
  "CMakeFiles/swbpbc_util.dir/options.cpp.o.d"
  "CMakeFiles/swbpbc_util.dir/rng.cpp.o"
  "CMakeFiles/swbpbc_util.dir/rng.cpp.o.d"
  "CMakeFiles/swbpbc_util.dir/table.cpp.o"
  "CMakeFiles/swbpbc_util.dir/table.cpp.o.d"
  "CMakeFiles/swbpbc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/swbpbc_util.dir/thread_pool.cpp.o.d"
  "libswbpbc_util.a"
  "libswbpbc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbpbc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
