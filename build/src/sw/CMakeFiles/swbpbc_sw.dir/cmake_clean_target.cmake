file(REMOVE_RECURSE
  "libswbpbc_sw.a"
)
