file(REMOVE_RECURSE
  "CMakeFiles/swbpbc_sw.dir/affine.cpp.o"
  "CMakeFiles/swbpbc_sw.dir/affine.cpp.o.d"
  "CMakeFiles/swbpbc_sw.dir/banded.cpp.o"
  "CMakeFiles/swbpbc_sw.dir/banded.cpp.o.d"
  "CMakeFiles/swbpbc_sw.dir/bpbc.cpp.o"
  "CMakeFiles/swbpbc_sw.dir/bpbc.cpp.o.d"
  "CMakeFiles/swbpbc_sw.dir/generic.cpp.o"
  "CMakeFiles/swbpbc_sw.dir/generic.cpp.o.d"
  "CMakeFiles/swbpbc_sw.dir/pipeline.cpp.o"
  "CMakeFiles/swbpbc_sw.dir/pipeline.cpp.o.d"
  "CMakeFiles/swbpbc_sw.dir/scalar.cpp.o"
  "CMakeFiles/swbpbc_sw.dir/scalar.cpp.o.d"
  "CMakeFiles/swbpbc_sw.dir/scan.cpp.o"
  "CMakeFiles/swbpbc_sw.dir/scan.cpp.o.d"
  "CMakeFiles/swbpbc_sw.dir/traceback.cpp.o"
  "CMakeFiles/swbpbc_sw.dir/traceback.cpp.o.d"
  "CMakeFiles/swbpbc_sw.dir/wavefront.cpp.o"
  "CMakeFiles/swbpbc_sw.dir/wavefront.cpp.o.d"
  "CMakeFiles/swbpbc_sw.dir/wordwise.cpp.o"
  "CMakeFiles/swbpbc_sw.dir/wordwise.cpp.o.d"
  "libswbpbc_sw.a"
  "libswbpbc_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbpbc_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
