
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sw/affine.cpp" "src/sw/CMakeFiles/swbpbc_sw.dir/affine.cpp.o" "gcc" "src/sw/CMakeFiles/swbpbc_sw.dir/affine.cpp.o.d"
  "/root/repo/src/sw/banded.cpp" "src/sw/CMakeFiles/swbpbc_sw.dir/banded.cpp.o" "gcc" "src/sw/CMakeFiles/swbpbc_sw.dir/banded.cpp.o.d"
  "/root/repo/src/sw/bpbc.cpp" "src/sw/CMakeFiles/swbpbc_sw.dir/bpbc.cpp.o" "gcc" "src/sw/CMakeFiles/swbpbc_sw.dir/bpbc.cpp.o.d"
  "/root/repo/src/sw/generic.cpp" "src/sw/CMakeFiles/swbpbc_sw.dir/generic.cpp.o" "gcc" "src/sw/CMakeFiles/swbpbc_sw.dir/generic.cpp.o.d"
  "/root/repo/src/sw/pipeline.cpp" "src/sw/CMakeFiles/swbpbc_sw.dir/pipeline.cpp.o" "gcc" "src/sw/CMakeFiles/swbpbc_sw.dir/pipeline.cpp.o.d"
  "/root/repo/src/sw/scalar.cpp" "src/sw/CMakeFiles/swbpbc_sw.dir/scalar.cpp.o" "gcc" "src/sw/CMakeFiles/swbpbc_sw.dir/scalar.cpp.o.d"
  "/root/repo/src/sw/scan.cpp" "src/sw/CMakeFiles/swbpbc_sw.dir/scan.cpp.o" "gcc" "src/sw/CMakeFiles/swbpbc_sw.dir/scan.cpp.o.d"
  "/root/repo/src/sw/traceback.cpp" "src/sw/CMakeFiles/swbpbc_sw.dir/traceback.cpp.o" "gcc" "src/sw/CMakeFiles/swbpbc_sw.dir/traceback.cpp.o.d"
  "/root/repo/src/sw/wavefront.cpp" "src/sw/CMakeFiles/swbpbc_sw.dir/wavefront.cpp.o" "gcc" "src/sw/CMakeFiles/swbpbc_sw.dir/wavefront.cpp.o.d"
  "/root/repo/src/sw/wordwise.cpp" "src/sw/CMakeFiles/swbpbc_sw.dir/wordwise.cpp.o" "gcc" "src/sw/CMakeFiles/swbpbc_sw.dir/wordwise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/encoding/CMakeFiles/swbpbc_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/bulk/CMakeFiles/swbpbc_bulk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swbpbc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bitsim/CMakeFiles/swbpbc_bitsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
