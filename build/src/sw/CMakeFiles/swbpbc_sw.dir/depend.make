# Empty dependencies file for swbpbc_sw.
# This may be replaced when dependencies are built.
