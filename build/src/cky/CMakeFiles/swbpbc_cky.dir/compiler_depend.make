# Empty compiler generated dependencies file for swbpbc_cky.
# This may be replaced when dependencies are built.
