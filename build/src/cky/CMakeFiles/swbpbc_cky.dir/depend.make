# Empty dependencies file for swbpbc_cky.
# This may be replaced when dependencies are built.
