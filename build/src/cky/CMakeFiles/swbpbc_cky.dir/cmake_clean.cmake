file(REMOVE_RECURSE
  "CMakeFiles/swbpbc_cky.dir/cky.cpp.o"
  "CMakeFiles/swbpbc_cky.dir/cky.cpp.o.d"
  "CMakeFiles/swbpbc_cky.dir/grammar.cpp.o"
  "CMakeFiles/swbpbc_cky.dir/grammar.cpp.o.d"
  "libswbpbc_cky.a"
  "libswbpbc_cky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbpbc_cky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
