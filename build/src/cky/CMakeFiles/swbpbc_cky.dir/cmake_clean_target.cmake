file(REMOVE_RECURSE
  "libswbpbc_cky.a"
)
