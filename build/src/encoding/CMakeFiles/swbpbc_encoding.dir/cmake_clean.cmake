file(REMOVE_RECURSE
  "CMakeFiles/swbpbc_encoding.dir/alphabet.cpp.o"
  "CMakeFiles/swbpbc_encoding.dir/alphabet.cpp.o.d"
  "CMakeFiles/swbpbc_encoding.dir/batch.cpp.o"
  "CMakeFiles/swbpbc_encoding.dir/batch.cpp.o.d"
  "CMakeFiles/swbpbc_encoding.dir/dna.cpp.o"
  "CMakeFiles/swbpbc_encoding.dir/dna.cpp.o.d"
  "CMakeFiles/swbpbc_encoding.dir/fasta.cpp.o"
  "CMakeFiles/swbpbc_encoding.dir/fasta.cpp.o.d"
  "CMakeFiles/swbpbc_encoding.dir/generic_batch.cpp.o"
  "CMakeFiles/swbpbc_encoding.dir/generic_batch.cpp.o.d"
  "CMakeFiles/swbpbc_encoding.dir/packed.cpp.o"
  "CMakeFiles/swbpbc_encoding.dir/packed.cpp.o.d"
  "CMakeFiles/swbpbc_encoding.dir/random.cpp.o"
  "CMakeFiles/swbpbc_encoding.dir/random.cpp.o.d"
  "libswbpbc_encoding.a"
  "libswbpbc_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbpbc_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
