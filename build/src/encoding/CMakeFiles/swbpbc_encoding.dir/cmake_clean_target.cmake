file(REMOVE_RECURSE
  "libswbpbc_encoding.a"
)
