
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/alphabet.cpp" "src/encoding/CMakeFiles/swbpbc_encoding.dir/alphabet.cpp.o" "gcc" "src/encoding/CMakeFiles/swbpbc_encoding.dir/alphabet.cpp.o.d"
  "/root/repo/src/encoding/batch.cpp" "src/encoding/CMakeFiles/swbpbc_encoding.dir/batch.cpp.o" "gcc" "src/encoding/CMakeFiles/swbpbc_encoding.dir/batch.cpp.o.d"
  "/root/repo/src/encoding/dna.cpp" "src/encoding/CMakeFiles/swbpbc_encoding.dir/dna.cpp.o" "gcc" "src/encoding/CMakeFiles/swbpbc_encoding.dir/dna.cpp.o.d"
  "/root/repo/src/encoding/fasta.cpp" "src/encoding/CMakeFiles/swbpbc_encoding.dir/fasta.cpp.o" "gcc" "src/encoding/CMakeFiles/swbpbc_encoding.dir/fasta.cpp.o.d"
  "/root/repo/src/encoding/generic_batch.cpp" "src/encoding/CMakeFiles/swbpbc_encoding.dir/generic_batch.cpp.o" "gcc" "src/encoding/CMakeFiles/swbpbc_encoding.dir/generic_batch.cpp.o.d"
  "/root/repo/src/encoding/packed.cpp" "src/encoding/CMakeFiles/swbpbc_encoding.dir/packed.cpp.o" "gcc" "src/encoding/CMakeFiles/swbpbc_encoding.dir/packed.cpp.o.d"
  "/root/repo/src/encoding/random.cpp" "src/encoding/CMakeFiles/swbpbc_encoding.dir/random.cpp.o" "gcc" "src/encoding/CMakeFiles/swbpbc_encoding.dir/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitsim/CMakeFiles/swbpbc_bitsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swbpbc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
