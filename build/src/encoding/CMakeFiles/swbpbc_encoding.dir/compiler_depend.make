# Empty compiler generated dependencies file for swbpbc_encoding.
# This may be replaced when dependencies are built.
