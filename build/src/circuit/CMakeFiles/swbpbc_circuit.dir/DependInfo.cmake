
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/swbpbc_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/swbpbc_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/optimize.cpp" "src/circuit/CMakeFiles/swbpbc_circuit.dir/optimize.cpp.o" "gcc" "src/circuit/CMakeFiles/swbpbc_circuit.dir/optimize.cpp.o.d"
  "/root/repo/src/circuit/sw_circuit.cpp" "src/circuit/CMakeFiles/swbpbc_circuit.dir/sw_circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/swbpbc_circuit.dir/sw_circuit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitsim/CMakeFiles/swbpbc_bitsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
