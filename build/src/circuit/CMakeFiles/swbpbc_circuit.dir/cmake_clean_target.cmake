file(REMOVE_RECURSE
  "libswbpbc_circuit.a"
)
