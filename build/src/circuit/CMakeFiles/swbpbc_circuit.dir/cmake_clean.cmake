file(REMOVE_RECURSE
  "CMakeFiles/swbpbc_circuit.dir/circuit.cpp.o"
  "CMakeFiles/swbpbc_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/swbpbc_circuit.dir/optimize.cpp.o"
  "CMakeFiles/swbpbc_circuit.dir/optimize.cpp.o.d"
  "CMakeFiles/swbpbc_circuit.dir/sw_circuit.cpp.o"
  "CMakeFiles/swbpbc_circuit.dir/sw_circuit.cpp.o.d"
  "libswbpbc_circuit.a"
  "libswbpbc_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbpbc_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
