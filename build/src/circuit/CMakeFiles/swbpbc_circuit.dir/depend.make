# Empty dependencies file for swbpbc_circuit.
# This may be replaced when dependencies are built.
