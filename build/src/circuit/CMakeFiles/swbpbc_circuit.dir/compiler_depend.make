# Empty compiler generated dependencies file for swbpbc_circuit.
# This may be replaced when dependencies are built.
