file(REMOVE_RECURSE
  "CMakeFiles/swbpbc_bulk.dir/fft.cpp.o"
  "CMakeFiles/swbpbc_bulk.dir/fft.cpp.o.d"
  "libswbpbc_bulk.a"
  "libswbpbc_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbpbc_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
