# Empty compiler generated dependencies file for swbpbc_bulk.
# This may be replaced when dependencies are built.
