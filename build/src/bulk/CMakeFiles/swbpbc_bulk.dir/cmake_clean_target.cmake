file(REMOVE_RECURSE
  "libswbpbc_bulk.a"
)
