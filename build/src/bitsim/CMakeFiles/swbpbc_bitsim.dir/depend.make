# Empty dependencies file for swbpbc_bitsim.
# This may be replaced when dependencies are built.
