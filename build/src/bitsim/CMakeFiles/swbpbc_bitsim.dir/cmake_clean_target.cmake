file(REMOVE_RECURSE
  "libswbpbc_bitsim.a"
)
