# Empty compiler generated dependencies file for swbpbc_bitsim.
# This may be replaced when dependencies are built.
