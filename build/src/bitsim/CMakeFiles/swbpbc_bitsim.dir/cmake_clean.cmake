file(REMOVE_RECURSE
  "CMakeFiles/swbpbc_bitsim.dir/plan.cpp.o"
  "CMakeFiles/swbpbc_bitsim.dir/plan.cpp.o.d"
  "CMakeFiles/swbpbc_bitsim.dir/transpose.cpp.o"
  "CMakeFiles/swbpbc_bitsim.dir/transpose.cpp.o.d"
  "libswbpbc_bitsim.a"
  "libswbpbc_bitsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swbpbc_bitsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
