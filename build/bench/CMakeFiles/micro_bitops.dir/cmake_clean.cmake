file(REMOVE_RECURSE
  "CMakeFiles/micro_bitops.dir/micro_bitops.cpp.o"
  "CMakeFiles/micro_bitops.dir/micro_bitops.cpp.o.d"
  "micro_bitops"
  "micro_bitops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bitops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
