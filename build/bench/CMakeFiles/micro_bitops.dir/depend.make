# Empty dependencies file for micro_bitops.
# This may be replaced when dependencies are built.
