file(REMOVE_RECURSE
  "CMakeFiles/table5_gcups.dir/harness.cpp.o"
  "CMakeFiles/table5_gcups.dir/harness.cpp.o.d"
  "CMakeFiles/table5_gcups.dir/table5_gcups.cpp.o"
  "CMakeFiles/table5_gcups.dir/table5_gcups.cpp.o.d"
  "table5_gcups"
  "table5_gcups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_gcups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
