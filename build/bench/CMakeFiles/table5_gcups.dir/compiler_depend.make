# Empty compiler generated dependencies file for table5_gcups.
# This may be replaced when dependencies are built.
