file(REMOVE_RECURSE
  "CMakeFiles/micro_strmatch.dir/micro_strmatch.cpp.o"
  "CMakeFiles/micro_strmatch.dir/micro_strmatch.cpp.o.d"
  "micro_strmatch"
  "micro_strmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_strmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
