# Empty compiler generated dependencies file for micro_strmatch.
# This may be replaced when dependencies are built.
