file(REMOVE_RECURSE
  "CMakeFiles/table1_transpose_ops.dir/table1_transpose_ops.cpp.o"
  "CMakeFiles/table1_transpose_ops.dir/table1_transpose_ops.cpp.o.d"
  "table1_transpose_ops"
  "table1_transpose_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_transpose_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
