file(REMOVE_RECURSE
  "CMakeFiles/ablation_s_sweep.dir/ablation_s_sweep.cpp.o"
  "CMakeFiles/ablation_s_sweep.dir/ablation_s_sweep.cpp.o.d"
  "ablation_s_sweep"
  "ablation_s_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_s_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
