# Empty compiler generated dependencies file for ablation_s_sweep.
# This may be replaced when dependencies are built.
