file(REMOVE_RECURSE
  "CMakeFiles/micro_transpose.dir/micro_transpose.cpp.o"
  "CMakeFiles/micro_transpose.dir/micro_transpose.cpp.o.d"
  "micro_transpose"
  "micro_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
