# Empty compiler generated dependencies file for micro_life.
# This may be replaced when dependencies are built.
