file(REMOVE_RECURSE
  "CMakeFiles/micro_life.dir/micro_life.cpp.o"
  "CMakeFiles/micro_life.dir/micro_life.cpp.o.d"
  "micro_life"
  "micro_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
