
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/swbpbc_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/strmatch/CMakeFiles/swbpbc_strmatch.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/swbpbc_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/swbpbc_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/swbpbc_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/bulk/CMakeFiles/swbpbc_bulk.dir/DependInfo.cmake"
  "/root/repo/build/src/life/CMakeFiles/swbpbc_life.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/swbpbc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cky/CMakeFiles/swbpbc_cky.dir/DependInfo.cmake"
  "/root/repo/build/src/bitsim/CMakeFiles/swbpbc_bitsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
