# Empty compiler generated dependencies file for protein_screen.
# This may be replaced when dependencies are built.
