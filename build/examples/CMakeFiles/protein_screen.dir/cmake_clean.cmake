file(REMOVE_RECURSE
  "CMakeFiles/protein_screen.dir/protein_screen.cpp.o"
  "CMakeFiles/protein_screen.dir/protein_screen.cpp.o.d"
  "protein_screen"
  "protein_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
