# Empty compiler generated dependencies file for database_filter.
# This may be replaced when dependencies are built.
