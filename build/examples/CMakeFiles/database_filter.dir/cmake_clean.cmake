file(REMOVE_RECURSE
  "CMakeFiles/database_filter.dir/database_filter.cpp.o"
  "CMakeFiles/database_filter.dir/database_filter.cpp.o.d"
  "database_filter"
  "database_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
