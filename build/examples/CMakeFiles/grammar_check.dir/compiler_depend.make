# Empty compiler generated dependencies file for grammar_check.
# This may be replaced when dependencies are built.
