file(REMOVE_RECURSE
  "CMakeFiles/grammar_check.dir/grammar_check.cpp.o"
  "CMakeFiles/grammar_check.dir/grammar_check.cpp.o.d"
  "grammar_check"
  "grammar_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammar_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
