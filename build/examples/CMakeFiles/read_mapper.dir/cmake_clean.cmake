file(REMOVE_RECURSE
  "CMakeFiles/read_mapper.dir/read_mapper.cpp.o"
  "CMakeFiles/read_mapper.dir/read_mapper.cpp.o.d"
  "read_mapper"
  "read_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
