#!/usr/bin/env python3
"""Reconcile live stats scrapes from a running screen_serve daemon.

Takes RunReport JSON scrapes in the order they were taken (each one the
answer to a `screen_client --requests=0 --stats-out=...` hit on the
daemon's kStatRequest endpoint) and checks:

* every scrape parses as a screen_serve RunReport and carries the
  mandatory service counters;
* every counter is monotone non-decreasing across consecutive scrapes —
  they are all lifetime totals, so a counter going backwards means a
  torn snapshot, not load;
* nothing vanishes: a counter present in an earlier scrape is present
  in every later one;
* the last scrape reconciles: per-tenant SLO completions sum to the
  daemon-wide completion counter, admissions are conserved
  (admitted = completed + shed + still queued), and the trace ring
  dropped nothing;
* with --prom FILE, the Prometheus text dump written at drain is
  well-formed (every sample belongs to a TYPE'd family, histogram
  buckets are cumulative and end in +Inf) and its counters dominate the
  last live scrape (the drain dump is taken after every scrape).

Exits 0 when everything reconciles, 1 with a message otherwise.

    scripts/check_stats.py scrape1.json scrape2.json --prom daemon.prom
"""
import json
import re
import sys

PROM_PREFIX = "swbpbc"
REQUIRED_COUNTERS = (
    "service.requests",
    "service.admitted",
    "service.completed",
    "service.shed_deadline",
    "service.pairs_scored",
    "service.stat_scrapes",
)


def fail(where, message):
    print(f"check_stats: {where}: {message}", file=sys.stderr)
    return 1


def load_scrape(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "swbpbc.run_report":
        raise ValueError(f"unexpected schema {doc.get('schema')!r}")
    if doc.get("tool") != "screen_serve":
        raise ValueError(f"scrape from tool {doc.get('tool')!r}")
    metrics = doc.get("metrics", {})
    counters = metrics.get("counters", {})
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            raise ValueError(f"missing counter {name!r}")
    return doc


def check_monotone(paths, scrapes):
    status = 0
    for i in range(1, len(scrapes)):
        prev = scrapes[i - 1]["metrics"]["counters"]
        cur = scrapes[i]["metrics"]["counters"]
        for name, value in prev.items():
            if name not in cur:
                status |= fail(paths[i],
                               f"counter {name!r} vanished (present in "
                               f"{paths[i - 1]})")
            elif cur[name] < value:
                status |= fail(paths[i],
                               f"counter {name} went backwards: "
                               f"{value} -> {cur[name]}")
    return status


def check_reconciliation(path, doc):
    status = 0
    counters = doc["metrics"]["counters"]
    gauges = doc["metrics"].get("gauges", {})

    # Per-tenant SLO windows must account for every completion the
    # daemon counted — the rolling window ages samples out, but the
    # slo.<tenant>.completed counters are lifetime totals.
    slo_completed = sum(v for k, v in counters.items()
                        if re.fullmatch(r"slo\.[^.]+\.completed", k))
    if slo_completed != counters["service.completed"]:
        status |= fail(path,
                       f"SLO windows saw {slo_completed} completions, "
                       f"daemon counted {counters['service.completed']}")

    # Admission conservation: everything that entered the queue — live
    # admissions plus journal-recovered pending requests — either
    # completed, was shed on deadline, or is still queued right now.
    # Cache hits never enter the queue, so they sit outside the ledger.
    queued = int(gauges.get("service.queue.requests", 0))
    entered = (counters["service.admitted"]
               + counters.get("service.recovered_pending", 0))
    accounted = (counters["service.completed"]
                 + counters["service.shed_deadline"] + queued)
    if entered != accounted:
        status |= fail(path,
                       f"admitted+recovered={entered} but "
                       f"completed+shed+queued={accounted}")

    # The trace ring must not be silently losing spans under load.
    dropped = counters.get("telemetry.trace.dropped", 0)
    if dropped != 0:
        status |= fail(path, f"trace ring dropped {dropped} events — "
                             f"raise the ring capacity")
    return status


def parse_prom(path):
    """Returns ({family: type}, {sample_name_with_labels: value})."""
    families, samples = {}, {}
    name_re = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                m = re.match(r"# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                             r"(counter|gauge|histogram)$", line)
                if m:
                    families[m.group(1)] = m.group(2)
                continue
            m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$",
                         line)
            if not m:
                raise ValueError(f"line {lineno}: unparsable sample {line!r}")
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            if not name_re.fullmatch(name):
                raise ValueError(f"line {lineno}: bad metric name {name!r}")
            samples[name + labels] = float(value)
    return families, samples


def prom_family(sample_name):
    base = sample_name.split("{", 1)[0]
    for suffix in ("_bucket", "_sum", "_count"):
        if base.endswith(suffix):
            stripped = base[:-len(suffix)]
            if stripped:
                return stripped, base
    return base, base


def check_prom(path, last_scrape):
    try:
        families, samples = parse_prom(path)
    except (OSError, ValueError) as e:
        return fail(path, str(e))
    if not samples:
        return fail(path, "dump holds no samples")
    status = 0

    # Every sample must belong to a declared family (histogram samples
    # via their _bucket/_sum/_count suffix).
    for sample in samples:
        family, base = prom_family(sample)
        if family not in families and base not in families:
            status |= fail(path, f"sample {sample} has no # TYPE family")

    # Histogram buckets must be cumulative and closed by +Inf == _count.
    for family, kind in families.items():
        if kind != "histogram":
            continue
        buckets = []
        for sample, value in samples.items():
            m = re.fullmatch(re.escape(family) + r'_bucket\{le="([^"]+)"\}',
                             sample)
            if m:
                le = float("inf") if m.group(1) == "+Inf" else float(
                    m.group(1))
                buckets.append((le, value))
        buckets.sort()
        if not buckets or buckets[-1][0] != float("inf"):
            status |= fail(path, f"histogram {family} has no +Inf bucket")
            continue
        for i in range(1, len(buckets)):
            if buckets[i][1] < buckets[i - 1][1]:
                status |= fail(path,
                               f"histogram {family} buckets not cumulative "
                               f"at le={buckets[i][0]}")
        count = samples.get(f"{family}_count")
        if count is not None and count != buckets[-1][1]:
            status |= fail(path, f"histogram {family}: _count={count} != "
                                 f"+Inf bucket {buckets[-1][1]}")

    # The drain dump is taken after every live scrape, so its counters
    # dominate the last scrape's.
    if last_scrape is not None:
        for name, value in last_scrape["metrics"]["counters"].items():
            sanitized = PROM_PREFIX + "_" + re.sub(r"[^a-zA-Z0-9_:]", "_",
                                                   name)
            if sanitized in samples and samples[sanitized] < value:
                status |= fail(path,
                               f"{sanitized}={samples[sanitized]} is below "
                               f"the last live scrape's {name}={value}")
    if status == 0:
        print(f"check_stats: {path}: OK ({len(samples)} samples, "
              f"{len(families)} families)")
    return status


def main(argv):
    prom_path = None
    paths = []
    it = iter(argv[1:])
    for arg in it:
        if arg == "--prom":
            prom_path = next(it, None)
            if prom_path is None:
                print("check_stats: --prom needs a file", file=sys.stderr)
                return 2
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    status = 0
    scrapes = []
    for path in paths:
        try:
            scrapes.append(load_scrape(path))
        except (OSError, ValueError, json.JSONDecodeError) as e:
            return fail(path, str(e))

    status |= check_monotone(paths, scrapes)
    status |= check_reconciliation(paths[-1], scrapes[-1])
    if prom_path is not None:
        status |= check_prom(prom_path, scrapes[-1])
    if status == 0:
        counters = scrapes[-1]["metrics"]["counters"]
        print(f"check_stats: OK ({len(paths)} scrapes, "
              f"admitted={counters['service.admitted']}, "
              f"completed={counters['service.completed']}, "
              f"scrapes_served={counters['service.stat_scrapes']})")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
