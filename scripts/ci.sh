#!/usr/bin/env bash
# CI gate: the tier-1 build + full test suite under the release preset,
# then the tier2-sanitize robustness suites (fault injection, cancellation,
# checkpoint streams, negative inputs) under ASan + UBSan.
#
#   scripts/ci.sh             # both tiers
#   scripts/ci.sh --tier1     # release build + full ctest only
#   scripts/ci.sh --tier2     # sanitize build + labeled suites only
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=1
run_tier2=1
case "${1:-}" in
  --tier1) run_tier2=0 ;;
  --tier2) run_tier1=0 ;;
  "") ;;
  *) echo "usage: scripts/ci.sh [--tier1|--tier2]" >&2; exit 2 ;;
esac

if [[ $run_tier1 -eq 1 ]]; then
  echo "== tier 1: release build + full test suite =="
  cmake --preset default
  cmake --build --preset default -j"$(nproc)"
  ctest --preset default
fi

if [[ $run_tier2 -eq 1 ]]; then
  echo "== tier 2: ASan+UBSan build + tier2-sanitize suites =="
  cmake --preset sanitize
  cmake --build --preset sanitize -j"$(nproc)"
  ctest --preset tier2-sanitize
fi

echo "CI OK"
