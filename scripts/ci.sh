#!/usr/bin/env bash
# CI gate: the tier-1 build + full test suite under the release preset
# (plus a telemetry smoke: RunReport and span-trace artifacts validated by
# scripts/check_run_report.py, and a live observability drill: stats
# scrapes, a merged client+server trace, and the crash flight recorder,
# reconciled by scripts/check_stats.py), then the tier2-sanitize suites
# (fault injection, cancellation, checkpoint streams, negative inputs)
# under ASan + UBSan. Both tiers first verify that every public header in
# src/ is self-contained (compiles standalone with only -I src).
#
#   scripts/ci.sh             # both tiers
#   scripts/ci.sh --tier1     # release build + full ctest only
#   scripts/ci.sh --tier2     # sanitize build + labeled suites only
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=1
run_tier2=1
case "${1:-}" in
  --tier1) run_tier2=0 ;;
  --tier2) run_tier1=0 ;;
  "") ;;
  *) echo "usage: scripts/ci.sh [--tier1|--tier2]" >&2; exit 2 ;;
esac

# Every public header must compile on its own: a consumer should be able
# to include any src/**/*.hpp first without hunting for its transitive
# includes. Cheap (-fsyntax-only), so it runs in both tiers.
header_check() {
  echo "== header self-containment: every src/**/*.hpp compiles alone =="
  local cxx="${CXX:-c++}" failed=0 hpp
  while IFS= read -r hpp; do
    if ! "$cxx" -std=c++20 -fsyntax-only -I src -x c++ "$hpp"; then
      echo "not self-contained: $hpp" >&2
      failed=1
    fi
  done < <(find src -name '*.hpp' | sort)
  [[ $failed -eq 0 ]] || exit 1
}

if [[ $run_tier1 -eq 1 ]]; then
  header_check
  echo "== tier 1: release build + full test suite =="
  cmake --preset default
  cmake --build --preset default -j"$(nproc)"
  ctest --preset default

  echo "== tier 1: telemetry smoke (run report + span trace) =="
  smoke_dir=$(mktemp -d)
  # Also reap any daemon a failed drill left behind.
  trap 'jobs -p | xargs -r kill 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
  ./build/bench/table4_runtime --pairs=64 --m=16 --n=64 \
      --json="$smoke_dir/table4.json" > /dev/null
  ./build/examples/fault_drill --campaigns=4 --count=32 \
      --trace="$smoke_dir/drill.trace.json" > /dev/null
  python3 scripts/check_run_report.py \
      "$smoke_dir/table4.json" "$smoke_dir/drill.trace.json"

  echo "== tier 1: overlapped chunk engine smoke (bit-identity gate) =="
  ./build/bench/table4_runtime --pairs=128 --m=16 --n=64 \
      --overlap --chunk-pairs=16 --overlap-depth=3 > /dev/null

  echo "== tier 1: lane-width dispatch matrix (score fingerprint gate) =="
  # SWBPBC_FORCE_LANE_WIDTH drives the whole dispatch through one binary:
  # 64 (the baseline), scalar-wide (the no-SIMD wide fallback, dispatchable
  # on any host), and auto (whatever this CPU probes widest). Scores are
  # bit-identical across widths, so the RunReport fingerprints must match.
  ref_fnv=""
  for lane_width in 64 scalar-wide auto; do
    SWBPBC_FORCE_LANE_WIDTH=$lane_width ./build/examples/database_filter \
        --entries=96 --json="$smoke_dir/filter_$lane_width.json" > /dev/null
    fnv=$(python3 - "$smoke_dir/filter_$lane_width.json" <<'EOF'
import json, sys
cfg = json.load(open(sys.argv[1]))["config"]
print(cfg["scores_fnv"], cfg["hits"])
EOF
)
    echo "  width=$lane_width -> $fnv"
    if [[ -z $ref_fnv ]]; then
      ref_fnv=$fnv
    elif [[ $fnv != "$ref_fnv" ]]; then
      echo "lane-width dispatch is not bit-identical: $fnv != $ref_fnv" >&2
      exit 1
    fi
  done

  echo "== tier 1: protein dispatch matrix (affine+BLOSUM62 fingerprint) =="
  # The same forced-width sweep over the full ScoringScheme path:
  # BLOSUM62 substitution + Gotoh affine gaps, served both in memory and
  # from the pre-transposed store (protein_screen exits nonzero unless the
  # store serve is bit-identical and a scalar-Gotoh spot check passes).
  # Fingerprints must agree across 64-bit lanes, the forced-scalar wide
  # fallback, and whatever auto probes widest on this host.
  protein_ref=""
  for lane_width in 64 scalar-wide auto; do
    SWBPBC_FORCE_LANE_WIDTH=$lane_width ./build/examples/protein_screen \
        --count=96 --db="$smoke_dir/protein_$lane_width.swdb" \
        --json="$smoke_dir/protein_$lane_width.json" > /dev/null
    fnv=$(python3 - "$smoke_dir/protein_$lane_width.json" <<'EOF'
import json, sys
cfg = json.load(open(sys.argv[1]))["config"]
assert cfg["scheme"] == "affine/blosum62", cfg["scheme"]
print(cfg["scores_fnv"], cfg["hits"])
EOF
)
    echo "  width=$lane_width -> $fnv"
    if [[ -z $protein_ref ]]; then
      protein_ref=$fnv
    elif [[ $fnv != "$protein_ref" ]]; then
      echo "protein dispatch is not bit-identical: $fnv != $protein_ref" >&2
      exit 1
    fi
  done

  echo "== tier 1: backend dispatch matrix (force-gate on scores_fnv) =="
  # SWBPBC_FORCE_BACKEND drives the host-engine choice through one
  # binary: bpbc (the paper's bitwise engine), striped (the Farrar
  # lazy-F rival), and auto (the measured cost model picks). The engines
  # are bit-identical, so every fingerprint must equal the ref_fnv the
  # lane-width matrix just pinned on the same workload.
  for backend in bpbc striped auto; do
    SWBPBC_FORCE_BACKEND=$backend ./build/examples/database_filter \
        --entries=96 --json="$smoke_dir/backend_$backend.json" > /dev/null
    fnv=$(python3 - "$smoke_dir/backend_$backend.json" <<'EOF'
import json, sys
cfg = json.load(open(sys.argv[1]))["config"]
print(cfg["scores_fnv"], cfg["hits"])
EOF
)
    echo "  backend=$backend -> $fnv"
    if [[ $fnv != "$ref_fnv" ]]; then
      echo "backend dispatch is not bit-identical: $fnv != $ref_fnv" >&2
      exit 1
    fi
  done
  # The same force sweep over the protein path (affine + BLOSUM62, the
  # striped engine's home turf) against the protein matrix's reference.
  for backend in bpbc striped auto; do
    SWBPBC_FORCE_BACKEND=$backend ./build/examples/protein_screen \
        --count=96 --json="$smoke_dir/protein_backend_$backend.json" \
        > /dev/null
    fnv=$(python3 - "$smoke_dir/protein_backend_$backend.json" <<'EOF'
import json, sys
cfg = json.load(open(sys.argv[1]))["config"]
print(cfg["scores_fnv"], cfg["hits"])
EOF
)
    echo "  backend=$backend -> $fnv"
    if [[ $fnv != "$protein_ref" ]]; then
      echo "protein backend dispatch is not bit-identical:" \
           "$fnv != $protein_ref" >&2
      exit 1
    fi
  done

  echo "== tier 1: forced-backend negative smoke (typed rejection) =="
  # An unparsable override must be a loud typed error naming the
  # variable, never a silent fall-through to some default engine.
  if SWBPBC_FORCE_BACKEND=banana ./build/examples/database_filter \
      --entries=64 > "$smoke_dir/badbackend.out" 2>&1; then
    echo "SWBPBC_FORCE_BACKEND=banana was silently accepted" >&2
    exit 1
  fi
  grep -q "SWBPBC_FORCE_BACKEND" "$smoke_dir/badbackend.out" || {
    echo "rejection does not name SWBPBC_FORCE_BACKEND" >&2
    cat "$smoke_dir/badbackend.out" >&2
    exit 1
  }

  echo "== tier 1: crossover bench smoke (BPBC x striped bit-identity) =="
  # CI sizes: the per-region engine bit-identity and scalar spot-check
  # gates stay armed; the timing-derived dispatcher-agreement gate is
  # skipped (--smoke regions are all noise).
  ./build/bench/ablation_crossover --smoke > /dev/null

  echo "== tier 1: forced-lane-width negative smoke (typed rejection) =="
  # An unparsable override must be a loud typed error, never a silent
  # default width.
  if SWBPBC_FORCE_LANE_WIDTH=banana ./build/examples/database_filter \
      --entries=64 > "$smoke_dir/badwidth.out" 2>&1; then
    echo "SWBPBC_FORCE_LANE_WIDTH=banana was silently accepted" >&2
    exit 1
  fi
  grep -q "SWBPBC_FORCE_LANE_WIDTH" "$smoke_dir/badwidth.out" || {
    echo "rejection does not name SWBPBC_FORCE_LANE_WIDTH" >&2
    cat "$smoke_dir/badwidth.out" >&2
    exit 1
  }

  echo "== tier 1: database store round trip + corruption drill =="
  # Build the store, screen from it clean, then with an injected fault on
  # one shard, and with on-disk rot on another: every run must quarantine
  # only the damaged shard and score bit-identically to the in-memory run
  # (same fingerprint the dispatch matrix just pinned in ref_fnv).
  ./build/examples/database_build --entries=96 \
      --out="$smoke_dir/seqs.swdb" > /dev/null
  for drill in db db-flip db-rot; do
    case $drill in
      db)      args=(--db="$smoke_dir/seqs.swdb") ;;
      db-flip) args=(--db="$smoke_dir/seqs.swdb" --db-flip-shard=1) ;;
      db-rot)  ./build/examples/database_build --entries=96 \
                   --out="$smoke_dir/rot.swdb" --corrupt-shard=0 > /dev/null
               args=(--db="$smoke_dir/rot.swdb") ;;
    esac
    ./build/examples/database_filter --entries=96 "${args[@]}" \
        --json="$smoke_dir/filter_$drill.json" > /dev/null
    read -r scores hits quarantined < <(python3 - \
        "$smoke_dir/filter_$drill.json" <<'EOF'
import json, sys
cfg = json.load(open(sys.argv[1]))["config"]
print(cfg["scores_fnv"], cfg["hits"], cfg["db_shards_quarantined"])
EOF
)
    fnv="$scores $hits"
    echo "  $drill -> $fnv (quarantined=$quarantined)"
    if [[ $fnv != "$ref_fnv" ]]; then
      echo "db-served scores are not bit-identical: $fnv != $ref_fnv" >&2
      exit 1
    fi
    case $drill in
      db)      want=0 ;;
      *)       want=1 ;;
    esac
    if [[ $quarantined != "$want" ]]; then
      echo "$drill: expected $want quarantined shard(s), got $quarantined" >&2
      exit 1
    fi
  done

  # A store built for a different batch must be refused with a typed
  # DB_MISMATCH, not screened against the wrong planes.
  ./build/examples/database_build --entries=32 \
      --out="$smoke_dir/other.swdb" > /dev/null
  if ./build/examples/database_filter --entries=96 \
      --db="$smoke_dir/other.swdb" > "$smoke_dir/mismatch.out" 2>&1; then
    echo "mismatched store was silently accepted" >&2
    exit 1
  fi
  grep -q "DB_MISMATCH" "$smoke_dir/mismatch.out" || {
    echo "mismatched store not rejected with DB_MISMATCH" >&2
    cat "$smoke_dir/mismatch.out" >&2
    exit 1
  }

  # A missing store is a typed error plus a usage hint, not a bare errno.
  if ./build/examples/database_filter --entries=96 \
      --db="$smoke_dir/does_not_exist.swdb" \
      > "$smoke_dir/missingdb.out" 2>&1; then
    echo "missing store was silently accepted" >&2
    exit 1
  fi
  grep -q "hint: --db expects a store" "$smoke_dir/missingdb.out" || {
    echo "missing store rejection carries no usage hint" >&2
    cat "$smoke_dir/missingdb.out" >&2
    exit 1
  }

  echo "== tier 1: daemon smoke (fault-injected serve, drain, shed) =="
  sock="$smoke_dir/daemon.sock"
  journal="$smoke_dir/daemon.journal"
  # Serve under transport fault injection: torn/flipped/dropped/stalled
  # response frames. The client must retry through all of it and end with
  # scores bit-identical to the direct in-process sw::screen reference.
  ./build/examples/screen_serve --socket="$sock" --journal="$journal" \
      --lane-group=8 --linger-ms=1 --fault-seed=42 --tear-prob=0.2 \
      --flip-prob=0.2 --disconnect-prob=0.15 --stall-prob=0.1 --stall-ms=2 \
      > "$smoke_dir/serve1.log" 2>&1 &
  serve_pid=$!
  ./build/examples/screen_client --socket="$sock" --requests=8 --pairs=2 \
      --m=8 --n=24 --tenant=drill --verify --retry-initial-ms=2 \
      --retry-max-attempts=20 > "$smoke_dir/client1.log"
  grep -q "verify: OK" "$smoke_dir/client1.log" || {
    echo "fault-injected serve is not bit-identical to direct screen" >&2
    cat "$smoke_dir/client1.log" >&2
    exit 1
  }
  # Graceful drain: SIGTERM finishes in-flight work and exits 0.
  kill -TERM "$serve_pid"
  wait "$serve_pid" || {
    echo "screen_serve did not drain cleanly on SIGTERM" >&2
    cat "$smoke_dir/serve1.log" >&2
    exit 1
  }
  grep -q "drained" "$smoke_dir/serve1.log" || {
    echo "screen_serve drain left no stats line" >&2
    exit 1
  }

  echo "== tier 1: daemon crash drill (kill -9 mid-batch, bit-identity) =="
  # A fresh journal, a daemon rigged to die (_Exit 137) as its 3rd batch
  # dispatches, and a patient client. The restarted daemon must replay the
  # journal — recomputing admitted-but-incomplete requests, serving
  # completed ones from cache — and the client's verify gate proves every
  # score equals the uninterrupted reference.
  rm -f "$journal"
  ./build/examples/screen_serve --socket="$sock" --journal="$journal" \
      --lane-group=8 --linger-ms=1 --crash-after-batches=3 \
      > "$smoke_dir/serve_crash.log" 2>&1 &
  crash_pid=$!
  ./build/examples/screen_client --socket="$sock" --requests=8 --pairs=2 \
      --m=8 --n=24 --tenant=drill --verify --retry-initial-ms=5 \
      --retry-max-ms=100 --retry-max-attempts=40 \
      > "$smoke_dir/client_crash.log" 2>&1 &
  client_pid=$!
  if wait "$crash_pid"; then
    echo "rigged daemon did not crash" >&2
    exit 1
  fi
  ./build/examples/screen_serve --socket="$sock" --journal="$journal" \
      --lane-group=8 --linger-ms=1 --report="$smoke_dir/serve.report.json" \
      > "$smoke_dir/serve2.log" 2>&1 &
  serve_pid=$!
  wait "$client_pid" || {
    echo "client did not recover across the daemon crash" >&2
    cat "$smoke_dir/client_crash.log" >&2
    exit 1
  }
  grep -q "verify: OK" "$smoke_dir/client_crash.log" || {
    echo "crash-recovered scores are not bit-identical" >&2
    cat "$smoke_dir/client_crash.log" >&2
    exit 1
  }
  kill -TERM "$serve_pid"
  wait "$serve_pid" || {
    echo "restarted daemon did not drain cleanly" >&2
    cat "$smoke_dir/serve2.log" >&2
    exit 1
  }
  grep -Eq "recovered_pending=[1-9]|recovered_completed=[1-9]" \
      "$smoke_dir/serve2.log" || {
    echo "restarted daemon recovered nothing from the journal" >&2
    cat "$smoke_dir/serve2.log" >&2
    exit 1
  }
  python3 scripts/check_run_report.py "$smoke_dir/serve.report.json"

  echo "== tier 1: daemon shed drill (overload, quota, deadline) =="
  # Each flood holds the queue full (huge lane group, huge linger: nothing
  # dispatches) so rejections are deterministic; the SIGTERM drain then
  # flushes the admitted remainder so the flooding client can finish
  # reading. Tiny queue + huge per-tenant quota: the GLOBAL cap binds and
  # floods shed kOverloaded. Tiny quota: kQuotaExceeded. Microscopic
  # deadline budget: kDeadlineExceeded, shed while queued, never scored.
  wait_for_socket() {
    for _ in $(seq 1 100); do
      [[ -S "$1" ]] && return 0
      sleep 0.05
    done
    echo "daemon socket $1 never appeared" >&2
    return 1
  }
  ./build/examples/screen_serve --socket="$sock" \
      --max-queued-requests=2 --tenant-quota-pairs=100000 \
      --lane-group=4096 --linger-ms=100000 \
      > "$smoke_dir/serve_shed.log" 2>&1 &
  serve_pid=$!
  wait_for_socket "$sock"
  ./build/examples/screen_client --socket="$sock" --requests=8 --pairs=4 \
      --m=8 --n=24 --tenant=flood --flood > "$smoke_dir/flood.log" 2>&1 &
  client_pid=$!
  sleep 0.5
  kill -TERM "$serve_pid"
  wait "$client_pid" || true
  wait "$serve_pid" || true
  grep -Eq "overloaded=[1-9]" "$smoke_dir/flood.log" || {
    echo "flooded daemon shed nothing with kOverloaded" >&2
    cat "$smoke_dir/flood.log" >&2
    exit 1
  }

  ./build/examples/screen_serve --socket="$sock" --tenant-quota-pairs=8 \
      --lane-group=4096 --linger-ms=100000 \
      > "$smoke_dir/serve_quota.log" 2>&1 &
  serve_pid=$!
  wait_for_socket "$sock"
  ./build/examples/screen_client --socket="$sock" --requests=6 --pairs=4 \
      --m=8 --n=24 --tenant=greedy --flood > "$smoke_dir/quota.log" 2>&1 &
  client_pid=$!
  sleep 0.5
  kill -TERM "$serve_pid"
  wait "$client_pid" || true
  wait "$serve_pid" || true
  grep -Eq "quota=[1-9]" "$smoke_dir/quota.log" || {
    echo "over-quota tenant was not shed with kQuotaExceeded" >&2
    cat "$smoke_dir/quota.log" >&2
    exit 1
  }

  ./build/examples/screen_serve --socket="$sock" --lane-group=4096 \
      --linger-ms=100000 > "$smoke_dir/serve_deadline.log" 2>&1 &
  serve_pid=$!
  ./build/examples/screen_client --socket="$sock" --requests=2 --pairs=2 \
      --m=8 --n=24 --tenant=impatient --deadline-budget-ms=0.01 \
      > "$smoke_dir/deadline.log" || true
  grep -Eq "deadline=[1-9]" "$smoke_dir/deadline.log" || {
    echo "expired budgets were not shed with kDeadlineExceeded" >&2
    cat "$smoke_dir/deadline.log" >&2
    exit 1
  }
  kill -TERM "$serve_pid"
  wait "$serve_pid" || {
    echo "daemon did not drain cleanly after the shed drill" >&2
    exit 1
  }

  echo "== tier 1: live observability drill (scrape, trace, reconcile) =="
  # A telemetry-enabled daemon on the persistent engine backend. One
  # traced client run produces a single merged Perfetto export (client +
  # server spans correlated by one trace id); two live scrapes straddle a
  # second workload so the counters must move, and only forward; the
  # drain's Prometheus dump must reconcile with the scrapes.
  prom="$smoke_dir/daemon.prom"
  merged="$smoke_dir/merged.trace.json"
  ./build/examples/screen_serve --socket="$sock" --telemetry --engine \
      --lane-group=8 --linger-ms=1 --stats-dump="$prom" \
      > "$smoke_dir/serve_obs.log" 2>&1 &
  serve_pid=$!
  wait_for_socket "$sock"
  ./build/examples/screen_client --socket="$sock" --requests=6 --pairs=4 \
      --m=8 --n=24 --tenant=obs --verify --trace="$merged" \
      > "$smoke_dir/client_obs.log"
  grep -q "verify: OK" "$smoke_dir/client_obs.log" || {
    echo "traced run is not bit-identical to direct screen" >&2
    cat "$smoke_dir/client_obs.log" >&2
    exit 1
  }
  ./build/examples/screen_client --socket="$sock" --requests=0 \
      --stats-out="$smoke_dir/scrape1.json" > /dev/null
  ./build/examples/screen_client --socket="$sock" --requests=4 --pairs=2 \
      --m=8 --n=24 --tenant=obs2 --verify > "$smoke_dir/client_obs2.log"
  grep -q "verify: OK" "$smoke_dir/client_obs2.log" || {
    echo "second observability workload failed verify" >&2
    cat "$smoke_dir/client_obs2.log" >&2
    exit 1
  }
  ./build/examples/screen_client --socket="$sock" --requests=0 \
      --stats-out="$smoke_dir/scrape2.json" > /dev/null
  kill -TERM "$serve_pid"
  wait "$serve_pid" || {
    echo "observability daemon did not drain cleanly" >&2
    cat "$smoke_dir/serve_obs.log" >&2
    exit 1
  }
  python3 scripts/check_stats.py "$smoke_dir/scrape1.json" \
      "$smoke_dir/scrape2.json" --prom "$prom"
  python3 scripts/check_run_report.py "$merged"
  # One grep correlates the whole request lifecycle: the id the client
  # stamped must tag its own span, the server's admission and queue
  # spans, and the engine's compute stage in the one merged file.
  trace_id=$(sed -n 's/.*trace_id \(0x[0-9a-f]*\).*/\1/p' \
      "$smoke_dir/client_obs.log")
  [[ -n "$trace_id" ]] || {
    echo "traced client printed no trace id" >&2
    cat "$smoke_dir/client_obs.log" >&2
    exit 1
  }
  python3 - "$merged" "$trace_id" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
tid = sys.argv[2]
tagged = {e["name"] for e in doc["traceEvents"]
          if e.get("ph") == "X"
          and e.get("args", {}).get("trace_id") == tid}
need = {"client.screen", "admit", "queue.wait", "SWA"}
missing = need - tagged
if missing:
    sys.exit(f"merged trace: spans not tagged with {tid}: {sorted(missing)}")
print(f"  trace drill: {len(tagged)} span names carry {tid}")
EOF

  echo "== tier 1: flight recorder post-mortem drill (abort mid-batch) =="
  # A daemon rigged to abort as its first batch dispatches, with the
  # crash handler armed. The SIGABRT path must leave a parseable dump
  # whose newest entries show the run up to the failure.
  flight="$smoke_dir/flight.dump"
  rm -f "$flight"
  ./build/examples/screen_serve --socket="$sock" --abort-after-batches=1 \
      --flight-recorder="$flight" --lane-group=8 --linger-ms=1 \
      > "$smoke_dir/serve_abort.log" 2>&1 &
  abort_pid=$!
  wait_for_socket "$sock"
  ./build/examples/screen_client --socket="$sock" --requests=1 --pairs=2 \
      --m=8 --n=24 --tenant=doomed --retry-initial-ms=2 \
      --retry-max-attempts=2 > "$smoke_dir/client_abort.log" 2>&1 || true
  if wait "$abort_pid"; then
    echo "rigged daemon did not abort" >&2
    exit 1
  fi
  [[ -s "$flight" ]] || {
    echo "crashed daemon left no flight recorder dump" >&2
    cat "$smoke_dir/serve_abort.log" >&2
    exit 1
  }
  grep -q "swbpbc.flight_recorder v1" "$flight" || {
    echo "flight dump is missing its header" >&2
    cat "$flight" >&2
    exit 1
  }
  grep -q "abort.drill" "$flight" || {
    echo "flight dump does not show the pre-abort breadcrumb" >&2
    cat "$flight" >&2
    exit 1
  }
fi

if [[ $run_tier2 -eq 1 ]]; then
  if [[ $run_tier1 -eq 0 ]]; then header_check; fi
  echo "== tier 2: ASan+UBSan build + tier2-sanitize suites =="
  cmake --preset sanitize
  cmake --build --preset sanitize -j"$(nproc)"
  ctest --preset tier2-sanitize
fi

echo "CI OK"
