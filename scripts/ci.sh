#!/usr/bin/env bash
# CI gate: the tier-1 build + full test suite under the release preset
# (plus a telemetry smoke: RunReport and span-trace artifacts validated by
# scripts/check_run_report.py), then the tier2-sanitize robustness suites
# (fault injection, cancellation, checkpoint streams, negative inputs)
# under ASan + UBSan. Both tiers first verify that every public header in
# src/ is self-contained (compiles standalone with only -I src).
#
#   scripts/ci.sh             # both tiers
#   scripts/ci.sh --tier1     # release build + full ctest only
#   scripts/ci.sh --tier2     # sanitize build + labeled suites only
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=1
run_tier2=1
case "${1:-}" in
  --tier1) run_tier2=0 ;;
  --tier2) run_tier1=0 ;;
  "") ;;
  *) echo "usage: scripts/ci.sh [--tier1|--tier2]" >&2; exit 2 ;;
esac

# Every public header must compile on its own: a consumer should be able
# to include any src/**/*.hpp first without hunting for its transitive
# includes. Cheap (-fsyntax-only), so it runs in both tiers.
header_check() {
  echo "== header self-containment: every src/**/*.hpp compiles alone =="
  local cxx="${CXX:-c++}" failed=0 hpp
  while IFS= read -r hpp; do
    if ! "$cxx" -std=c++20 -fsyntax-only -I src -x c++ "$hpp"; then
      echo "not self-contained: $hpp" >&2
      failed=1
    fi
  done < <(find src -name '*.hpp' | sort)
  [[ $failed -eq 0 ]] || exit 1
}

if [[ $run_tier1 -eq 1 ]]; then
  header_check
  echo "== tier 1: release build + full test suite =="
  cmake --preset default
  cmake --build --preset default -j"$(nproc)"
  ctest --preset default

  echo "== tier 1: telemetry smoke (run report + span trace) =="
  smoke_dir=$(mktemp -d)
  trap 'rm -rf "$smoke_dir"' EXIT
  ./build/bench/table4_runtime --pairs=64 --m=16 --n=64 \
      --json="$smoke_dir/table4.json" > /dev/null
  ./build/examples/fault_drill --campaigns=4 --count=32 \
      --trace="$smoke_dir/drill.trace.json" > /dev/null
  python3 scripts/check_run_report.py \
      "$smoke_dir/table4.json" "$smoke_dir/drill.trace.json"

  echo "== tier 1: overlapped chunk engine smoke (bit-identity gate) =="
  ./build/bench/table4_runtime --pairs=128 --m=16 --n=64 \
      --overlap --chunk-pairs=16 --overlap-depth=3 > /dev/null

  echo "== tier 1: lane-width dispatch matrix (score fingerprint gate) =="
  # SWBPBC_FORCE_LANE_WIDTH drives the whole dispatch through one binary:
  # 64 (the baseline), scalar-wide (the no-SIMD wide fallback, dispatchable
  # on any host), and auto (whatever this CPU probes widest). Scores are
  # bit-identical across widths, so the RunReport fingerprints must match.
  ref_fnv=""
  for lane_width in 64 scalar-wide auto; do
    SWBPBC_FORCE_LANE_WIDTH=$lane_width ./build/examples/database_filter \
        --entries=96 --json="$smoke_dir/filter_$lane_width.json" > /dev/null
    fnv=$(python3 - "$smoke_dir/filter_$lane_width.json" <<'EOF'
import json, sys
cfg = json.load(open(sys.argv[1]))["config"]
print(cfg["scores_fnv"], cfg["hits"])
EOF
)
    echo "  width=$lane_width -> $fnv"
    if [[ -z $ref_fnv ]]; then
      ref_fnv=$fnv
    elif [[ $fnv != "$ref_fnv" ]]; then
      echo "lane-width dispatch is not bit-identical: $fnv != $ref_fnv" >&2
      exit 1
    fi
  done

  echo "== tier 1: forced-lane-width negative smoke (typed rejection) =="
  # An unparsable override must be a loud typed error, never a silent
  # default width.
  if SWBPBC_FORCE_LANE_WIDTH=banana ./build/examples/database_filter \
      --entries=64 > "$smoke_dir/badwidth.out" 2>&1; then
    echo "SWBPBC_FORCE_LANE_WIDTH=banana was silently accepted" >&2
    exit 1
  fi
  grep -q "SWBPBC_FORCE_LANE_WIDTH" "$smoke_dir/badwidth.out" || {
    echo "rejection does not name SWBPBC_FORCE_LANE_WIDTH" >&2
    cat "$smoke_dir/badwidth.out" >&2
    exit 1
  }

  echo "== tier 1: database store round trip + corruption drill =="
  # Build the store, screen from it clean, then with an injected fault on
  # one shard, and with on-disk rot on another: every run must quarantine
  # only the damaged shard and score bit-identically to the in-memory run
  # (same fingerprint the dispatch matrix just pinned in ref_fnv).
  ./build/examples/database_build --entries=96 \
      --out="$smoke_dir/seqs.swdb" > /dev/null
  for drill in db db-flip db-rot; do
    case $drill in
      db)      args=(--db="$smoke_dir/seqs.swdb") ;;
      db-flip) args=(--db="$smoke_dir/seqs.swdb" --db-flip-shard=1) ;;
      db-rot)  ./build/examples/database_build --entries=96 \
                   --out="$smoke_dir/rot.swdb" --corrupt-shard=0 > /dev/null
               args=(--db="$smoke_dir/rot.swdb") ;;
    esac
    ./build/examples/database_filter --entries=96 "${args[@]}" \
        --json="$smoke_dir/filter_$drill.json" > /dev/null
    read -r scores hits quarantined < <(python3 - \
        "$smoke_dir/filter_$drill.json" <<'EOF'
import json, sys
cfg = json.load(open(sys.argv[1]))["config"]
print(cfg["scores_fnv"], cfg["hits"], cfg["db_shards_quarantined"])
EOF
)
    fnv="$scores $hits"
    echo "  $drill -> $fnv (quarantined=$quarantined)"
    if [[ $fnv != "$ref_fnv" ]]; then
      echo "db-served scores are not bit-identical: $fnv != $ref_fnv" >&2
      exit 1
    fi
    case $drill in
      db)      want=0 ;;
      *)       want=1 ;;
    esac
    if [[ $quarantined != "$want" ]]; then
      echo "$drill: expected $want quarantined shard(s), got $quarantined" >&2
      exit 1
    fi
  done

  # A store built for a different batch must be refused with a typed
  # DB_MISMATCH, not screened against the wrong planes.
  ./build/examples/database_build --entries=32 \
      --out="$smoke_dir/other.swdb" > /dev/null
  if ./build/examples/database_filter --entries=96 \
      --db="$smoke_dir/other.swdb" > "$smoke_dir/mismatch.out" 2>&1; then
    echo "mismatched store was silently accepted" >&2
    exit 1
  fi
  grep -q "DB_MISMATCH" "$smoke_dir/mismatch.out" || {
    echo "mismatched store not rejected with DB_MISMATCH" >&2
    cat "$smoke_dir/mismatch.out" >&2
    exit 1
  }
fi

if [[ $run_tier2 -eq 1 ]]; then
  if [[ $run_tier1 -eq 0 ]]; then header_check; fi
  echo "== tier 2: ASan+UBSan build + tier2-sanitize suites =="
  cmake --preset sanitize
  cmake --build --preset sanitize -j"$(nproc)"
  ctest --preset tier2-sanitize
fi

echo "CI OK"
