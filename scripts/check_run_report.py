#!/usr/bin/env python3
"""Validate the telemetry layer's machine-readable artifacts.

Accepts either document the layer emits and auto-detects which it got:

* a versioned RunReport (``"schema": "swbpbc.run_report"``) from
  ``table4_runtime --json`` / ``table5_gcups --json`` — checked for
  schema/version, a well-formed config fingerprint, and rows whose stage
  wall times, totals, and GCUPS are present and sane;
* a Chrome trace_event file (``"traceEvents": [...]``) from
  ``fault_drill --trace`` / ``protein_screen --trace`` — checked for
  complete ("X") events only, non-negative monotone timestamps, and
  durations that fit inside the capture window.

Exits 0 when every named file validates, 1 with a message otherwise.

    scripts/check_run_report.py out/table4.json out/drill.trace.json
"""
import json
import re
import sys


def fail(path, message):
    print(f"check_run_report: {path}: {message}", file=sys.stderr)
    return 1


def check_run_report(path, doc):
    if doc.get("schema") != "swbpbc.run_report":
        return fail(path, f"unexpected schema {doc.get('schema')!r}")
    if doc.get("schema_version") != 1:
        return fail(path,
                    f"unsupported schema_version {doc.get('schema_version')!r}")
    if not isinstance(doc.get("tool"), str) or not doc["tool"]:
        return fail(path, "missing tool name")
    fingerprint = doc.get("config_fingerprint", "")
    if not re.fullmatch(r"0x[0-9a-fA-F]{16}", fingerprint):
        return fail(path, f"bad config_fingerprint {fingerprint!r}")
    if not isinstance(doc.get("config"), dict):
        return fail(path, "missing config echo")

    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "report has no rows")
    # screen_serve reports one row per tenant: impl is "tenant:<name>",
    # the only stage is the serving stage "SRV", and a tenant that was
    # only ever rejected legitimately shows zero pairs / time / gcups.
    serving = doc["tool"] == "screen_serve"
    known_stages = {"H2G", "W2B", "SWA", "B2W", "G2H", "INTG"}
    if serving:
        known_stages = {"SRV"}
    for i, row in enumerate(rows):
        where = f"row {i} ({row.get('impl', '?')})"
        for key in ("impl", "pairs", "m", "n", "stages_ms", "total_ms",
                    "gcups"):
            if key not in row:
                return fail(path, f"{where}: missing {key}")
        if serving and not row["impl"].startswith("tenant:"):
            return fail(path, f"{where}: impl is not a tenant row")
        if not row["stages_ms"]:
            return fail(path, f"{where}: empty stages_ms")
        for stage, ms in row["stages_ms"].items():
            if stage not in known_stages:
                return fail(path, f"{where}: unknown stage {stage!r}")
            if not isinstance(ms, (int, float)) or ms < 0:
                return fail(path, f"{where}: bad {stage} time {ms!r}")
        if row["total_ms"] <= 0 and not (serving and row["pairs"] == 0):
            return fail(path, f"{where}: non-positive total_ms")
        if row["gcups"] <= 0 and not (serving and row["pairs"] == 0):
            return fail(path, f"{where}: non-positive gcups")
        for stage, counters in row.get("stage_metrics", {}).items():
            if stage not in known_stages:
                return fail(path,
                            f"{where}: unknown metrics stage {stage!r}")
            for name, value in counters.items():
                if not isinstance(value, int) or value < 0:
                    return fail(path,
                                f"{where}: bad counter {stage}.{name}={value!r}")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return fail(path, "missing metrics snapshot")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            return fail(path, f"metrics snapshot missing {section}")

    if serving:
        counters = metrics["counters"]
        required = ("service.requests", "service.admitted",
                    "service.completed", "service.rejected_overload",
                    "service.rejected_quota", "service.shed_deadline",
                    "service.cache_hits", "service.recovered_pending",
                    "service.recovered_completed", "service.pairs_scored")
        for name in required:
            if name not in counters:
                return fail(path, f"missing service counter {name!r}")
        # Per-tenant rows must reconcile with the daemon-wide counters:
        # a tenant the admission ledger saw is a tenant the report shows.
        for metric in ("admitted", "rejected_overload", "rejected_quota"):
            total = sum(row.get("stage_metrics", {})
                        .get("SRV", {}).get(metric, 0) for row in rows)
            if total != counters[f"service.{metric}"]:
                return fail(path,
                            f"tenant rows sum {metric}={total}, daemon "
                            f"counted {counters[f'service.{metric}']}")
    # A lossy trace is worse than no trace: nonzero ring drops mean the
    # capture silently omits spans, so the artifact cannot be trusted.
    dropped = metrics["counters"].get("telemetry.trace.dropped", 0)
    if dropped != 0:
        return fail(path, f"trace ring dropped {dropped} events; "
                          "raise trace_capacity or disable tracing")
    for name, hist in metrics["histograms"].items():
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99"):
            if key not in hist:
                return fail(path, f"histogram {name}: missing {key}")
        if hist["count"] > 0 and not (
                hist["min"] <= hist["p50"] <= hist["p95"]
                <= hist["p99"] <= hist["max"]):
            return fail(path, f"histogram {name}: percentiles out of order")

    print(f"check_run_report: {path}: OK "
          f"({doc['tool']}, {len(rows)} rows, "
          f"{len(metrics['counters'])} counters)")
    return 0


def check_trace(path, doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "traceEvents is not a list")
    spans = 0
    last_ts = -1
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            return fail(path, f"event {i}: unexpected phase {ph!r}")
        spans += 1
        ts, dur = event.get("ts"), event.get("dur")
        name = event.get("name")
        if not name:
            return fail(path, f"event {i}: missing name")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(path, f"event {i} ({name}): bad ts {ts!r}")
        if not isinstance(dur, (int, float)) or dur < 0:
            return fail(path, f"event {i} ({name}): bad dur {dur!r}")
        if ts < last_ts:
            return fail(path,
                        f"event {i} ({name}): ts {ts} < previous {last_ts}")
        last_ts = ts
    if spans == 0:
        return fail(path, "trace holds no spans")
    print(f"check_run_report: {path}: OK (trace, {spans} spans)")
    return 0


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, str(e))
    if not isinstance(doc, dict):
        return fail(path, "top-level value is not an object")
    if "traceEvents" in doc:
        return check_trace(path, doc)
    return check_run_report(path, doc)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        status |= check_file(path)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
